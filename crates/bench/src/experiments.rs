//! One generator function per paper table/figure.

use kwt_baremetal::InferenceImage;
use kwt_dataset::{GscConfig, MfccDataset, Split, SyntheticGsc};
use kwt_hw::AreaModel;
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{gelu_opt, sweep, LutSet, Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_rv32::Platform;
use kwt_tensor::math::gelu_exact;
use kwt_train::{evaluate, TrainConfig, Trainer};
use std::path::PathBuf;

/// Shared experiment state: cache locations and effort level.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Run the expensive variants (KWT-1 training).
    pub full: bool,
    /// Directory for cached models / results.
    pub results_dir: PathBuf,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            full: false,
            results_dir: PathBuf::from("results"),
        }
    }
}

impl ExpContext {
    fn cache_path(&self, name: &str) -> PathBuf {
        self.results_dir.join(name)
    }

    /// Trains (or loads from cache) KWT-Tiny on the paper-difficulty
    /// binary task, returning the parameters and its test split.
    pub fn trained_tiny(&self) -> (KwtParams, MfccDataset) {
        std::fs::create_dir_all(&self.results_dir).ok();
        let ds = SyntheticGsc::new(GscConfig::paper_binary());
        let fe = kwt_audio::kwt_tiny_frontend().expect("preset is valid");
        let test = ds.materialize(Split::Test, &fe).expect("mfcc");
        let cache = self.cache_path("kwt_tiny_trained.json");
        if let Ok(params) = KwtParams::load_json(&cache) {
            if params.config == KwtConfig::kwt_tiny() {
                return (params, test);
            }
        }
        eprintln!("[exp] training KWT-Tiny (cached at {cache:?})...");
        let train = ds.materialize(Split::Train, &fe).expect("mfcc");
        let val = ds.materialize(Split::Val, &fe).expect("mfcc");
        let mut trainer = Trainer::new(
            KwtParams::init(KwtConfig::kwt_tiny(), 42).expect("valid config"),
            TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&train, &val).expect("training");
        let params = trainer.into_params();
        params.save_json(&cache).ok();
        (params, test)
    }

    /// Trains (or loads) the budgeted KWT-1 on the 35-way task. Only in
    /// `--full` mode; returns `None` otherwise.
    pub fn trained_kwt1(&self) -> Option<(KwtParams, MfccDataset)> {
        if !self.full {
            return None;
        }
        std::fs::create_dir_all(&self.results_dir).ok();
        let ds = SyntheticGsc::new(GscConfig::paper_all_keywords());
        let fe = kwt_audio::kwt1_frontend().expect("preset is valid");
        let test = ds.materialize(Split::Test, &fe).expect("mfcc");
        let cache = self.cache_path("kwt1_trained.json");
        if let Ok(params) = KwtParams::load_json(&cache) {
            if params.config == KwtConfig::kwt1() {
                return Some((params, test));
            }
        }
        eprintln!("[exp] training KWT-1 (budgeted, this takes minutes)...");
        let train = ds.materialize(Split::Train, &fe).expect("mfcc");
        let val = ds.materialize(Split::Val, &fe).expect("mfcc");
        let mut trainer = Trainer::new(
            KwtParams::init(KwtConfig::kwt1(), 42).expect("valid config"),
            TrainConfig {
                epochs: 4,
                batch_size: 16,
                verbose: true,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&train, &val).expect("training");
        let params = trainer.into_params();
        params.save_json(&cache).ok();
        Some((params, test))
    }
}

fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str(&format!("| {} |\n", header.join(" | ")));
    s.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        s.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    s
}

/// Table I — KWT-1 model specifications.
pub fn table1(_ctx: &ExpContext) -> String {
    let c = KwtConfig::kwt1();
    let rows = vec![
        vec![
            "# Parameters".into(),
            format!("{} (paper: 607k)", c.param_count()),
        ],
        vec!["Output Classes".into(), c.num_classes.to_string()],
        vec![
            "Accuracy".into(),
            "96.9% on real GSC (paper); see table4 for the synthetic substitute".into(),
        ],
    ];
    format!(
        "## Table I — KWT-1 specifications\n\n{}",
        markdown_table(&["Attribute", "Specification"], &rows)
    )
}

/// Table II — platform specifications.
pub fn table2(_ctx: &ExpContext) -> String {
    let p = Platform::ibex();
    let rows = vec![
        vec!["RAM".into(), format!("{} kB", p.ram_size / 1024)],
        vec![
            "Clock Speed".into(),
            format!("{} MHz", p.clock_hz / 1_000_000),
        ],
        vec![
            "FPU".into(),
            "Not Available (soft-float in generated code)".into(),
        ],
    ];
    format!(
        "## Table II — lowRISC Ibex platform\n\n{}",
        markdown_table(&["Attribute", "Specification"], &rows)
    )
}

/// Table III — KWT-Tiny vs KWT-1 hyper-parameters.
pub fn table3(_ctx: &ExpContext) -> String {
    let k1 = KwtConfig::kwt1();
    let kt = KwtConfig::kwt_tiny();
    let rows = vec![
        vec![
            "INPUT_DIM".into(),
            format!("[{}, {}]", k1.input_freq, k1.input_time),
            format!("[{}, {}]", kt.input_freq, kt.input_time),
        ],
        vec![
            "PATCH_DIM".into(),
            format!("[{}, 1]", k1.input_freq),
            format!("[{}, 1]", kt.input_freq),
        ],
        vec!["DIM".into(), k1.dim.to_string(), kt.dim.to_string()],
        vec!["DEPTH".into(), k1.depth.to_string(), kt.depth.to_string()],
        vec!["HEADS".into(), k1.heads.to_string(), kt.heads.to_string()],
        vec![
            "MLP_DIM".into(),
            k1.mlp_dim.to_string(),
            kt.mlp_dim.to_string(),
        ],
        vec![
            "DIM_HEAD".into(),
            k1.dim_head.to_string(),
            kt.dim_head.to_string(),
        ],
        vec![
            "SEQLEN".into(),
            k1.seqlen().to_string(),
            kt.seqlen().to_string(),
        ],
        vec![
            "OUTPUT CLASSES".into(),
            k1.num_classes.to_string(),
            kt.num_classes.to_string(),
        ],
    ];
    format!(
        "## Table III — KWT-Tiny vs KWT-1\n\n{}",
        markdown_table(&["Attribute", "KWT-1", "KWT-Tiny"], &rows)
    )
}

/// Table IV — parameters / memory / accuracy.
pub fn table4(ctx: &ExpContext) -> String {
    let k1 = KwtConfig::kwt1();
    let kt = KwtConfig::kwt_tiny();
    let (tiny, test) = ctx.trained_tiny();
    let (tiny_acc, _) = evaluate(&tiny, &test).expect("eval");
    let kwt1_acc = ctx
        .trained_kwt1()
        .map(|(p, t)| evaluate(&p, &t).expect("eval").0);
    let acc1_str = match kwt1_acc {
        Some(a) => format!("{:.1}% (synthetic 35-way; paper: 96.9% on GSC)", a * 100.0),
        None => "not trained in quick mode (--full); paper: 96.9%".into(),
    };
    let ratio = k1.param_count() as f64 / kt.param_count() as f64;
    let rows = vec![
        vec![
            "# Parameters".into(),
            k1.param_count().to_string(),
            kt.param_count().to_string(),
            format!("{:.0}x smaller", ratio),
        ],
        vec![
            "Memory use (float)".into(),
            format!("{:.2} MB", k1.memory_bytes_f32() as f64 / 1e6),
            format!("{:.3} kB", kt.memory_bytes_f32() as f64 / 1e3),
            "paper: 2.42 MB -> 6.584 kB".into(),
        ],
        vec![
            "Accuracy".into(),
            acc1_str,
            format!("{:.1}% (paper: 87.2%)", tiny_acc * 100.0),
            "2-class synthetic task".into(),
        ],
    ];
    format!(
        "## Table IV — KWT-Tiny vs KWT-1 accuracy/size\n\n{}",
        markdown_table(&["Attribute", "KWT-1", "KWT-Tiny", "Notes"], &rows)
    )
}

/// Table V — quantisation scale-factor sweep.
///
/// The paper's (64, 64) collapse comes from INT16 overflow: their raw
/// MFCCs reach magnitudes of a few hundred, so `x * 64` saturates the
/// 16-bit residuals. Our synthetic front end produces |MFCC| < ~30, so
/// the same mechanism fires at larger input scales — the extended rows
/// below locate it.
pub fn table5(ctx: &ExpContext) -> String {
    let (tiny, test) = ctx.trained_tiny();
    let mut pairs = sweep::PAPER_TABLE5_PAIRS.to_vec();
    pairs.extend_from_slice(&[(64, 1024), (64, 4096), (64, 16384)]);
    let rows = sweep::scale_sweep(&tiny, &test, &pairs, Nonlinearity::FloatExact).expect("sweep");
    let paper = [
        Some(60.3),
        Some(71.0),
        Some(77.3),
        Some(82.5),
        Some(65.2),
        None,
        None,
        None,
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, p)| {
            vec![
                r.weight_factor.to_string(),
                r.input_factor.to_string(),
                format!("{:.1}%", r.accuracy * 100.0),
                p.map_or("- (extended)".to_string(), |v| format!("{v}%")),
                r.saturations.to_string(),
            ]
        })
        .collect();
    format!(
        "## Table V — KWT-Tiny-Q accuracy vs scale factors\n\n{}\nThe paper's 64/64 collapse is INT16 overflow; with our smaller-magnitude\nsynthetic MFCCs the identical mechanism appears at the extended input\nscales above (watch the saturation counts).\n",
        markdown_table(
            &["Weight scale", "Input scale", "Accuracy (ours)", "Accuracy (paper)", "Saturations"],
            &table
        )
    )
}

/// Table VI — the tensor library (API parity listing).
pub fn table6(_ctx: &ExpContext) -> String {
    let rows = vec![
        vec![
            "computeMeanAndVariance()".into(),
            "kwt_tensor::ops::compute_mean_and_variance".into(),
        ],
        vec![
            "layerNorm()".into(),
            "kwt_tensor::ops::layer_norm / baremetal k_layer_norm_f32".into(),
        ],
        vec![
            "matrixMultiply()".into(),
            "kwt_tensor::ops::matrix_multiply / baremetal k_matmul_*".into(),
        ],
        vec![
            "Softmax()".into(),
            "kwt_tensor::ops::softmax_normalized / k_softmax_f32 / k_softmax_accel".into(),
        ],
        vec![
            "gelu()".into(),
            "kwt_tensor::math::gelu_exact / k_gelu_f32 / k_gelu_accel".into(),
        ],
        vec!["linear()".into(), "kwt_tensor::ops::linear".into()],
        vec![
            "splitIntoQKV()".into(),
            "kwt_tensor::ops::split_into_qkv / k_copy_strided".into(),
        ],
        vec![
            "scaledDotProductAttention()".into(),
            "kwt_tensor::ops::scaled_dot_product_attention / k_attention_*".into(),
        ],
    ];
    format!(
        "## Table VI — transformer tensor library\n\n{}",
        markdown_table(&["Paper method", "This repository"], &rows)
    )
}

/// Table VII — custom instruction behaviours (decode check).
pub fn table7(_ctx: &ExpContext) -> String {
    use kwt_rvasm::{CustomOp, Inst, Reg};
    let rows: Vec<Vec<String>> = [
        (CustomOp::Exp, "LUT e^-X (Q8.24)"),
        (CustomOp::Invert, "LUT 1/X (Q8.24)"),
        (CustomOp::Gelu, "LUT GELU(X) (Q8.24)"),
        (CustomOp::ToFixed, "float -> Q8.24"),
        (CustomOp::ToFloat, "Q8.24 -> float"),
    ]
    .into_iter()
    .map(|(op, desc)| {
        let word = Inst::Custom {
            op,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::Zero,
        }
        .encode();
        vec![
            format!("3'b{:03b}", op as u8),
            format!("ALU_{:?}", op).to_uppercase(),
            desc.to_string(),
            format!("{word:#010x} (opcode 0b0101011)"),
        ]
    })
    .collect();
    format!(
        "## Table VII — custom-1 instruction behaviours\n\n{}",
        markdown_table(
            &["funct3", "Operator", "Behaviour", "Example encoding"],
            &rows
        )
    )
}

/// Table VIII — synthesis area model.
pub fn table8(_ctx: &ExpContext) -> String {
    let model = AreaModel::paper();
    let rows: Vec<Vec<String>> = model
        .table8()
        .iter()
        .map(|r| {
            vec![
                r.attribute.to_string(),
                r.baseline.to_string(),
                r.modified.to_string(),
                format!("{:+.1}%", r.overhead_percent()),
            ]
        })
        .collect();
    format!(
        "## Table VIII — area model (synthesis substitute)\n\n{}\nCombined logic overhead (dLUT+dFF)/(LUT+FF): **{:.1}%** (paper: ~29%).\nLUT ROM bytes: {} (paper: 2.69 kB).\n",
        markdown_table(&["Attribute", "Baseline Ibex", "Modified Ibex", "Overhead"], &rows),
        model.overhead_percent(),
        model.rom_bytes(),
    )
}

/// Builds the three images from the trained tiny model.
fn built_images(ctx: &ExpContext) -> (KwtParams, MfccDataset, [InferenceImage; 3]) {
    let (tiny, test) = ctx.trained_tiny();
    let float_img = InferenceImage::build_float(&tiny).expect("float image");
    let qm = QuantizedKwt::quantize(&tiny, QuantConfig::paper_best());
    let quant_img = InferenceImage::build_quant(&qm).expect("quant image");
    let accel_img = InferenceImage::build_quant(&qm.with_nonlinearity(Nonlinearity::FixedLut))
        .expect("accel image");
    (tiny, test, [float_img, quant_img, accel_img])
}

/// A8-vs-i16 top-1 agreement gate (wired into `scripts/verify.sh`): the
/// fully-INT8 pipeline must agree with the i16 quantised path on ≥ 99 %
/// of the synthetic GSC test split. Also cross-checks that the A8
/// *device* image reproduces the host golden model bit-for-bit on a few
/// clips, so the CI smoke covers the whole A8 stack end to end.
///
/// # Panics
///
/// Panics (failing the verify run) if agreement drops below 99 % or a
/// device logit diverges from the host model.
pub fn check_a8(ctx: &ExpContext) -> String {
    use kwt_quant::{A8Config, A8Kwt};
    let params = crate::enginebench::bench_params();
    let i16m = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).expect("a8 exponents valid");
    let ds = SyntheticGsc::new(GscConfig::paper_binary());
    let fe = kwt_audio::kwt_tiny_frontend().expect("preset is valid");
    let n = if ctx.full {
        ds.len(Split::Test)
    } else {
        200.min(ds.len(Split::Test))
    };
    let image = InferenceImage::build_a8(&a8).expect("a8 image builds");
    let mut session = image.session().expect("session");
    let mut scratch = kwt_audio::MfccScratch::new();
    let mut mfcc = kwt_tensor::Mat::default();
    let mut agree = 0usize;
    for i in 0..n {
        let (wave, _) = ds.utterance(Split::Test, i);
        fe.extract_padded_into(&wave, &mut mfcc, &mut scratch)
            .expect("mfcc");
        let (host_logits, _) = a8.forward_a8(&mfcc).expect("a8 forward");
        let host_arg = host_logits
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .map(|(j, _)| j)
            .expect("classes");
        if host_arg == i16m.predict(&mfcc).expect("i16 forward") {
            agree += 1;
        }
        // device-vs-host bit identity spot check on a handful of clips
        if i < 5 {
            let (dev, _) = session.run(&mfcc).expect("device run");
            for (d, h) in dev.iter().zip(&host_logits) {
                assert_eq!(
                    d.to_bits(),
                    h.to_bits(),
                    "clip {i}: A8 device logit {d} != host golden model {h}"
                );
            }
        }
    }
    let pct = 100.0 * agree as f64 / n as f64;
    assert!(
        pct >= 99.0,
        "A8 top-1 agreement with the i16 quant path fell to {pct:.2}% ({agree}/{n})"
    );
    format!("## A8 agreement gate\n\nA8-vs-i16 top-1 agreement: {agree}/{n} = {pct:.2}% (>= 99% required); device logits bit-identical to the host A8 golden model on the spot-checked clips\n")
}

/// Minimal mirror of one committed `BENCH_engine.json` device-cycle row
/// (the serde shim skips unknown fields, so this tracks only what the
/// gate needs).
#[derive(serde::Deserialize)]
struct BaselineCycleRow {
    variant: String,
    cycles: u64,
}

/// Minimal mirror of the committed `BENCH_engine.json` document.
#[derive(serde::Deserialize)]
struct BaselineDoc {
    device_cycles: Vec<BaselineCycleRow>,
}

/// Device-cycle regression gate (wired into `scripts/verify.sh` and CI):
/// re-measures one inference per image flavour and compares against the
/// committed `BENCH_engine.json` (path overridable via
/// `KWT_CYCLES_BASELINE`). Simulated cycle counts are deterministic per
/// build, so the gate fails hard at **> 3 % worse** — the margin only
/// absorbs intentional, committed re-baselines, not noise.
///
/// Returns a skip message when no baseline file exists (fresh clones /
/// scratch dirs); CI runs from the repository root where it does.
///
/// # Panics
///
/// Panics (failing the verify run) if any flavour regresses by more than
/// 3 %, or if the baseline file exists but cannot be parsed.
pub fn check_cycles(_ctx: &ExpContext) -> String {
    let path =
        std::env::var("KWT_CYCLES_BASELINE").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    let Ok(text) = std::fs::read_to_string(&path) else {
        return format!(
            "## Cycle regression gate\n\nskipped: no baseline at `{path}` \
             (run `paper bench-engine` from the repository root to create one)\n"
        );
    };
    let baseline: BaselineDoc = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse cycle baseline {path}: {e}"));
    let params = crate::enginebench::bench_params();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let accel = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
    let a8 = kwt_quant::A8Kwt::quantize(&params, kwt_quant::A8Config::paper_a8())
        .expect("a8 exponents valid");
    let fe = kwt_audio::kwt_tiny_frontend().expect("preset is valid");
    let mfcc = fe
        .extract_padded(&crate::enginebench::bench_clips(1)[0])
        .expect("mfcc");
    let image_for = |variant: &str| -> InferenceImage {
        match variant {
            "float" => InferenceImage::build_float(&params).expect("float image"),
            "quant" => InferenceImage::build_quant(&qm).expect("quant image"),
            "accel" => InferenceImage::build_quant(&accel).expect("accel image"),
            "accel_xkwtdot" => {
                InferenceImage::build_quant_with_isa(&accel, kwt_baremetal::KernelIsa::Xkwtdot)
                    .expect("xkwtdot image")
            }
            "accel_xkwtdot_a8" => InferenceImage::build_a8(&a8).expect("a8 image"),
            other => panic!("unknown image variant `{other}` in cycle baseline"),
        }
    };
    let mut rows = Vec::new();
    let mut worst: Option<(String, f64)> = None;
    for b in &baseline.device_cycles {
        let image = image_for(&b.variant);
        let mut session = image.session().expect("session");
        let (_, run) = session.run(&mfcc).expect("device run");
        let delta = run.cycles as f64 / b.cycles as f64 - 1.0;
        if worst.as_ref().is_none_or(|(_, w)| delta > *w) {
            worst = Some((b.variant.clone(), delta));
        }
        rows.push(vec![
            b.variant.clone(),
            b.cycles.to_string(),
            run.cycles.to_string(),
            format!("{:+.2}%", delta * 100.0),
        ]);
    }
    let table = markdown_table(&["Variant", "Baseline cycles", "Current", "Delta"], &rows);
    let (worst_variant, worst_delta) = worst.expect("baseline holds at least one variant");
    assert!(
        worst_delta <= 0.03,
        "device cycle regression: `{worst_variant}` is {:.2}% worse than the committed \
         baseline (gate: 3%) — investigate, or re-run `paper bench-engine` and commit the \
         new BENCH_engine.json if the regression is intentional",
        worst_delta * 100.0
    );
    format!(
        "## Cycle regression gate\n\n{table}\nworst delta {:+.2}% (`{worst_variant}`), \
         gate <= +3%\n",
        worst_delta * 100.0
    )
}

/// Minimal mirror of one committed `BENCH_engine.json` cluster-scaling
/// row (serde skips the fields the gate does not compare).
#[derive(serde::Deserialize)]
struct BaselineClusterRow {
    harts: usize,
    soc_cycles: u64,
}

/// Minimal mirror of the committed `BENCH_engine.json` for the cluster
/// gate. A baseline committed before the cluster existed has no
/// `cluster_scaling` field and fails to parse into this mirror; the
/// gate treats that as "no baseline" rather than an error.
#[derive(serde::Deserialize)]
struct BaselineClusterDoc {
    cluster_scaling: Vec<BaselineClusterRow>,
}

/// Cluster gate (wired into `scripts/verify.sh` and CI), over the tuned
/// A8 image:
///
/// 1. **Single-hart identity** — a 1-hart cluster must be bit- *and*
///    cycle-identical to the serial `DeviceSession` (same `RunResult`,
///    same logits, zero stalls).
/// 2. **Functional identity under contention** — every hart of a 4-hart
///    wave must produce logits bit-identical to the serial session.
/// 3. **Throughput** — the 4-hart cluster must finish its clips in at
///    most 1/3 of the sequential single-core cycles (>= 3x
///    clips-per-SoC-cycle).
/// 4. **Regression** — per-hart-count `soc_cycles` must stay within
///    +3 % of the committed `BENCH_engine.json` (path overridable via
///    `KWT_CYCLES_BASELINE`; skipped when no baseline exists).
///
/// Simulated cycles are deterministic, so all four checks are
/// noise-free.
///
/// # Panics
///
/// Panics (failing the verify run) on any identity violation, a 4-hart
/// speedup below 3x, or a baseline regression beyond 3 %.
pub fn check_cluster(_ctx: &ExpContext) -> String {
    use kwt_quant::{A8Config, A8Kwt};
    let params = crate::enginebench::bench_params();
    let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).expect("a8 exponents valid");
    let image = InferenceImage::build_a8(&a8).expect("a8 image builds");
    let fe = kwt_audio::kwt_tiny_frontend().expect("preset is valid");

    let clips = crate::enginebench::bench_clips(4);
    let mut scratch = kwt_audio::MfccScratch::new();
    let mut mfccs = Vec::new();
    for c in &clips {
        let mut m = kwt_tensor::Mat::default();
        fe.extract_padded_into(c, &mut m, &mut scratch)
            .expect("mfcc");
        mfccs.push(m);
    }
    let mut serial = image.session().expect("serial session");
    let mut serial_logits = vec![Vec::new(); mfccs.len()];
    let mut serial_runs = Vec::new();
    for (i, m) in mfccs.iter().enumerate() {
        serial_runs.push(
            serial
                .run_into(m, &mut serial_logits[i])
                .expect("serial run"),
        );
    }

    // 1. single-hart identity
    let mut one = image.cluster_session(1).expect("1-hart session");
    one.load_clip(0, &mfccs[0]).expect("load");
    let wave = one.run_loaded(1);
    let run = *wave.results[0].as_ref().expect("single-hart run completes");
    assert_eq!(
        run, serial_runs[0],
        "single-hart cluster must be cycle-identical to the serial DeviceSession"
    );
    assert_eq!(wave.stats[0].stall_cycles, 0, "a lone hart can never stall");
    let mut logits = Vec::new();
    one.read_logits(0, &mut logits);
    assert_eq!(
        logits, serial_logits[0],
        "single-hart cluster logits must be bit-identical to serial"
    );

    // 2. functional identity under 4-hart contention
    let mut four = image.cluster_session(4).expect("4-hart session");
    for (h, m) in mfccs.iter().enumerate() {
        four.load_clip(h, m).expect("load");
    }
    let wave = four.run_loaded(4);
    for (h, serial) in serial_logits.iter().enumerate().take(4) {
        assert!(wave.results[h].is_ok(), "hart {h} must complete");
        four.read_logits(h, &mut logits);
        assert_eq!(
            &logits, serial,
            "hart {h} logits must be bit-identical to the serial session"
        );
    }

    // 3. throughput: >= 3x clips-per-SoC-cycle at 4 harts
    let rows = crate::enginebench::collect_cluster(&image, &fe);
    let r4 = rows
        .iter()
        .find(|r| r.harts == 4)
        .expect("collect_cluster measures 4 harts");
    assert!(
        r4.speedup_vs_serial >= 3.0,
        "4-hart cluster speedup fell to {:.2}x (gate: >= 3x vs the sequential single core; \
         stall fraction {:.3})",
        r4.speedup_vs_serial,
        r4.stall_fraction
    );

    // 4. committed-baseline regression
    let path =
        std::env::var("KWT_CYCLES_BASELINE").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    let mut baseline_note = format!(
        "baseline comparison skipped: no committed cluster rows at `{path}` \
         (run `paper bench-engine` from the repository root)"
    );
    let mut table_rows = Vec::new();
    if let Ok(text) = std::fs::read_to_string(&path) {
        // pre-cluster baselines have no cluster_scaling field; that is a
        // skip, not an error
        if let Ok(doc) = serde_json::from_str::<BaselineClusterDoc>(&text) {
            let mut worst: Option<(usize, f64)> = None;
            for b in &doc.cluster_scaling {
                let Some(now) = rows.iter().find(|r| r.harts == b.harts) else {
                    continue;
                };
                let delta = now.soc_cycles as f64 / b.soc_cycles as f64 - 1.0;
                if worst.as_ref().is_none_or(|(_, w)| delta > *w) {
                    worst = Some((b.harts, delta));
                }
                table_rows.push(vec![
                    b.harts.to_string(),
                    b.soc_cycles.to_string(),
                    now.soc_cycles.to_string(),
                    format!("{:+.2}%", delta * 100.0),
                ]);
            }
            if let Some((worst_harts, worst_delta)) = worst {
                assert!(
                    worst_delta <= 0.03,
                    "cluster throughput regression: {worst_harts}-hart soc_cycles is {:.2}% \
                     worse than the committed baseline (gate: 3%) — investigate, or re-run \
                     `paper bench-engine` and commit the new BENCH_engine.json if intentional",
                    worst_delta * 100.0
                );
                baseline_note = format!(
                    "worst baseline delta {:+.2}% ({worst_harts} harts), gate <= +3%",
                    worst_delta * 100.0
                );
            }
        }
    }

    let mut scaling_rows = Vec::new();
    for r in &rows {
        scaling_rows.push(vec![
            r.harts.to_string(),
            r.soc_cycles.to_string(),
            format!("{:.3}", r.clips_per_mcycle),
            format!("{:.2}x", r.speedup_vs_serial),
            format!("{:.2}", r.hart_utilisation),
            format!("{:.3}", r.stall_fraction),
        ]);
    }
    let scaling = markdown_table(
        &[
            "Harts",
            "SoC cycles",
            "Clips/Mcycle",
            "Speedup",
            "Utilisation",
            "Stalls",
        ],
        &scaling_rows,
    );
    let baseline_table = if table_rows.is_empty() {
        String::new()
    } else {
        markdown_table(
            &["Harts", "Baseline SoC cycles", "Current", "Delta"],
            &table_rows,
        )
    };
    format!(
        "## Cluster gate\n\nsingle-hart cluster bit- and cycle-identical to the serial \
         session; 4-hart wave logits bit-identical to serial on all harts\n\n{scaling}\n\
         {baseline_table}{baseline_note}\n"
    )
}

/// Fixed-point front-end agreement gate (wired into `scripts/verify.sh`
/// and CI): the fixed-point MFCC path must keep **>= 99.5 %** top-1
/// agreement with the f64 oracle features through the float model on the
/// synthetic GSC test split, and feature errors must stay small in
/// absolute terms.
///
/// # Panics
///
/// Panics (failing the verify run) if agreement drops below 99.5 %.
pub fn check_frontend(ctx: &ExpContext) -> String {
    let params = crate::enginebench::bench_params();
    let packed = params.pack_weights();
    let ds = SyntheticGsc::new(GscConfig::paper_binary());
    let fe = kwt_audio::kwt_tiny_frontend().expect("preset is valid");
    let n = if ctx.full {
        ds.len(Split::Test)
    } else {
        200.min(ds.len(Split::Test))
    };
    let mut scratch = kwt_audio::MfccScratch::new();
    let mut fixed = kwt_tensor::Mat::default();
    let mut agree = 0usize;
    let mut max_feat_err = 0.0f32;
    let argmax = |logits: &[f32]| -> usize {
        logits
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .map(|(j, _)| j)
            .expect("classes")
    };
    for i in 0..n {
        let (wave, _) = ds.utterance(Split::Test, i);
        fe.extract_padded_into(&wave, &mut fixed, &mut scratch)
            .expect("mfcc");
        let reference = fe.extract_padded_reference(&wave).expect("mfcc");
        for (a, b) in fixed.as_slice().iter().zip(reference.as_slice()) {
            max_feat_err = max_feat_err.max((a - b).abs());
        }
        let lf = kwt_model::forward_with(&params, &packed, &fixed).expect("forward");
        let lr = kwt_model::forward_with(&params, &packed, &reference).expect("forward");
        if argmax(&lf) == argmax(&lr) {
            agree += 1;
        }
    }
    let pct = 100.0 * agree as f64 / n as f64;
    assert!(
        pct >= 99.5,
        "fixed-point front end top-1 agreement fell to {pct:.2}% ({agree}/{n}, gate 99.5%)"
    );
    format!(
        "## Front-end agreement gate\n\nfixed-vs-float top-1 agreement: {agree}/{n} = \
         {pct:.2}% (>= 99.5% required); max abs feature error {max_feat_err:.4}\n"
    )
}

/// Table IX — full model comparison (params, sizes, cycles, accuracy).
pub fn table9(ctx: &ExpContext) -> String {
    let (tiny, test, images) = built_images(ctx);
    let x = test.x[0].clone();
    let mut cycles = Vec::new();
    let mut sizes = Vec::new();
    for img in &images {
        let (_, run, _) = img.run(&x).expect("inference");
        cycles.push(run.cycles);
        sizes.push(img.program_bytes());
    }
    // accuracies from the host models (bit-faithful for the LUT parts)
    let (float_acc, _) = evaluate(&tiny, &test).expect("eval");
    let qm = QuantizedKwt::quantize(&tiny, QuantConfig::paper_best());
    let acc_of = |qm: &QuantizedKwt| -> f64 {
        let mut hits = 0;
        for (x, &y) in test.x.iter().zip(&test.y) {
            if qm.predict(x).expect("forward") == y {
                hits += 1;
            }
        }
        hits as f64 / test.len() as f64
    };
    let quant_acc = acc_of(&qm);
    let accel_acc = acc_of(&qm.clone().with_nonlinearity(Nonlinearity::FixedLut));
    let c = KwtConfig::kwt_tiny();
    let rom = LutSet::new().rom_bytes();
    let rows = vec![
        vec![
            "# Parameters".into(),
            c.param_count().to_string(),
            c.param_count().to_string(),
            c.param_count().to_string(),
        ],
        vec![
            "Model Size".into(),
            format!("{:.3} kB", c.memory_bytes_f32() as f64 / 1e3),
            format!("{:.3} kB", c.memory_bytes_i8() as f64 / 1e3),
            format!(
                "{:.3} kB (+{:.2} kB ROM)",
                c.memory_bytes_i8() as f64 / 1e3,
                rom as f64 / 1e3
            ),
        ],
        vec![
            "Program Size".into(),
            format!("{:.1} kB (paper: 58.8)", sizes[0] as f64 / 1e3),
            format!("{:.1} kB (paper: 44.4)", sizes[1] as f64 / 1e3),
            format!("{:.1} kB (paper: 44.6)", sizes[2] as f64 / 1e3),
        ],
        vec![
            "Inference Clock Cycles".into(),
            format!("{:.1}M (paper: 26M)", cycles[0] as f64 / 1e6),
            format!("{:.1}M (paper: 13M)", cycles[1] as f64 / 1e6),
            format!("{:.1}M (paper: 5.5M)", cycles[2] as f64 / 1e6),
        ],
        vec![
            "Accuracy".into(),
            format!("{:.1}% (paper: 87.2%)", float_acc * 100.0),
            format!("{:.1}% (paper: 82.5%)", quant_acc * 100.0),
            format!("{:.1}% (paper: ~80%)", accel_acc * 100.0),
        ],
    ];
    let speedup = cycles[0] as f64 / cycles[2] as f64;
    format!(
        "## Table IX — model comparison\n\n{}\nEnd-to-end speedup float -> accelerated: **{speedup:.1}x** (paper: ~4.7x).\nInference at 50 MHz: {:.0} ms -> {:.0} ms.\n",
        markdown_table(&["Attribute", "KWT-Tiny (float)", "KWT-Tiny-Q", "KWT-Tiny-Q (+HW)"], &rows),
        Platform::ibex().cycles_to_seconds(cycles[0]) * 1e3,
        Platform::ibex().cycles_to_seconds(cycles[2]) * 1e3,
    )
}

fn profile_figure(ctx: &ExpContext, title: &str, block: Option<&str>) -> String {
    let (_, test, images) = built_images(ctx);
    let (_, run, report) = images[0].run(&test.x[0]).expect("inference");
    let entries = match block {
        None => kwt_baremetal::regions::aggregate_by_op(&report.regions),
        Some(b) => kwt_baremetal::regions::filter_block(&report.regions, b),
    };
    let total: u64 = match block {
        None => run.cycles,
        Some(_) => entries.iter().map(|(_, c)| c).sum(),
    };
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|(name, c)| {
            vec![
                name.clone(),
                c.to_string(),
                format!("{:.1}%", 100.0 * *c as f64 / total.max(1) as f64),
            ]
        })
        .collect();
    format!(
        "## {title}\n\n{}",
        markdown_table(&["Operation", "Cycles", "Share"], &rows)
    )
}

/// Fig. 3 — profile of a full float inference by operation.
pub fn fig3(ctx: &ExpContext) -> String {
    profile_figure(ctx, "Fig. 3 — float inference profile by operation", None)
}

/// Fig. 4 — profile of the self-attention computation.
pub fn fig4(ctx: &ExpContext) -> String {
    profile_figure(ctx, "Fig. 4 — self-attention profile", Some("attn"))
}

/// Fig. 5 — profile of the MLP computation.
pub fn fig5(ctx: &ExpContext) -> String {
    profile_figure(ctx, "Fig. 5 — MLP profile", Some("mlp"))
}

/// Fig. 7 — GELU vs its 32-entry LUT approximation + threshold search.
pub fn fig7(_ctx: &ExpContext) -> String {
    let fit = gelu_opt::optimize_thresholds(-1.5, 1.5, 120);
    let luts = LutSet::new();
    let mut rows = Vec::new();
    for i in (-40..=40).step_by(5) {
        let x = i as f32 * 0.1;
        let exact = gelu_exact(x);
        let approx = kwt_quant::fixed_gelu(x, &luts);
        rows.push(vec![
            format!("{x:.1}"),
            format!("{exact:.4}"),
            format!("{approx:.4}"),
            format!("{:+.4}", approx - exact),
        ]);
    }
    format!(
        "## Fig. 7 — GELU vs 32-entry LUT approximation\n\n{}\nGradient-descent thresholds: lo = {:.3}, hi = {:.3} (paper: -1.857, 1.595).\nMax |error| = {:.4}; mean relative error = {:.4}% (paper quotes 0.0042%).\n",
        markdown_table(&["x", "GELU(x)", "LUT approx", "error"], &rows),
        fit.lo,
        fit.hi,
        fit.max_err,
        fit.mean_rel_err_pct,
    )
}

/// Ablation (beyond the paper): cycle cost of the idealised single-cycle
/// timing model vs the Ibex model, separating instruction count from
/// stall effects.
pub fn ablation_timing(ctx: &ExpContext) -> String {
    use kwt_rv32::{Machine, TimingModel};
    let (_, test, images) = built_images(ctx);
    let x = &test.x[0];
    let mut rows = Vec::new();
    for img in &images {
        let (_, run, _) = img.run(x).expect("run");
        // re-run with the single-cycle model
        let mut m = Machine::load(&img.program, Platform::ibex())
            .expect("fits")
            .with_timing(TimingModel::single_cycle());
        match img.flavor {
            kwt_baremetal::Flavor::Float => m.write_f32s(img.input_addr(), x.as_slice()),
            _ => {
                let ya = QuantConfig::paper_best().input_bits;
                let (q, _) = kwt_tensor::qops::quantize_i16(x, ya);
                m.write_i16s(img.input_addr(), q.as_slice());
            }
        }
        let ideal = m.run(2_000_000_000).expect("halts");
        rows.push(vec![
            format!("{:?}", img.flavor),
            format!("{:.2}M", run.cycles as f64 / 1e6),
            format!("{:.2}M", ideal.cycles as f64 / 1e6),
            format!("{:.2}x", run.cycles as f64 / ideal.cycles as f64),
        ]);
    }
    format!(
        "## Ablation — Ibex timing vs idealised single-cycle core\n\n{}",
        markdown_table(
            &["Flavour", "Ibex cycles", "Single-cycle", "Stall factor"],
            &rows
        )
    )
}

/// Ablation (beyond the paper): accuracy of fully-LUT softmax/GELU vs
/// float non-linearities across scale factors.
pub fn ablation_nonlinearity(ctx: &ExpContext) -> String {
    let (tiny, test) = ctx.trained_tiny();
    let mut rows = Vec::new();
    for (wf, inf) in [(64, 32), (32, 32)] {
        let qc = QuantConfig::from_factors(wf, inf).expect("pow2");
        for (name, nl) in [
            ("float", Nonlinearity::FloatExact),
            ("LUT", Nonlinearity::FixedLut),
        ] {
            let qm = QuantizedKwt::quantize(&tiny, qc).with_nonlinearity(nl);
            let mut hits = 0;
            for (x, &y) in test.x.iter().zip(&test.y) {
                if qm.predict(x).expect("forward") == y {
                    hits += 1;
                }
            }
            rows.push(vec![
                format!("{wf}/{inf}"),
                name.to_string(),
                format!("{:.1}%", 100.0 * hits as f64 / test.len() as f64),
            ]);
        }
    }
    format!(
        "## Ablation — non-linearity implementation vs accuracy\n\n{}",
        markdown_table(&["Scales (w/in)", "SoftMax+GELU", "Accuracy"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ExpContext {
        ExpContext {
            full: false,
            results_dir: std::env::temp_dir().join("kwt_bench_test_results"),
        }
    }

    #[test]
    fn static_tables_render() {
        let ctx = quick_ctx();
        for table in [
            table1(&ctx),
            table2(&ctx),
            table3(&ctx),
            table6(&ctx),
            table7(&ctx),
            table8(&ctx),
        ] {
            assert!(table.contains('|'), "table looks empty: {table}");
        }
    }

    #[test]
    fn table3_contains_paper_values() {
        let t = table3(&quick_ctx());
        assert!(t.contains("[40, 98]"));
        assert!(t.contains("[16, 26]"));
        assert!(t.contains("| SEQLEN | 99 | 27 |"));
    }

    #[test]
    fn table7_lists_all_five_ops() {
        let t = table7(&quick_ctx());
        for f3 in ["3'b000", "3'b001", "3'b011", "3'b100", "3'b101"] {
            assert!(t.contains(f3), "missing {f3}");
        }
    }

    #[test]
    fn fig7_reports_thresholds() {
        let f = fig7(&quick_ctx());
        assert!(f.contains("lo ="));
        assert!(f.contains("paper: -1.857"));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
    }
}
