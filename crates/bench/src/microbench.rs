//! Self-contained wall-clock micro-benchmarks with a machine-readable
//! summary (`BENCH_tensor.json`), driven by the `paper bench-tensor`
//! target.
//!
//! Measures exactly the two hot paths this repository optimises:
//!
//! 1. the quantised/float GEMM kernels, naive reference vs packed blocked
//!    fast path (`kwt_tensor::packed`), and
//! 2. RV32 simulator stepping with the pre-decode execution cache on and
//!    off (`kwt_rv32`).
//!
//! Honors `KWT_BENCH_SMOKE=1` (single iteration per measurement — CI
//! smoke mode) and `KWT_BENCH_MEAS_MS` (per-measurement budget,
//! default 200 ms).

use crate::timing::{smoke, time_ns};
use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, Reg};
use kwt_tensor::{ops, packed, qops, Mat, PackedMat};
use serde::Serialize;
use std::hint::black_box;

/// One naive-vs-packed GEMM comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MatmulRow {
    /// `MxKxN` of the product.
    pub shape: String,
    /// Kernel family: `i16xi8`, `i16xi16` or `f32`.
    pub kernel: String,
    /// ns/iter of the naive reference oracle.
    pub naive_ns: f64,
    /// ns/iter of the blocked kernel over pre-packed weights.
    pub packed_ns: f64,
    /// `naive_ns / packed_ns`.
    pub speedup: f64,
}

/// One decode-cache-on/off simulator comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SimulatorRow {
    /// Program name.
    pub program: String,
    /// Instructions retired per run.
    pub instructions: u64,
    /// ns/run with the decode cache disabled.
    pub cache_off_ns: f64,
    /// ns/run with the decode cache enabled (cold cache each run).
    pub cache_on_ns: f64,
    /// ns/run re-running a warm machine, decode cache enabled.
    pub warm_on_ns: f64,
    /// ns/run re-running a warm machine, decode cache disabled.
    pub warm_off_ns: f64,
    /// Cold `cache_off_ns / cache_on_ns` (includes `Machine::load`).
    pub speedup_cold: f64,
    /// Steady-state `warm_off_ns / warm_on_ns` — the stepping speedup an
    /// inference-length run sees.
    pub speedup_warm: f64,
    /// Steady-state simulated-instruction throughput, million steps/s.
    pub warm_msteps_per_s: f64,
}

/// The full `BENCH_tensor.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSummary {
    /// Producing command.
    pub generated_by: String,
    /// True when produced under `KWT_BENCH_SMOKE=1` (timings meaningless).
    pub smoke: bool,
    /// GEMM comparisons.
    pub matmul: Vec<MatmulRow>,
    /// Simulator comparisons.
    pub simulator: Vec<SimulatorRow>,
}

/// Benchmark GEMM shapes: the KWT-Tiny MLP shape, the attention-scores
/// shape, and two larger shapes showing how the gap widens with the
/// working set. Shared with `benches/tensor_kernels.rs`.
pub const MATMUL_SHAPES: [(usize, usize, usize); 4] =
    [(27, 12, 24), (27, 8, 27), (64, 64, 64), (128, 128, 128)];

/// Deterministic GEMM operands at `MxKxN`, shared by the criterion
/// benches and the `BENCH_tensor.json` collector:
/// `(a_f32, b_f32, a_i16, b_i8, b_i16)`.
#[allow(clippy::type_complexity)]
pub fn matmul_operands(
    m: usize,
    k: usize,
    n: usize,
) -> (Mat<f32>, Mat<f32>, Mat<i16>, Mat<i8>, Mat<i16>) {
    let a = Mat::from_fn(m, k, |r, q| ((r * k + q) as f32 * 0.1).sin());
    let b = Mat::from_fn(k, n, |r, q| ((r * n + q) as f32 * 0.07).cos() * 0.5);
    let (aq, _) = qops::quantize_i16(&a, 5);
    let (bq8, _) = qops::quantize_i8(&b, 6);
    let (bq16, _) = qops::quantize_i16(&b, 6);
    (a, b, aq, bq8, bq16)
}

fn matmul_rows(m: usize, k: usize, n: usize) -> Vec<MatmulRow> {
    let shape = format!("{m}x{k}x{n}");
    let (a, b, aq, bq8, bq16) = matmul_operands(m, k, n);
    let pb8 = PackedMat::pack(&bq8);
    let pb16 = PackedMat::pack(&bq16);
    let pbf = PackedMat::pack(&b);
    let row = |kernel: &str, naive_ns: f64, packed_ns: f64| MatmulRow {
        shape: shape.clone(),
        kernel: kernel.to_string(),
        naive_ns,
        packed_ns,
        speedup: naive_ns / packed_ns,
    };
    vec![
        row(
            "i16xi8",
            time_ns(|| {
                qops::reference::matmul_i16_i8(black_box(&aq), black_box(&bq8), None, 6).unwrap()
            }),
            time_ns(|| {
                packed::matmul_i16_i8_packed(black_box(&aq), black_box(&pb8), None, 6).unwrap()
            }),
        ),
        row(
            "i16xi16",
            time_ns(|| {
                qops::reference::matmul_i16_i16(black_box(&aq), black_box(&bq16), 6).unwrap()
            }),
            time_ns(|| packed::matmul_i16_i16_packed(black_box(&aq), black_box(&pb16), 6).unwrap()),
        ),
        row(
            "f32",
            time_ns(|| ops::reference::matrix_multiply(black_box(&a), black_box(&b)).unwrap()),
            time_ns(|| packed::matrix_multiply_packed(black_box(&a), black_box(&pbf)).unwrap()),
        ),
    ]
}

/// The simulator benchmark workload shared by the criterion benches and
/// the `BENCH_tensor.json` collector: a counted loop of either arithmetic
/// or store/load bodies.
pub fn loop_program(store_heavy: bool, iterations: i32) -> kwt_rvasm::Program {
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, iterations);
    asm.li(Reg::A0, 0);
    let top = asm.new_label();
    asm.bind(top).unwrap();
    for _ in 0..4 {
        if store_heavy {
            asm.emit(Inst::Sw {
                rs2: Reg::T0,
                rs1: Reg::Sp,
                imm: -16,
            });
            asm.emit(Inst::Lw {
                rd: Reg::A1,
                rs1: Reg::Sp,
                imm: -16,
            });
            asm.emit(Inst::Add {
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A1,
            });
        } else {
            asm.emit(Inst::Addi {
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 3,
            });
            asm.emit(Inst::Xor {
                rd: Reg::A1,
                rs1: Reg::A0,
                rs2: Reg::T0,
            });
            asm.emit(Inst::Mul {
                rd: Reg::A2,
                rs1: Reg::A1,
                rs2: Reg::A0,
            });
        }
    }
    asm.emit(Inst::Addi {
        rd: Reg::T0,
        rs1: Reg::T0,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: Reg::T0,
            rs2: Reg::Zero,
            offset: 0,
        },
        top,
    );
    asm.emit(Inst::Ebreak);
    asm.finish().expect("loop program assembles")
}

fn simulator_row(name: &str, program: &kwt_rvasm::Program) -> SimulatorRow {
    let mut m = Machine::load(program, Platform::ibex()).expect("fits");
    let instructions = m.run(10_000_000).expect("halts").instructions;
    let cache_off_ns = time_ns(|| {
        let mut m = Machine::load(program, Platform::ibex()).unwrap();
        m.cpu.set_decode_cache_enabled(false);
        m.run(10_000_000).unwrap()
    });
    let cache_on_ns = time_ns(|| {
        let mut m = Machine::load(program, Platform::ibex()).unwrap();
        m.run(10_000_000).unwrap()
    });
    let rerun = |enabled: bool| {
        let mut warm = Machine::load(program, Platform::ibex()).expect("fits");
        warm.cpu.set_decode_cache_enabled(enabled);
        warm.run(10_000_000).expect("halts");
        time_ns(|| {
            warm.reset_cpu();
            warm.run(10_000_000).unwrap()
        })
    };
    let warm_on_ns = rerun(true);
    let warm_off_ns = rerun(false);
    SimulatorRow {
        program: name.to_string(),
        instructions,
        cache_off_ns,
        cache_on_ns,
        warm_on_ns,
        warm_off_ns,
        speedup_cold: cache_off_ns / cache_on_ns,
        speedup_warm: warm_off_ns / warm_on_ns,
        warm_msteps_per_s: instructions as f64 / warm_on_ns * 1e3,
    }
}

/// Runs every comparison and returns the summary document.
pub fn collect() -> BenchSummary {
    let mut matmul = Vec::new();
    for (m, k, n) in MATMUL_SHAPES {
        matmul.extend(matmul_rows(m, k, n));
    }
    let simulator = vec![
        simulator_row("arith_loop", &loop_program(false, 2_000)),
        simulator_row("memory_loop", &loop_program(true, 2_000)),
    ];
    BenchSummary {
        generated_by: "paper bench-tensor".to_string(),
        smoke: smoke(),
        matmul,
        simulator,
    }
}

/// Runs [`collect`], writes `BENCH_tensor.json` under `out_dir`, and
/// returns a human-readable table.
pub fn run_and_write(out_dir: &std::path::Path) -> String {
    let summary = collect();
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    let path = out_dir.join("BENCH_tensor.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let mut out = format!("# bench-tensor (written to {})\n", path.display());
    out.push_str("matmul kernels (naive -> packed):\n");
    for r in &summary.matmul {
        out.push_str(&format!(
            "  {:<12} {:<8} {:>10.0} ns -> {:>10.0} ns   {:.2}x\n",
            r.shape, r.kernel, r.naive_ns, r.packed_ns, r.speedup
        ));
    }
    out.push_str("rv32 stepping (decode cache off -> on):\n");
    for r in &summary.simulator {
        out.push_str(&format!(
            "  {:<12} {:>9} instr  cold {:.2}x  steady-state {:.2}x ({:.0} -> {:.0} ns, {:.1} Msteps/s)\n",
            r.program, r.instructions, r.speedup_cold, r.speedup_warm,
            r.warm_off_ns, r.warm_on_ns, r.warm_msteps_per_s
        ));
    }
    if summary.smoke {
        out.push_str("(smoke mode: single-iteration timings, not meaningful)\n");
    }
    out
}
