//! # kwt-bench
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation. The `paper` binary is the entry point:
//!
//! ```text
//! cargo run -p kwt-bench --release --bin paper -- all
//! cargo run -p kwt-bench --release --bin paper -- table9
//! cargo run -p kwt-bench --release --bin paper -- table4 --full
//! ```
//!
//! Trained models are cached under `results/` so repeated invocations do
//! not retrain. `--full` enables the expensive parts (training the 611 k
//! parameter KWT-1); the default "quick" mode trains only KWT-Tiny
//! (~10 s) and reports KWT-1 accuracy as not measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascadebench;
pub mod enginebench;
pub mod experiments;
pub mod faultsweep;
pub mod gscbench;
pub mod microbench;
pub mod servebench;
mod timing;
pub mod tune;

pub use experiments::ExpContext;
