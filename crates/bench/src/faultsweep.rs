//! `paper fault-sweep`: the chaos harness behind the robustness story.
//!
//! Sweeps the full fault taxonomy (RAM bit flips in the static image,
//! transient register flips, forced decode traps, LUT ROM truncation,
//! cycle-watchdog kills) across every image flavour the repository can
//! build (`float`, `quant`, `accel`, `accel_xkwtdot`, `a8`) and checks
//! the robustness contract on every cell:
//!
//! - **zero host panics** — every injected fault surfaces as a typed
//!   [`kwt_baremetal::BuildError`] /
//!   [`kwt_engine::EngineError`] or a correct answer,
//!   never as a panic (each cell runs under `catch_unwind` to prove it);
//! - **no silent persistent corruption** — a static-image flip that
//!   changes the logits without trapping must be flagged by
//!   [`kwt_baremetal::DeviceSession::recover`];
//! - **recovery restores bit identity** — after every faulted run,
//!   `recover()` + rerun reproduces the clean logits bit-for-bit;
//! - **failover is exact** — watchdog-killed requests served through
//!   [`ResilientBackend`](kwt_engine::ResilientBackend) return logits
//!   bit-identical to running the fallback directly.
//!
//! Any violated invariant panics the gate (non-zero exit, same idiom as
//! `paper check-a8`). The coverage table is printed and written to
//! `results/FAULT_SWEEP.md`. `--smoke` runs fewer seeds per cell for CI;
//! the default runs the full matrix.

use crate::ExpContext;
use kwt_audio::{MfccExtractor, MfccScratch};
use kwt_baremetal::{BuildError, InferenceImage, KernelIsa};
use kwt_dataset::{GscConfig, Split, SyntheticGsc};
use kwt_engine::{Backend, Engine, HostFloatBackend, ResilientConfig, Rv32SimBackend};
use kwt_quant::{A8Config, A8Kwt, Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_rv32::{FaultPlan, Trap};
use kwt_tensor::Mat;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a single injected fault resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The run completed with bit-identical logits and recovery found
    /// nothing to repair (the flip landed in a dead byte, or the plan
    /// never fired before `ebreak`).
    Benign,
    /// Bit-identical logits, but recovery did repair state (masked
    /// corruption — e.g. a flip in padding, or a truncated LUT the
    /// program never indexed past).
    Masked,
    /// The logits changed without a trap and recovery detected the
    /// corruption — the "detectable on recover()" arm of the contract.
    SilentDetected,
    /// The logits changed, nothing persistent to detect (transient
    /// register flip); recovery still restores bit identity.
    Transient,
    /// The run stopped with a typed device error.
    Trapped,
    /// Served correctly through the engine ladder after recovery.
    Recovered,
    /// Served correctly by a fallback, bit-identical to running it
    /// directly.
    FailedOver,
    /// The host panicked — an automatic gate failure.
    Panicked,
}

impl Outcome {
    fn label(self) -> &'static str {
        match self {
            Outcome::Benign => "benign",
            Outcome::Masked => "masked",
            Outcome::SilentDetected => "silent-detected",
            Outcome::Transient => "transient",
            Outcome::Trapped => "trap",
            Outcome::Recovered => "recovered",
            Outcome::FailedOver => "failover",
            Outcome::Panicked => "PANIC",
        }
    }
}

const FAULT_KINDS: [&str; 5] = [
    "mem-flip",
    "reg-flip",
    "forced-trap",
    "lut-truncate",
    "watchdog",
];

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One (flavour, fault-kind) cell's accumulated outcomes.
#[derive(Debug, Default)]
struct Cell {
    outcomes: Vec<Outcome>,
}

impl Cell {
    fn summary(&self) -> String {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for o in &self.outcomes {
            let l = o.label();
            match counts.iter_mut().find(|(k, _)| *k == l) {
                Some((_, n)) => *n += 1,
                None => counts.push((l, 1)),
            }
        }
        counts
            .iter()
            .map(|(k, n)| format!("{n} {k}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A faulted run on a persistent session, followed by the universal
/// post-conditions: recovery must restore bit-identical behaviour, and
/// silent static corruption must be detectable.
///
/// `require_detection` is set for static-image flips (the proptest
/// contract); transient register faults may change an answer without
/// leaving anything persistent behind.
fn session_cell(
    session: &mut kwt_baremetal::DeviceSession,
    mfcc: &Mat<f32>,
    golden: &[f32],
    plan: FaultPlan,
    require_detection: bool,
) -> Outcome {
    session.inject_faults(plan);
    let run = catch_unwind(AssertUnwindSafe(|| session.run(mfcc)));
    let report = session.recover();
    let outcome = match run {
        Err(_) => Outcome::Panicked,
        Ok(Err(e)) => {
            // every failure must be the structured device form, not a
            // bare trap or a stringly error
            assert!(
                matches!(e, BuildError::Device(_)),
                "fault surfaced as an untyped error: {e}"
            );
            Outcome::Trapped
        }
        Ok(Ok((logits, _))) => {
            if bits_eq(&logits, golden) {
                if report.detected_corruption() {
                    Outcome::Masked
                } else {
                    Outcome::Benign
                }
            } else {
                if require_detection {
                    assert!(
                        report.detected_corruption(),
                        "static-image flip changed the logits silently and \
                         recover() found nothing to repair"
                    );
                }
                if report.detected_corruption() {
                    Outcome::SilentDetected
                } else {
                    Outcome::Transient
                }
            }
        }
    };
    // A-B-A: whatever happened, the recovered session must reproduce
    // the clean run exactly
    let (again, _) = session.run(mfcc).expect("post-recovery run must not fault");
    assert!(
        bits_eq(&again, golden),
        "post-recovery logits differ from the clean run"
    );
    outcome
}

/// A forced mid-inference trap served through the engine ladder: the
/// primary recovers and retries, so the answer matches the clean device
/// run bit-for-bit and no failover happens.
fn engine_trap_cell(
    image: &InferenceImage,
    fe: &MfccExtractor,
    fallback_params: &kwt_model::KwtParams,
    wave: &[f32],
    golden: &[f32],
    at_step: u64,
) -> Outcome {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let primary = Box::new(Rv32SimBackend::new(image)?);
        let fallbacks: Vec<Box<dyn Backend>> =
            vec![Box::new(HostFloatBackend::new(fallback_params.clone()))];
        let mut engine =
            Engine::resilient(primary, fallbacks, ResilientConfig::default(), fe.clone())?;
        engine.backend_mut().inject_faults(
            FaultPlan::new()
                .force_trap_at_step(at_step, Trap::IllegalInstruction { pc: 0, word: 0 }),
        );
        let pred = engine.classify(wave)?;
        let stats = engine.fault_stats().expect("resilient engine has stats");
        Ok::<_, kwt_engine::EngineError>((pred.logits, stats))
    }));
    match run {
        Err(_) => Outcome::Panicked,
        Ok(Err(e)) => panic!("forced trap was not absorbed by the ladder: {e}"),
        Ok(Ok((logits, stats))) => {
            assert!(
                bits_eq(&logits, golden),
                "recovered request differs from the clean device run"
            );
            assert_eq!(stats.traps_seen, 1, "exactly one trap expected");
            assert_eq!(stats.recoveries, 1, "exactly one recovery expected");
            assert_eq!(stats.failovers, 0, "recovery must win before failover");
            Outcome::Recovered
        }
    }
}

/// A cycle budget far below any device inference: every attempt is
/// watchdog-killed and the request fails over to the host float
/// backend, bit-identical to running that backend directly.
fn engine_watchdog_cell(
    image: &InferenceImage,
    fe: &MfccExtractor,
    fallback_params: &kwt_model::KwtParams,
    wave: &[f32],
    want_float: &[f32],
) -> Outcome {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let primary = Box::new(Rv32SimBackend::new(image)?);
        let fallbacks: Vec<Box<dyn Backend>> =
            vec![Box::new(HostFloatBackend::new(fallback_params.clone()))];
        let rcfg = ResilientConfig {
            max_recoveries: 1,
            cycle_budget: Some(10_000),
            quarantine_after: 3,
        };
        let mut engine = Engine::resilient(primary, fallbacks, rcfg, fe.clone())?;
        let pred = engine.classify(wave)?;
        let stats = engine.fault_stats().expect("resilient engine has stats");
        Ok::<_, kwt_engine::EngineError>((pred.logits, stats))
    }));
    match run {
        Err(_) => Outcome::Panicked,
        Ok(Err(e)) => panic!("watchdog kill was not absorbed by the ladder: {e}"),
        Ok(Ok((logits, stats))) => {
            assert!(
                bits_eq(&logits, want_float),
                "failover logits differ from running the fallback directly"
            );
            assert_eq!(
                stats.budget_kills, 2,
                "initial try + one retry, both killed"
            );
            assert_eq!(stats.failovers, 1, "request must be served by the fallback");
            Outcome::FailedOver
        }
    }
}

/// The cluster isolation contract, one faulted wave at a time: a fault
/// injected into one hart of an N-hart cluster must stay on that hart —
/// every other hart's logits bit-identical to the fault-free wave — and
/// per-hart recovery must make the next wave fully clean again.
///
/// Returns `(outcome, victim_trapped)`; panics on any isolation or
/// recovery violation (the caller wraps this in `catch_unwind`).
fn cluster_fault_trial(
    cluster: &mut kwt_baremetal::ClusterSession,
    mfcc: &Mat<f32>,
    clean: &[Vec<f32>],
    victim: usize,
    plan: FaultPlan,
) -> (Outcome, bool) {
    let harts = cluster.num_harts();
    for h in 0..harts {
        cluster.load_clip(h, mfcc).expect("load clip");
    }
    cluster.inject_faults(victim, plan);
    let wave = cluster.run_loaded(harts);
    let mut logits = Vec::new();
    for h in (0..harts).filter(|&h| h != victim) {
        assert!(
            wave.results[h].is_ok(),
            "fault on hart {victim} leaked a trap into hart {h}"
        );
        cluster.read_logits(h, &mut logits);
        assert!(
            bits_eq(&logits, &clean[h]),
            "fault on hart {victim} changed hart {h}'s logits"
        );
    }
    let trapped = wave.results[victim].is_err();
    let victim_clean = if trapped {
        false
    } else {
        cluster.read_logits(victim, &mut logits);
        bits_eq(&logits, &clean[victim])
    };
    let report = cluster.recover(victim);
    // the recovered wave must be fully clean on every hart
    for h in 0..harts {
        cluster.load_clip(h, mfcc).expect("load clip");
    }
    let after = cluster.run_loaded(harts);
    for (h, clean_h) in clean.iter().enumerate().take(harts) {
        assert!(
            after.results[h].is_ok(),
            "post-recovery wave faulted on hart {h}"
        );
        cluster.read_logits(h, &mut logits);
        assert!(
            bits_eq(&logits, clean_h),
            "post-recovery hart {h} logits differ from the fault-free wave"
        );
    }
    let outcome = if trapped {
        Outcome::Trapped
    } else if victim_clean {
        if report.detected_corruption() {
            Outcome::Masked
        } else {
            Outcome::Benign
        }
    } else if report.detected_corruption() {
        Outcome::SilentDetected
    } else {
        Outcome::Transient
    };
    (outcome, trapped)
}

/// Runs the sweep and renders the coverage table. Panics (non-zero
/// exit) on any contract violation; see the module docs for the
/// invariants.
pub fn run(ctx: &ExpContext, smoke: bool) -> String {
    let seeds: u64 = if smoke { 2 } else { 6 };
    let params = crate::enginebench::bench_params();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let accel = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
    let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).expect("a8 exponents valid");
    let images: Vec<(&str, InferenceImage)> = vec![
        (
            "float",
            InferenceImage::build_float(&params).expect("float image"),
        ),
        (
            "quant",
            InferenceImage::build_quant(&qm).expect("quant image"),
        ),
        (
            "accel",
            InferenceImage::build_quant(&accel).expect("accel image"),
        ),
        (
            "accel_xkwtdot",
            InferenceImage::build_quant_with_isa(&accel, KernelIsa::Xkwtdot)
                .expect("xkwtdot image"),
        ),
        ("a8", InferenceImage::build_a8(&a8).expect("a8 image")),
    ];

    let fe = kwt_audio::kwt_tiny_frontend().expect("preset is valid");
    let ds = SyntheticGsc::new(GscConfig::paper_binary());
    let (wave, _) = ds.utterance(Split::Test, 0);
    let mut scratch = MfccScratch::new();
    let mut mfcc = Mat::default();
    fe.extract_padded_into(&wave, &mut mfcc, &mut scratch)
        .expect("mfcc");
    let want_float = Engine::host_float(params.clone(), fe.clone())
        .expect("host float engine")
        .classify(&wave)
        .expect("host float run")
        .logits;

    let mut table: Vec<(&str, Vec<Cell>)> = Vec::new();
    let mut panics = 0usize;
    let mut trials = 0usize;
    for (name, image) in &images {
        let mut session = image.session().expect("session");
        let (golden, clean) = session.run(&mfcc).expect("clean run");
        let steps = clean.instructions;
        let ranges = image.static_ranges();
        let mut cells: Vec<Cell> = (0..FAULT_KINDS.len()).map(|_| Cell::default()).collect();

        // mem-flip: seeded single-bit flips aimed at the static image
        for seed in 0..seeds {
            let (lo, len) = ranges[seed as usize % ranges.len()];
            let plan = FaultPlan::seeded_mem_flip(seed, steps, lo, lo + len);
            cells[0]
                .outcomes
                .push(session_cell(&mut session, &mfcc, &golden, plan, true));
        }
        // reg-flip: transient architectural-register flips
        for seed in 0..seeds {
            let plan = FaultPlan::seeded_reg_flip(seed, steps);
            cells[1]
                .outcomes
                .push(session_cell(&mut session, &mfcc, &golden, plan, false));
        }
        // forced-trap: the engine ladder recovers and retries
        cells[2].outcomes.push(engine_trap_cell(
            image,
            &fe,
            &params,
            &wave,
            &golden,
            steps / 2,
        ));
        // lut-truncate: shrink the non-linearity ROMs under the program
        cells[3].outcomes.push(session_cell(
            &mut session,
            &mfcc,
            &golden,
            FaultPlan::new().truncate_luts(0, 1),
            true,
        ));
        // watchdog: a budget no inference can meet forces exact failover
        cells[4].outcomes.push(engine_watchdog_cell(
            image,
            &fe,
            &params,
            &wave,
            &want_float,
        ));

        for cell in &cells {
            trials += cell.outcomes.len();
            panics += cell
                .outcomes
                .iter()
                .filter(|o| **o == Outcome::Panicked)
                .count();
        }
        table.push((name, cells));
    }

    // cluster flavour: the a8 image on a 4-hart cluster — faults on one
    // hart must be invisible to the other three, and per-hart recovery
    // must restore the whole wave
    let harts = 4usize;
    let a8_image = &images
        .iter()
        .find(|(n, _)| *n == "a8")
        .expect("a8 image in the matrix")
        .1;
    let mut cluster_cell = Cell::default();
    {
        let mut cluster = a8_image.cluster_session(harts).expect("cluster session");
        for h in 0..harts {
            cluster.load_clip(h, &mfcc).expect("load clip");
        }
        let base = cluster.run_loaded(harts);
        let mut clean = vec![Vec::new(); harts];
        for (h, c) in clean.iter_mut().enumerate() {
            assert!(base.results[h].is_ok(), "clean cluster wave must not fault");
            cluster.read_logits(h, c);
        }
        let ranges = a8_image.static_ranges();
        let steps = base.results[0].as_ref().expect("clean run").instructions;
        let mut traps_seen = 0usize;
        for seed in 0..seeds {
            let victim = seed as usize % harts;
            // cycle the fault kinds: forced decode trap at the victim's
            // entry pc, a static-image bit flip, a transient reg flip
            let plan = match seed % 3 {
                0 => {
                    cluster.load_clip(victim, &mfcc).expect("load clip");
                    let pc = cluster.hart(victim).cpu.pc;
                    FaultPlan::new()
                        .force_trap_at_pc(pc, Trap::IllegalInstruction { pc: 0, word: 0 })
                }
                1 => {
                    let (lo, len) = ranges[seed as usize % ranges.len()];
                    FaultPlan::seeded_mem_flip(seed, steps, lo, lo + len)
                }
                _ => FaultPlan::seeded_reg_flip(seed, steps),
            };
            let run = catch_unwind(AssertUnwindSafe(|| {
                cluster_fault_trial(&mut cluster, &mfcc, &clean, victim, plan)
            }));
            match run {
                Err(_) => cluster_cell.outcomes.push(Outcome::Panicked),
                Ok((outcome, trapped)) => {
                    traps_seen += usize::from(trapped);
                    cluster_cell.outcomes.push(outcome);
                }
            }
        }
        assert!(
            traps_seen > 0,
            "the cluster sweep must exercise at least one isolated trap"
        );
        trials += cluster_cell.outcomes.len();
        panics += cluster_cell
            .outcomes
            .iter()
            .filter(|o| **o == Outcome::Panicked)
            .count();
    }

    let mut out = String::new();
    let mode = if smoke { "smoke" } else { "full" };
    let _ = writeln!(
        out,
        "## Fault-sweep coverage ({mode}: {seeds} seeds/cell)\n"
    );
    let _ = writeln!(out, "| image | {} |", FAULT_KINDS.join(" | "));
    let _ = writeln!(out, "|---{}|", "|---".repeat(FAULT_KINDS.len()));
    for (name, cells) in &table {
        let row: Vec<String> = cells.iter().map(Cell::summary).collect();
        let _ = writeln!(out, "| {name} | {} |", row.join(" | "));
    }
    let _ = writeln!(
        out,
        "\ncluster isolation (a8 on {harts} harts, fault kinds cycled per seed): {} — \
         every fault stayed on its hart (other harts bit-identical to the fault-free \
         wave) and per-hart recovery restored the full wave.",
        cluster_cell.summary()
    );
    let _ = writeln!(
        out,
        "\n{trials} faulted runs, {panics} panics; every cell recovered to \
         bit-identical clean logits, every silent static flip was detected, \
         every failover matched its fallback bit-for-bit.\n"
    );
    assert_eq!(panics, 0, "fault sweep observed host panics");

    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let path = ctx.results_dir.join("FAULT_SWEEP.md");
    if let Err(e) = std::fs::write(&path, &out) {
        let _ = writeln!(out, "(could not write {}: {e})", path.display());
    } else {
        let _ = writeln!(out, "written to {}", path.display());
    }
    out
}
