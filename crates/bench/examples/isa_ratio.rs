//! Scalar-vs-Xkwtdot inference image comparison: cycles, instructions,
//! the per-instruction-class histogram and the profiler region table for
//! the accelerated (quantised + LUT) image under both kernel ISAs.
//!
//! Run with `cargo run --release -p kwt-bench --example isa_ratio`.

use kwt_baremetal::{InferenceImage, KernelIsa};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_tensor::Mat;

fn main() {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    let x = Mat::from_fn(26, 16, |r, c| {
        let h = 31u64
            .wrapping_add((r * 16 + c) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 10.0
    });
    let accel = QuantizedKwt::quantize(&p, QuantConfig::paper_best())
        .with_nonlinearity(Nonlinearity::FixedLut);
    let mut cycles = Vec::new();
    for (name, isa) in [
        ("scalar", KernelIsa::Rv32im),
        ("xkwtdot", KernelIsa::Xkwtdot),
    ] {
        let img = InferenceImage::build_quant_with_isa(&accel, isa).unwrap();
        let mut sess = img.session().unwrap();
        sess.set_class_histogram_enabled(true);
        let (_, r) = sess.run(&x).unwrap();
        println!(
            "== accel {name}: {} cycles, {} instret",
            r.cycles, r.instructions
        );
        println!("{}", sess.machine().class_histogram().to_table());
        println!("{}", sess.profile_report().to_table());
        cycles.push(r.cycles);
    }
    println!(
        "cycle ratio scalar/xkwtdot: {:.2}x",
        cycles[0] as f64 / cycles[1] as f64
    );
}
