//! Cycle-attribution probe for the fully-INT8 A8 image: one inference
//! with the per-instruction-class histogram and the profiler region
//! table (the A8 companion of `isa_ratio`).
//!
//! Run with `cargo run --release -p kwt-bench --example a8_cycles`.

use kwt_baremetal::InferenceImage;
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{A8Config, A8Kwt};
use kwt_tensor::Mat;

fn main() {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    let x = Mat::from_fn(26, 16, |r, c| {
        let h = 31u64
            .wrapping_add((r * 16 + c) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u = (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
        if c == 0 {
            35.0 + 50.0 * u
        } else {
            u * 16.0 / (1.0 + c as f32 * 0.4)
        }
    });
    let a8 = A8Kwt::quantize(&p, A8Config::paper_a8()).unwrap();
    let img = InferenceImage::build_a8(&a8).unwrap();
    let mut sess = img.session().unwrap();
    sess.set_class_histogram_enabled(true);
    let (_, r) = sess.run(&x).unwrap();
    println!("A8: {} cycles, {} instret", r.cycles, r.instructions);
    println!("{}", sess.machine().class_histogram().to_table());
    println!("{}", sess.profile_report().to_table());
}
