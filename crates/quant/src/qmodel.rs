//! The quantised KWT-Tiny-Q model (paper §IV): INT8 weights, INT16
//! residuals, float (or LUT-accelerated) SoftMax / LayerNorm / GELU with
//! dequantise→compute→requantise boundaries.

use crate::luts::{fixed_gelu, fixed_softmax, LutSet};
use crate::{QuantConfig, QuantError, Result};
use kwt_model::{KwtConfig, KwtParams};
use kwt_tensor::math::gelu_exact;
use kwt_tensor::packed::{matmul_i16_i16_packed_into, matmul_i16_i8_packed_into};
use kwt_tensor::qops::{self, QuantStats};
use kwt_tensor::{ops, Mat, PackedMat};

/// Reusable activation arena for [`QuantizedKwt::forward_detailed_into`]
/// — the integer-pipeline counterpart of `kwt_model::Scratch`.
///
/// Holds every intermediate of one quantised inference pass, including the
/// per-head Q/K/V views and the per-call packed forms of `Kᵀ` and `V`.
/// Buffers are resized in place, so steady-state inference performs no
/// heap allocation in [`Nonlinearity::FloatExact`] mode (the `FixedLut`
/// golden model still allocates inside `fixed_softmax`). A fresh and a
/// reused scratch produce bit-identical logits and [`QuantStats`].
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    x_q: Mat<i16>,
    tokens: Mat<i16>,
    x: Mat<i16>,
    qkv: Mat<i16>,
    q: Vec<Mat<i16>>,
    k: Vec<Mat<i16>>,
    v: Vec<Mat<i16>>,
    kt: PackedMat<i16>,
    vp: PackedMat<i16>,
    scores_q: Mat<i16>,
    scores_f: Mat<f32>,
    probs_q: Mat<i16>,
    head_out: Mat<i16>,
    sa: Mat<i16>,
    attn: Mat<i16>,
    xf: Mat<f32>,
    hidden_q: Mat<i16>,
    hidden_f: Mat<f32>,
    mlp_out: Mat<i16>,
    cls: Mat<i16>,
    logits_q: Mat<i16>,
    logits_f: Mat<f32>,
}

impl QuantScratch {
    /// Pre-allocates every buffer for `config`, so even the first
    /// [`QuantizedKwt::forward_detailed_into`] call allocates nothing.
    pub fn new(config: &KwtConfig) -> Self {
        let (s, t, dh) = (config.seqlen(), config.input_time, config.dim_head);
        let inner = config.heads * dh;
        let head_mats = || vec![Mat::zeros(s, dh); config.heads];
        QuantScratch {
            x_q: Mat::zeros(t, config.input_freq),
            tokens: Mat::zeros(t, config.dim),
            x: Mat::zeros(s, config.dim),
            qkv: Mat::zeros(s, 3 * inner),
            q: head_mats(),
            k: head_mats(),
            v: head_mats(),
            kt: PackedMat::pack_transposed(&Mat::zeros(s, dh)),
            vp: PackedMat::pack(&Mat::zeros(s, dh)),
            scores_q: Mat::zeros(s, s),
            scores_f: Mat::zeros(s, s),
            probs_q: Mat::zeros(s, s),
            head_out: Mat::zeros(s, dh),
            sa: Mat::zeros(s, inner),
            attn: Mat::zeros(s, config.dim),
            xf: Mat::zeros(s, config.dim),
            hidden_q: Mat::zeros(s, config.mlp_dim),
            hidden_f: Mat::zeros(s, config.mlp_dim),
            mlp_out: Mat::zeros(s, config.dim),
            cls: Mat::zeros(1, config.dim),
            logits_q: Mat::zeros(1, config.num_classes),
            logits_f: Mat::zeros(1, config.num_classes),
        }
    }
}

/// Copies a `width`-column slice of `src` starting at column `start` into
/// `dst` — the in-place equivalent of `Mat::columns` used to split the
/// fused QKV activation per head.
fn copy_columns_into(src: &Mat<i16>, start: usize, width: usize, dst: &mut Mat<i16>) {
    dst.resize(src.rows(), width);
    for r in 0..src.rows() {
        dst.row_mut(r)
            .copy_from_slice(&src.row(r)[start..start + width]);
    }
}

/// How the non-matmul operations are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Nonlinearity {
    /// Float `expf`/`erf`-based SoftMax and GELU — the KWT-Tiny-Q model
    /// (soft-float on the real target).
    #[default]
    FloatExact,
    /// Q8.24 LUT SoftMax and GELU — the golden model of the custom-
    /// instruction hardware (KWT-Tiny-Q +Hardware in Table IX).
    FixedLut,
}

/// One quantised transformer block.
///
/// Each weight matrix is stored twice: the row-major `Mat<i8>` (the
/// serialisable source of truth exposed through
/// [`QuantizedKwt::layer_tensors`] and consumed by the bare-metal image
/// builder) and its panel-packed form (`*_p`), built once at quantisation
/// time and used by every forward pass. At KWT-Tiny scale the duplication
/// costs well under 2 kB per layer.
#[derive(Debug, Clone)]
struct QuantizedLayer {
    w_qkv: Mat<i8>,
    w_qkv_p: PackedMat<i8>,
    b_qkv: Vec<i32>,
    w_out: Mat<i8>,
    w_out_p: PackedMat<i8>,
    b_out: Vec<i32>,
    ln1_gamma: Vec<f32>,
    ln1_beta: Vec<f32>,
    w_mlp1: Mat<i8>,
    w_mlp1_p: PackedMat<i8>,
    b_mlp1: Vec<i32>,
    w_mlp2: Mat<i8>,
    w_mlp2_p: PackedMat<i8>,
    b_mlp2: Vec<i32>,
    ln2_gamma: Vec<f32>,
    ln2_beta: Vec<f32>,
}

/// The quantised model: everything needed for integer inference.
#[derive(Debug, Clone)]
pub struct QuantizedKwt {
    /// Architecture hyper-parameters.
    pub config: KwtConfig,
    /// Quantisation scales.
    pub qconfig: QuantConfig,
    /// Non-linearity implementation (float vs LUT hardware model).
    pub nonlinearity: Nonlinearity,
    w_proj: Mat<i8>,
    w_proj_p: PackedMat<i8>,
    b_proj: Vec<i32>,
    pos_emb: Mat<i16>,
    class_token: Vec<i16>,
    layers: Vec<QuantizedLayer>,
    w_head: Mat<i8>,
    w_head_p: PackedMat<i8>,
    b_head: Vec<i32>,
    luts: LutSet,
}

fn quant_bias(b: &[f32], combined_bits: u32) -> Vec<i32> {
    let scale = (1i64 << combined_bits) as f32;
    b.iter()
        .map(|&v| {
            let q = (v * scale).floor();
            q.clamp(i32::MIN as f32, i32::MAX as f32) as i32
        })
        .collect()
}

impl QuantizedKwt {
    /// Post-training static quantisation of a trained float model
    /// (paper eq. 9: `floor(x * 2^y)` with saturation).
    ///
    /// Weights go to `i8` at `2^y_w`; biases to `i32` at the combined
    /// scale `2^(y_a + y_w)`; the class token and positional embeddings
    /// live at the activation scale as `i16`; LayerNorm parameters stay
    /// float, exactly as in the paper.
    pub fn quantize(params: &KwtParams, qconfig: QuantConfig) -> Self {
        let yw = qconfig.weight_bits;
        let ya = qconfig.input_bits;
        let comb = ya + yw;
        let layers = params
            .layers
            .iter()
            .map(|l| {
                let w_qkv = qops::quantize_i8(&l.w_qkv, yw).0;
                let w_out = qops::quantize_i8(&l.w_out, yw).0;
                let w_mlp1 = qops::quantize_i8(&l.w_mlp1, yw).0;
                let w_mlp2 = qops::quantize_i8(&l.w_mlp2, yw).0;
                QuantizedLayer {
                    w_qkv_p: PackedMat::pack(&w_qkv),
                    w_qkv,
                    b_qkv: quant_bias(&l.b_qkv, comb),
                    w_out_p: PackedMat::pack(&w_out),
                    w_out,
                    b_out: quant_bias(&l.b_out, comb),
                    ln1_gamma: l.ln1_gamma.clone(),
                    ln1_beta: l.ln1_beta.clone(),
                    w_mlp1_p: PackedMat::pack(&w_mlp1),
                    w_mlp1,
                    b_mlp1: quant_bias(&l.b_mlp1, comb),
                    w_mlp2_p: PackedMat::pack(&w_mlp2),
                    w_mlp2,
                    b_mlp2: quant_bias(&l.b_mlp2, comb),
                    ln2_gamma: l.ln2_gamma.clone(),
                    ln2_beta: l.ln2_beta.clone(),
                }
            })
            .collect();
        let w_proj = qops::quantize_i8(&params.w_proj, yw).0;
        let w_head = qops::quantize_i8(&params.w_head, yw).0;
        QuantizedKwt {
            config: params.config,
            qconfig,
            nonlinearity: Nonlinearity::default(),
            w_proj_p: PackedMat::pack(&w_proj),
            w_proj,
            b_proj: quant_bias(&params.b_proj, comb),
            pos_emb: qops::quantize_i16(&params.pos_emb, ya).0,
            class_token: qops::quantize_slice_i16(&params.class_token, ya).0,
            layers,
            w_head_p: PackedMat::pack(&w_head),
            w_head,
            b_head: quant_bias(&params.b_head, comb),
            luts: LutSet::new(),
        }
    }

    /// Switches the non-linearity implementation (builder style).
    pub fn with_nonlinearity(mut self, nl: Nonlinearity) -> Self {
        self.nonlinearity = nl;
        self
    }

    /// Replaces the LUT set (threshold experiments).
    pub fn with_luts(mut self, luts: LutSet) -> Self {
        self.luts = luts;
        self
    }

    /// The LUT ROM used by the `FixedLut` mode.
    pub fn luts(&self) -> &LutSet {
        &self.luts
    }

    /// Actual storage footprint of the quantised tensors in bytes:
    /// `i8` weights + `i32` biases + `i16` token/positional tables +
    /// float LayerNorm parameters.
    ///
    /// The paper's Table IX quotes `param_count x 1` byte (1.646 kB); this
    /// method reports the exact layout for comparison. The host-side
    /// panel-packed weight copies used by the fast forward path are
    /// deliberately excluded — they model nothing on the embedded target.
    pub fn stored_bytes(&self) -> usize {
        let mut n = self.w_proj.len() + self.w_head.len();
        n += 4 * (self.b_proj.len() + self.b_head.len());
        n += 2 * (self.pos_emb.len() + self.class_token.len());
        for l in &self.layers {
            n += l.w_qkv.len() + l.w_out.len() + l.w_mlp1.len() + l.w_mlp2.len();
            n += 4 * (l.b_qkv.len() + l.b_out.len() + l.b_mlp1.len() + l.b_mlp2.len());
            n += 4 * (l.ln1_gamma.len() + l.ln1_beta.len() + l.ln2_gamma.len() + l.ln2_beta.len());
        }
        n
    }

    /// Integer inference returning float logits and overflow statistics.
    ///
    /// Convenience wrapper over
    /// [`forward_detailed_into`](Self::forward_detailed_into) with a fresh
    /// [`QuantScratch`]; repeated callers should hold one scratch and use
    /// the `_into` form directly.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Model`] for a wrong input shape, or a
    /// propagated kernel error if the quantised tensors are inconsistent.
    pub fn forward_detailed(&self, mfcc: &Mat<f32>) -> Result<(Vec<f32>, QuantStats)> {
        let mut logits = Vec::new();
        let stats = self.forward_detailed_into(mfcc, &mut QuantScratch::default(), &mut logits)?;
        Ok((logits, stats))
    }

    /// The single implementation of quantised inference: one pass with
    /// every intermediate kept in the caller's [`QuantScratch`] arena,
    /// logits written into `logits_out` (cleared first; capacity reused).
    ///
    /// In [`Nonlinearity::FloatExact`] mode, steady-state calls perform no
    /// heap allocation.
    ///
    /// # Errors
    ///
    /// Same contract as [`forward_detailed`](Self::forward_detailed).
    pub fn forward_detailed_into(
        &self,
        mfcc: &Mat<f32>,
        s: &mut QuantScratch,
        logits_out: &mut Vec<f32>,
    ) -> Result<QuantStats> {
        let c = &self.config;
        if mfcc.shape() != (c.input_time, c.input_freq) {
            return Err(QuantError::Model(format!(
                "input shape {:?} does not match configured ({}, {})",
                mfcc.shape(),
                c.input_time,
                c.input_freq
            )));
        }
        let ya = self.qconfig.input_bits;
        let yw = self.qconfig.weight_bits;
        let mut stats = QuantStats::default();
        let section = c.heads * c.dim_head;
        s.q.resize(c.heads, Mat::default());
        s.k.resize(c.heads, Mat::default());
        s.v.resize(c.heads, Mat::default());

        // 1. Quantise the MFCC input (the paper quantises the raw input).
        stats.merge(qops::quantize_i16_into(mfcc, ya, &mut s.x_q));

        // 2. Patch projection (integer), then class token + pos embedding.
        stats.merge(matmul_i16_i8_packed_into(
            &s.x_q,
            &self.w_proj_p,
            Some(&self.b_proj),
            yw,
            &mut s.tokens,
        )?);
        s.x.resize(c.seqlen(), c.dim);
        s.x.row_mut(0).copy_from_slice(&self.class_token);
        for t in 0..s.tokens.rows() {
            let row = s.tokens.row(t);
            s.x.row_mut(t + 1).copy_from_slice(row);
        }
        stats.merge(qops::add_assign_sat(&mut s.x, &self.pos_emb)?);

        let inv_sqrt_dh = 1.0 / (c.dim_head as f32).sqrt();

        // 3. Transformer blocks.
        for layer in &self.layers {
            // Fused QKV (integer matmul over pre-packed weights).
            stats.merge(matmul_i16_i8_packed_into(
                &s.x,
                &layer.w_qkv_p,
                Some(&layer.b_qkv),
                yw,
                &mut s.qkv,
            )?);
            for h in 0..c.heads {
                copy_columns_into(&s.qkv, h * c.dim_head, c.dim_head, &mut s.q[h]);
                copy_columns_into(&s.qkv, section + h * c.dim_head, c.dim_head, &mut s.k[h]);
                copy_columns_into(
                    &s.qkv,
                    2 * section + h * c.dim_head,
                    c.dim_head,
                    &mut s.v[h],
                );
            }

            // Per-head attention, written into the head's column block of
            // `sa` (the in-place form of the old hstack concatenation).
            s.sa.resize(c.seqlen(), section);
            for h in 0..c.heads {
                // Scores: integer Q K^T back at the activation scale.
                // `pack_transposed_into` builds the packed K^T straight
                // from K's rows without materialising the transpose.
                s.kt.pack_transposed_into(&s.k[h]);
                stats.merge(matmul_i16_i16_packed_into(
                    &s.q[h],
                    &s.kt,
                    ya,
                    &mut s.scores_q,
                )?);
                // Dequantise -> scale by 1/sqrt(dh) -> softmax -> requantise.
                qops::dequantize_i16_into(&s.scores_q, ya, &mut s.scores_f);
                for v in s.scores_f.as_mut_slice() {
                    *v *= inv_sqrt_dh;
                }
                for r in 0..s.scores_f.rows() {
                    match self.nonlinearity {
                        Nonlinearity::FloatExact => {
                            ops::softmax_normalized(s.scores_f.row_mut(r))?;
                        }
                        Nonlinearity::FixedLut => {
                            let probs = fixed_softmax(s.scores_f.row(r), &self.luts);
                            s.scores_f.row_mut(r).copy_from_slice(&probs);
                        }
                    }
                }
                stats.merge(qops::quantize_i16_into(&s.scores_f, ya, &mut s.probs_q));
                s.vp.pack_into(&s.v[h]);
                stats.merge(matmul_i16_i16_packed_into(
                    &s.probs_q,
                    &s.vp,
                    ya,
                    &mut s.head_out,
                )?);
                for r in 0..s.head_out.rows() {
                    let col0 = h * c.dim_head;
                    let src = s.head_out.row(r);
                    s.sa.row_mut(r)[col0..col0 + c.dim_head].copy_from_slice(src);
                }
            }

            // Output projection + residual.
            stats.merge(matmul_i16_i8_packed_into(
                &s.sa,
                &layer.w_out_p,
                Some(&layer.b_out),
                yw,
                &mut s.attn,
            )?);
            stats.merge(qops::add_assign_sat(&mut s.x, &s.attn)?);

            // LayerNorm 1 in float (paper: LN stays floating point).
            qops::dequantize_i16_into(&s.x, ya, &mut s.xf);
            ops::layer_norm_rows(&mut s.xf, &layer.ln1_gamma, &layer.ln1_beta, c.ln_eps)?;
            stats.merge(qops::quantize_i16_into(&s.xf, ya, &mut s.x));

            // MLP: integer matmul -> GELU boundary -> integer matmul.
            stats.merge(matmul_i16_i8_packed_into(
                &s.x,
                &layer.w_mlp1_p,
                Some(&layer.b_mlp1),
                yw,
                &mut s.hidden_q,
            )?);
            qops::dequantize_i16_into(&s.hidden_q, ya, &mut s.hidden_f);
            match self.nonlinearity {
                Nonlinearity::FloatExact => {
                    for v in s.hidden_f.as_mut_slice() {
                        *v = gelu_exact(*v);
                    }
                }
                Nonlinearity::FixedLut => {
                    for v in s.hidden_f.as_mut_slice() {
                        *v = fixed_gelu(*v, &self.luts);
                    }
                }
            }
            stats.merge(qops::quantize_i16_into(&s.hidden_f, ya, &mut s.hidden_q));
            stats.merge(matmul_i16_i8_packed_into(
                &s.hidden_q,
                &layer.w_mlp2_p,
                Some(&layer.b_mlp2),
                yw,
                &mut s.mlp_out,
            )?);
            stats.merge(qops::add_assign_sat(&mut s.x, &s.mlp_out)?);

            // LayerNorm 2 in float.
            qops::dequantize_i16_into(&s.x, ya, &mut s.xf);
            ops::layer_norm_rows(&mut s.xf, &layer.ln2_gamma, &layer.ln2_beta, c.ln_eps)?;
            stats.merge(qops::quantize_i16_into(&s.xf, ya, &mut s.x));
        }

        // 4. Head on the class token (integer), dequantised logits.
        s.cls.resize(1, c.dim);
        s.cls.row_mut(0).copy_from_slice(s.x.row(0));
        stats.merge(matmul_i16_i8_packed_into(
            &s.cls,
            &self.w_head_p,
            Some(&self.b_head),
            yw,
            &mut s.logits_q,
        )?);
        qops::dequantize_i16_into(&s.logits_q, ya, &mut s.logits_f);
        logits_out.clear();
        logits_out.extend_from_slice(s.logits_f.as_slice());
        Ok(stats)
    }

    /// Integer inference returning float logits.
    ///
    /// # Errors
    ///
    /// Same contract as [`QuantizedKwt::forward_detailed`].
    pub fn forward(&self, mfcc: &Mat<f32>) -> Result<Vec<f32>> {
        Ok(self.forward_detailed(mfcc)?.0)
    }

    /// Arg-max class prediction.
    ///
    /// # Errors
    ///
    /// Same contract as [`QuantizedKwt::forward_detailed`].
    pub fn predict(&self, mfcc: &Mat<f32>) -> Result<usize> {
        let (logits, _) = self.forward_detailed(mfcc)?;
        Ok(logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("num_classes > 0"))
    }

    /// Borrowed views of the quantised tensors, for the bare-metal image
    /// builder: `(w_proj, b_proj, pos_emb, class_token, w_head, b_head)`.
    #[allow(clippy::type_complexity)]
    pub fn tensors(&self) -> (&Mat<i8>, &[i32], &Mat<i16>, &[i16], &Mat<i8>, &[i32]) {
        (
            &self.w_proj,
            &self.b_proj,
            &self.pos_emb,
            &self.class_token,
            &self.w_head,
            &self.b_head,
        )
    }

    /// Borrowed views of one layer's quantised tensors:
    /// `(w_qkv, b_qkv, w_out, b_out, ln1_g, ln1_b, w_mlp1, b_mlp1,
    ///   w_mlp2, b_mlp2, ln2_g, ln2_b)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= depth`.
    #[allow(clippy::type_complexity)]
    pub fn layer_tensors(
        &self,
        idx: usize,
    ) -> (
        &Mat<i8>,
        &[i32],
        &Mat<i8>,
        &[i32],
        &[f32],
        &[f32],
        &Mat<i8>,
        &[i32],
        &Mat<i8>,
        &[i32],
        &[f32],
        &[f32],
    ) {
        let l = &self.layers[idx];
        (
            &l.w_qkv,
            &l.b_qkv,
            &l.w_out,
            &l.b_out,
            &l.ln1_gamma,
            &l.ln1_beta,
            &l.w_mlp1,
            &l.b_mlp1,
            &l.w_mlp2,
            &l.b_mlp2,
            &l.ln2_gamma,
            &l.ln2_beta,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_ish_params() -> KwtParams {
        // Init weights then shrink them into a realistic post-training
        // range so quantisation error stays small.
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 21).unwrap();
        p.visit_mut(|s| {
            for v in s {
                *v *= 0.7;
            }
        });
        p
    }

    fn input(seed: u64) -> Mat<f32> {
        Mat::from_fn(26, 16, |r, c| {
            let h = seed
                .wrapping_add((r * 16 + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 8.0
        })
    }

    /// The pre-refactor `forward_detailed` body, kept verbatim as the
    /// oracle proving the scratch-arena path is bit-identical — logits
    /// *and* `QuantStats` — to the old allocating path.
    fn forward_detailed_old_path(qm: &QuantizedKwt, mfcc: &Mat<f32>) -> (Vec<f32>, QuantStats) {
        use kwt_tensor::packed::{matmul_i16_i16_packed, matmul_i16_i8_packed};
        let c = &qm.config;
        let ya = qm.qconfig.input_bits;
        let yw = qm.qconfig.weight_bits;
        let mut stats = QuantStats::default();
        let dequant = |x: &Mat<i16>| qops::dequantize_i16(x, ya);
        let (x_q, s) = qops::quantize_i16(mfcc, ya);
        stats.merge(s);
        let (tokens, s) = matmul_i16_i8_packed(&x_q, &qm.w_proj_p, Some(&qm.b_proj), yw).unwrap();
        stats.merge(s);
        let cls = Mat::from_vec(1, c.dim, qm.class_token.clone()).unwrap();
        let mut x = cls.vstack(&tokens).unwrap();
        stats.merge(qops::add_assign_sat(&mut x, &qm.pos_emb).unwrap());
        let inv_sqrt_dh = 1.0 / (c.dim_head as f32).sqrt();
        for layer in &qm.layers {
            let (qkv, s) =
                matmul_i16_i8_packed(&x, &layer.w_qkv_p, Some(&layer.b_qkv), yw).unwrap();
            stats.merge(s);
            let (qs, ks, vs) = qops::split_into_qkv_i16(&qkv, c.heads, c.dim_head).unwrap();
            let mut sa: Option<Mat<i16>> = None;
            for h in 0..c.heads {
                let kt = PackedMat::pack_transposed(&ks[h]);
                let (scores_q, s) = matmul_i16_i16_packed(&qs[h], &kt, ya).unwrap();
                stats.merge(s);
                let mut scores_f = dequant(&scores_q);
                for v in scores_f.as_mut_slice() {
                    *v *= inv_sqrt_dh;
                }
                for r in 0..scores_f.rows() {
                    match qm.nonlinearity {
                        Nonlinearity::FloatExact => {
                            ops::softmax_normalized(scores_f.row_mut(r)).unwrap();
                        }
                        Nonlinearity::FixedLut => {
                            let probs = fixed_softmax(scores_f.row(r), &qm.luts);
                            scores_f.row_mut(r).copy_from_slice(&probs);
                        }
                    }
                }
                let (probs_q, s) = qops::quantize_i16(&scores_f, ya);
                stats.merge(s);
                let vp = PackedMat::pack(&vs[h]);
                let (head_out, s) = matmul_i16_i16_packed(&probs_q, &vp, ya).unwrap();
                stats.merge(s);
                sa = Some(match sa {
                    None => head_out,
                    Some(acc) => acc.hstack(&head_out).unwrap(),
                });
            }
            let sa = sa.unwrap();
            let (attn, s) =
                matmul_i16_i8_packed(&sa, &layer.w_out_p, Some(&layer.b_out), yw).unwrap();
            stats.merge(s);
            stats.merge(qops::add_assign_sat(&mut x, &attn).unwrap());
            let mut xf = dequant(&x);
            ops::layer_norm_rows(&mut xf, &layer.ln1_gamma, &layer.ln1_beta, c.ln_eps).unwrap();
            let (xq, s) = qops::quantize_i16(&xf, ya);
            stats.merge(s);
            x = xq;
            let (hidden_q, s) =
                matmul_i16_i8_packed(&x, &layer.w_mlp1_p, Some(&layer.b_mlp1), yw).unwrap();
            stats.merge(s);
            let mut hidden_f = dequant(&hidden_q);
            match qm.nonlinearity {
                Nonlinearity::FloatExact => {
                    for v in hidden_f.as_mut_slice() {
                        *v = gelu_exact(*v);
                    }
                }
                Nonlinearity::FixedLut => {
                    for v in hidden_f.as_mut_slice() {
                        *v = fixed_gelu(*v, &qm.luts);
                    }
                }
            }
            let (hidden_q, s) = qops::quantize_i16(&hidden_f, ya);
            stats.merge(s);
            let (mlp_out, s) =
                matmul_i16_i8_packed(&hidden_q, &layer.w_mlp2_p, Some(&layer.b_mlp2), yw).unwrap();
            stats.merge(s);
            stats.merge(qops::add_assign_sat(&mut x, &mlp_out).unwrap());
            let mut xf = dequant(&x);
            ops::layer_norm_rows(&mut xf, &layer.ln2_gamma, &layer.ln2_beta, c.ln_eps).unwrap();
            let (xq, s) = qops::quantize_i16(&xf, ya);
            stats.merge(s);
            x = xq;
        }
        let cls_row = Mat::from_vec(1, c.dim, x.row(0).to_vec()).unwrap();
        let (logits_q, s) =
            matmul_i16_i8_packed(&cls_row, &qm.w_head_p, Some(&qm.b_head), yw).unwrap();
        stats.merge(s);
        (dequant(&logits_q).into_vec(), stats)
    }

    #[test]
    fn scratch_forward_bit_identical_to_old_path() {
        let params = trained_ish_params();
        for nl in [Nonlinearity::FloatExact, Nonlinearity::FixedLut] {
            let qm =
                QuantizedKwt::quantize(&params, QuantConfig::paper_best()).with_nonlinearity(nl);
            for seed in 0..6 {
                let x = input(seed + 40);
                let (new_logits, new_stats) = qm.forward_detailed(&x).unwrap();
                let (old_logits, old_stats) = forward_detailed_old_path(&qm, &x);
                assert_eq!(new_stats, old_stats, "{nl:?} seed {seed}");
                assert_eq!(new_logits.len(), old_logits.len());
                for (a, b) in new_logits.iter().zip(&old_logits) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{nl:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let params = trained_ish_params();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let mut reused = QuantScratch::new(&qm.config);
        let mut logits_reused = Vec::new();
        for seed in 0..8 {
            let x = input(seed + 70);
            let stats_reused = qm
                .forward_detailed_into(&x, &mut reused, &mut logits_reused)
                .unwrap();
            let (logits_fresh, stats_fresh) = qm.forward_detailed(&x).unwrap();
            assert_eq!(logits_reused, logits_fresh, "seed {seed}");
            assert_eq!(stats_reused, stats_fresh, "seed {seed}");
        }
    }

    #[test]
    fn quantized_forward_tracks_float_forward() {
        let params = trained_ish_params();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let mut agree = 0;
        for s in 0..20 {
            let x = input(s);
            let fl = kwt_model::forward(&params, &x).unwrap();
            let ql = qm.forward(&x).unwrap();
            let fa = fl[0] < fl[1];
            let qa = ql[0] < ql[1];
            if fa == qa {
                agree += 1;
            }
        }
        assert!(agree >= 16, "only {agree}/20 argmax agreement");
    }

    #[test]
    fn forward_detailed_reports_stats() {
        let params = trained_ish_params();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let (_, stats) = qm.forward_detailed(&input(1)).unwrap();
        assert!(stats.max_abs_acc > 0);
    }

    #[test]
    fn tiny_scales_destroy_information() {
        // Scale factor 2 (1 bit of weight precision) must be much worse
        // than 64 in logit fidelity.
        let params = trained_ish_params();
        let x = input(2);
        let fl = kwt_model::forward(&params, &x).unwrap();
        let err = |qm: &QuantizedKwt| -> f32 {
            let ql = qm.forward(&x).unwrap();
            (ql[0] - fl[0]).abs() + (ql[1] - fl[1]).abs()
        };
        let coarse = QuantizedKwt::quantize(&params, QuantConfig::from_factors(2, 2).unwrap());
        let fine = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        assert!(err(&coarse) > err(&fine));
    }

    #[test]
    fn fixedlut_mode_close_to_float_mode() {
        let params = trained_ish_params();
        let qf = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let ql = qf.clone().with_nonlinearity(Nonlinearity::FixedLut);
        let mut agree = 0;
        for s in 0..20 {
            let x = input(s + 100);
            if qf.predict(&x).unwrap() == ql.predict(&x).unwrap() {
                agree += 1;
            }
        }
        assert!(agree >= 15, "only {agree}/20 agreement between modes");
    }

    #[test]
    fn wrong_shape_rejected() {
        let params = trained_ish_params();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        assert!(matches!(
            qm.forward(&Mat::zeros(16, 26)),
            Err(QuantError::Model(_))
        ));
    }

    #[test]
    fn stored_bytes_accounting() {
        let params = trained_ish_params();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let n = qm.stored_bytes();
        // Weight bytes alone: all i8 weight matrices.
        let weight_bytes = 16 * 12 + 12 * 24 + 8 * 12 + 12 * 24 + 24 * 12 + 12 * 2;
        assert!(n > weight_bytes);
        // Must be within a small factor of the paper's param-count bytes.
        assert!(n < 4 * 1646, "stored {n} bytes");
    }

    #[test]
    fn accessors_expose_tensors() {
        let params = trained_ish_params();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let (wp, bp, pos, cls, wh, bh) = qm.tensors();
        assert_eq!(wp.shape(), (16, 12));
        assert_eq!(bp.len(), 12);
        assert_eq!(pos.shape(), (27, 12));
        assert_eq!(cls.len(), 12);
        assert_eq!(wh.shape(), (12, 2));
        assert_eq!(bh.len(), 2);
        let lt = qm.layer_tensors(0);
        assert_eq!(lt.0.shape(), (12, 24));
        assert_eq!(lt.6.shape(), (12, 24));
    }
}
