//! # kwt-quant
//!
//! Everything the paper does *after* training:
//!
//! * **Post-training static quantisation** with power-of-two scale factors
//!   (§IV, eq. 9): INT8 weights, INT16 residuals, float SoftMax/LayerNorm
//!   with dequantise/requantise boundaries — [`QuantizedKwt`].
//! * **The Table V sweep** over weight/input scale-factor pairs —
//!   [`sweep::scale_sweep`].
//! * **Q8.24 fixed point** ([`Q8_24`]) — the number format of the custom
//!   RISC-V instructions (Table VII).
//! * **The three lookup tables** (§VI, eqs. 11–13): 320-entry `exp`,
//!   320-entry reciprocal, 32-entry GELU — [`LutSet`] — plus the
//!   gradient-descent optimiser for the GELU clip thresholds
//!   ([`gelu_opt::optimize_thresholds`]), which the paper reports as
//!   −1.857 / 1.595.
//! * **Bit-exact host golden models** of the accelerated SoftMax and GELU
//!   ([`fixed_softmax`], [`fixed_gelu`]) — the RV32 simulator's custom
//!   instructions are implemented in terms of the same functions, so
//!   host-side accuracy sweeps predict on-target behaviour exactly.
//!
//! # Example
//!
//! ```
//! use kwt_model::{KwtConfig, KwtParams};
//! use kwt_quant::{QuantConfig, QuantizedKwt};
//! use kwt_tensor::Mat;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = KwtParams::init(KwtConfig::kwt_tiny(), 1)?;
//! // Table V's best row: weight scale 64, input scale 32.
//! let qconfig = QuantConfig::from_factors(64, 32)?;
//! let qmodel = QuantizedKwt::quantize(&params, qconfig);
//! let logits = qmodel.forward(&Mat::zeros(26, 16))?;
//! assert_eq!(logits.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod a8;
pub mod calibrate;
mod error;
mod fixed;
pub mod gelu_opt;
mod luts;
mod qmodel;
mod qscheme;
pub mod sweep;

pub use a8::{A8Config, A8Consts, A8Kwt, A8Scratch};
pub use calibrate::{calibrate_a8, CalibrationResult, CalibrationTrial};
pub use error::QuantError;
pub use fixed::Q8_24;
pub use luts::{
    fixed_gelu, fixed_softmax, GeluLut, LutSet, EXP_LUT_LEN, GELU_LUT_LEN, INV_LUT_LEN,
};
pub use qmodel::{Nonlinearity, QuantScratch, QuantizedKwt};
pub use qscheme::QuantConfig;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, QuantError>;
