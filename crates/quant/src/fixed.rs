//! Q8.24 signed fixed point — the number format of the custom ALU blocks
//! (Table VII: "where X is a Q8.24 integer").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed fixed-point number with 8 integer bits and 24 fractional bits,
/// stored in an `i32` (range ±128, resolution 2⁻²⁴ ≈ 6e-8).
///
/// All arithmetic saturates rather than wraps, matching a safe hardware
/// implementation.
///
/// # Example
/// ```
/// use kwt_quant::Q8_24;
/// let a = Q8_24::from_f32(1.5);
/// let b = Q8_24::from_f32(2.0);
/// assert_eq!((a * b).to_f32(), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Q8_24(i32);

impl Q8_24 {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 24;
    /// The value 1.0.
    pub const ONE: Q8_24 = Q8_24(1 << 24);
    /// The value 0.0.
    pub const ZERO: Q8_24 = Q8_24(0);
    /// Largest representable value (≈ 127.99999994).
    pub const MAX: Q8_24 = Q8_24(i32::MAX);
    /// Smallest representable value (−128).
    pub const MIN: Q8_24 = Q8_24(i32::MIN);

    /// Converts from `f32`, rounding to nearest and saturating.
    ///
    /// This is the semantics of the paper's `ALU_TO_FIXED` custom
    /// instruction.
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            return Q8_24::ZERO;
        }
        let scaled = (x as f64 * (1i64 << Self::FRAC_BITS) as f64).round();
        if scaled >= i32::MAX as f64 {
            Q8_24::MAX
        } else if scaled <= i32::MIN as f64 {
            Q8_24::MIN
        } else {
            Q8_24(scaled as i32)
        }
    }

    /// Converts to `f32` (the paper's `ALU_TO_FLOAT`).
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1i64 << Self::FRAC_BITS) as f32
    }

    /// Wraps a raw `i32` bit pattern.
    pub fn from_bits(bits: i32) -> Self {
        Q8_24(bits)
    }

    /// The raw `i32` bit pattern.
    pub fn to_bits(self) -> i32 {
        self.0
    }

    /// Saturating multiplication (exact in `i64`, then narrowed).
    pub fn saturating_mul(self, rhs: Q8_24) -> Q8_24 {
        let wide = (self.0 as i64 * rhs.0 as i64) >> Self::FRAC_BITS;
        if wide > i32::MAX as i64 {
            Q8_24::MAX
        } else if wide < i32::MIN as i64 {
            Q8_24::MIN
        } else {
            Q8_24(wide as i32)
        }
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Q8_24) -> Q8_24 {
        Q8_24(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Q8_24) -> Q8_24 {
        Q8_24(self.0.saturating_sub(rhs.0))
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    pub fn abs(self) -> Q8_24 {
        if self.0 == i32::MIN {
            Q8_24::MAX
        } else {
            Q8_24(self.0.abs())
        }
    }
}

impl std::ops::Add for Q8_24 {
    type Output = Q8_24;
    fn add(self, rhs: Q8_24) -> Q8_24 {
        self.saturating_add(rhs)
    }
}

impl std::ops::Sub for Q8_24 {
    type Output = Q8_24;
    fn sub(self, rhs: Q8_24) -> Q8_24 {
        self.saturating_sub(rhs)
    }
}

impl std::ops::Mul for Q8_24 {
    type Output = Q8_24;
    fn mul(self, rhs: Q8_24) -> Q8_24 {
        self.saturating_mul(rhs)
    }
}

impl fmt::Display for Q8_24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<Q8_24> for f32 {
    fn from(q: Q8_24) -> f32 {
        q.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_below_resolution() {
        for i in -1000..1000 {
            let x = i as f32 * 0.017;
            let q = Q8_24::from_f32(x);
            assert!((q.to_f32() - x).abs() < 1.0 / (1 << 23) as f32, "{x}");
        }
    }

    #[test]
    fn one_is_one() {
        assert_eq!(Q8_24::ONE.to_f32(), 1.0);
        assert_eq!(Q8_24::from_f32(1.0), Q8_24::ONE);
        assert_eq!(Q8_24::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn multiplication_matches_f64() {
        let cases = [
            (1.5, 2.0),
            (0.125, 8.0),
            (-3.25, 1.5),
            (11.0, 11.0),
            (0.0001, 0.0001),
        ];
        for (a, b) in cases {
            let q = Q8_24::from_f32(a) * Q8_24::from_f32(b);
            assert!(
                (q.to_f32() as f64 - a as f64 * b as f64).abs() < 1e-5,
                "{a} * {b} = {q}"
            );
        }
    }

    #[test]
    fn saturation_at_bounds() {
        assert_eq!(Q8_24::from_f32(1e6), Q8_24::MAX);
        assert_eq!(Q8_24::from_f32(-1e6), Q8_24::MIN);
        assert_eq!(Q8_24::MAX + Q8_24::ONE, Q8_24::MAX);
        assert_eq!(Q8_24::MIN - Q8_24::ONE, Q8_24::MIN);
        let big = Q8_24::from_f32(100.0);
        assert_eq!(big * big, Q8_24::MAX);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Q8_24::from_f32(f32::NAN), Q8_24::ZERO);
    }

    #[test]
    fn bits_round_trip() {
        let q = Q8_24::from_f32(-2.75);
        assert_eq!(Q8_24::from_bits(q.to_bits()), q);
    }

    #[test]
    fn abs_handles_min() {
        assert_eq!(Q8_24::MIN.abs(), Q8_24::MAX);
        assert_eq!(Q8_24::from_f32(-1.0).abs(), Q8_24::ONE);
    }

    #[test]
    fn ordering_matches_float_ordering() {
        let a = Q8_24::from_f32(-1.5);
        let b = Q8_24::from_f32(0.25);
        let c = Q8_24::from_f32(3.75);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_shows_float_value() {
        assert_eq!(Q8_24::from_f32(2.5).to_string(), "2.5");
    }
}
