//! The Table V experiment: accuracy of the quantised model across
//! weight/input scale-factor pairs.

use crate::{Nonlinearity, QuantConfig, QuantizedKwt, Result};
use kwt_dataset::MfccDataset;
use kwt_model::KwtParams;

/// The exact scale-factor pairs of the paper's Table V.
pub const PAPER_TABLE5_PAIRS: [(u32, u32); 5] = [(8, 8), (16, 16), (32, 32), (64, 32), (64, 64)];

/// One row of the sweep result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// Weight scale factor (`2^y_w`).
    pub weight_factor: u32,
    /// Input scale factor (`2^y_a`).
    pub input_factor: u32,
    /// Test accuracy of the quantised model.
    pub accuracy: f64,
    /// Total saturation events across the evaluation (the overflow
    /// mechanism behind Table V's 64/64 collapse).
    pub saturations: u64,
    /// Largest accumulator magnitude observed.
    pub max_abs_acc: i64,
}

/// Quantises `params` at each scale pair and evaluates on `data`.
///
/// # Errors
///
/// Returns [`crate::QuantError::BadScaleFactor`] for non-power-of-two
/// factors, or propagated inference errors.
pub fn scale_sweep(
    params: &KwtParams,
    data: &MfccDataset,
    pairs: &[(u32, u32)],
    nonlinearity: Nonlinearity,
) -> Result<Vec<SweepRow>> {
    let mut rows = Vec::with_capacity(pairs.len());
    for &(wf, inf) in pairs {
        let qc = QuantConfig::from_factors(wf, inf)?;
        let qm = QuantizedKwt::quantize(params, qc).with_nonlinearity(nonlinearity);
        let mut hits = 0usize;
        let mut saturations = 0u64;
        let mut max_acc = 0i64;
        for (x, &y) in data.x.iter().zip(&data.y) {
            let (logits, stats) = qm.forward_detailed(x)?;
            saturations += stats.saturations as u64;
            max_acc = max_acc.max(stats.max_abs_acc);
            let pred = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty logits");
            if pred == y {
                hits += 1;
            }
        }
        rows.push(SweepRow {
            weight_factor: wf,
            input_factor: inf,
            accuracy: hits as f64 / data.len().max(1) as f64,
            saturations,
            max_abs_acc: max_acc,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_model::KwtConfig;
    use kwt_tensor::Mat;

    fn toy_data(n: usize) -> MfccDataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            x.push(Mat::from_fn(26, 16, |r, c| {
                let h = (i * 1000 + r * 16 + c) as u64;
                let noise = ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f32
                    / (1u64 << 24) as f32
                    - 0.5)
                    * 2.0;
                let hot = (label == 0 && c < 8) || (label == 1 && c >= 8);
                if hot {
                    4.0 + noise
                } else {
                    noise
                }
            }));
            y.push(label);
        }
        MfccDataset {
            x,
            y,
            num_classes: 2,
        }
    }

    #[test]
    fn sweep_produces_one_row_per_pair() {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 5).unwrap();
        let data = toy_data(6);
        let rows = scale_sweep(
            &params,
            &data,
            &PAPER_TABLE5_PAIRS,
            Nonlinearity::FloatExact,
        )
        .unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.accuracy));
        }
        assert_eq!(rows[3].weight_factor, 64);
        assert_eq!(rows[3].input_factor, 32);
    }

    #[test]
    fn sweep_rejects_bad_factors() {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 5).unwrap();
        let data = toy_data(2);
        assert!(scale_sweep(&params, &data, &[(7, 8)], Nonlinearity::FloatExact).is_err());
    }

    #[test]
    fn saturations_increase_with_input_scale() {
        // Large inputs at a large input scale must saturate more than at a
        // small scale.
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 5).unwrap();
        let mut data = toy_data(4);
        for m in &mut data.x {
            for v in m.as_mut_slice() {
                *v *= 40.0; // push inputs into the hundreds
            }
        }
        let rows = scale_sweep(
            &params,
            &data,
            &[(64, 8), (64, 1024)],
            Nonlinearity::FloatExact,
        )
        .unwrap();
        assert!(
            rows[1].saturations > rows[0].saturations,
            "{} vs {}",
            rows[1].saturations,
            rows[0].saturations
        );
    }
}
