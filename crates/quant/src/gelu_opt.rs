//! Gradient-descent optimisation of the GELU clip thresholds.
//!
//! The paper: "The choice of the thresholds was done through a gradient
//! descent computation that showed that this was the near-optimal choice
//! for a 32-element LUT, with a quoted accuracy degradation of only
//! 0.0042 %." This module reproduces that computation: minimise the mean
//! squared approximation error of the clip+LUT scheme over a dense grid,
//! by numeric gradient descent on `(lo, hi)`.

use crate::luts::GeluLut;
use kwt_tensor::math::gelu_exact;

/// Result of the threshold search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdFit {
    /// Optimised lower threshold.
    pub lo: f32,
    /// Optimised upper threshold.
    pub hi: f32,
    /// Mean squared approximation error at the optimum.
    pub mse: f64,
    /// Maximum absolute approximation error at the optimum.
    pub max_err: f32,
    /// Relative mean error in percent — comparable to the paper's quoted
    /// "accuracy degradation of only 0.0042 %".
    pub mean_rel_err_pct: f64,
    /// Gradient-descent iterations performed.
    pub iterations: usize,
}

/// Mean squared error of the clip+LUT approximation over `[-span, span]`.
pub fn approximation_mse(lo: f32, hi: f32, span: f32, samples: usize) -> f64 {
    let lut = GeluLut::new(lo, hi);
    let mut acc = 0.0f64;
    for i in 0..samples {
        let x = -span + 2.0 * span * i as f32 / (samples - 1) as f32;
        let approx = lut.eval(crate::Q8_24::from_f32(x)).to_f32();
        let exact = gelu_exact(x);
        acc += ((approx - exact) as f64).powi(2);
    }
    acc / samples as f64
}

/// Runs numeric gradient descent on `(lo, hi)` from a given start.
///
/// Returns the fitted thresholds and error statistics. With the default
/// start `(-1.5, 1.5)` the optimum lands near the paper's
/// `(-1.857, 1.595)`.
///
/// # Panics
///
/// Panics if `start_lo >= start_hi`.
pub fn optimize_thresholds(start_lo: f32, start_hi: f32, iterations: usize) -> ThresholdFit {
    assert!(start_lo < start_hi, "need start_lo < start_hi");
    const SPAN: f32 = 4.0;
    const SAMPLES: usize = 1601;
    let mut lo = start_lo;
    let mut hi = start_hi;
    let h = 1e-3f32;
    let mut lr = 2.0f32;
    let mut last = approximation_mse(lo, hi, SPAN, SAMPLES);
    for _ in 0..iterations {
        let dlo = (approximation_mse(lo + h, hi, SPAN, SAMPLES)
            - approximation_mse(lo - h, hi, SPAN, SAMPLES)) as f32
            / (2.0 * h);
        let dhi = (approximation_mse(lo, hi + h, SPAN, SAMPLES)
            - approximation_mse(lo, hi - h, SPAN, SAMPLES)) as f32
            / (2.0 * h);
        let new_lo = lo - lr * dlo;
        let new_hi = hi - lr * dhi;
        if new_lo >= new_hi - 0.1 {
            lr *= 0.5;
            continue;
        }
        let e = approximation_mse(new_lo, new_hi, SPAN, SAMPLES);
        if e <= last {
            lo = new_lo;
            hi = new_hi;
            last = e;
        } else {
            lr *= 0.5;
            if lr < 1e-4 {
                break;
            }
        }
    }

    // Final error statistics.
    let lut = GeluLut::new(lo, hi);
    let mut max_err = 0.0f32;
    let mut rel_acc = 0.0f64;
    let mut rel_n = 0usize;
    for i in 0..SAMPLES {
        let x = -SPAN + 2.0 * SPAN * i as f32 / (SAMPLES - 1) as f32;
        let approx = lut.eval(crate::Q8_24::from_f32(x)).to_f32();
        let exact = gelu_exact(x);
        let err = (approx - exact).abs();
        max_err = max_err.max(err);
        if exact.abs() > 0.05 {
            rel_acc += (err / exact.abs()) as f64;
            rel_n += 1;
        }
    }
    ThresholdFit {
        lo,
        hi,
        mse: last,
        max_err,
        mean_rel_err_pct: 100.0 * rel_acc / rel_n.max(1) as f64,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::luts::{PAPER_GELU_HI, PAPER_GELU_LO};

    #[test]
    fn optimizer_reduces_error() {
        let start = approximation_mse(-1.0, 1.0, 4.0, 801);
        let fit = optimize_thresholds(-1.0, 1.0, 60);
        assert!(fit.mse < start, "no improvement: {} -> {}", start, fit.mse);
    }

    #[test]
    fn optimum_lands_near_paper_thresholds() {
        let fit = optimize_thresholds(-1.5, 1.5, 120);
        // The paper's near-optimal values are (-1.857, 1.595). Accept the
        // same basin: lo in [-2.3, -1.4], hi in [1.2, 2.1].
        assert!(
            (-2.3..=-1.4).contains(&fit.lo),
            "lo = {} (paper {PAPER_GELU_LO})",
            fit.lo
        );
        assert!(
            (1.2..=2.1).contains(&fit.hi),
            "hi = {} (paper {PAPER_GELU_HI})",
            fit.hi
        );
    }

    #[test]
    fn paper_thresholds_are_near_optimal() {
        // MSE at the paper's thresholds should be within a small factor of
        // our optimum — confirming "near-optimal choice".
        let fit = optimize_thresholds(-1.5, 1.5, 120);
        let paper = approximation_mse(PAPER_GELU_LO, PAPER_GELU_HI, 4.0, 1601);
        assert!(
            paper < fit.mse * 4.0 + 1e-9,
            "paper thresholds far off: {paper} vs {}",
            fit.mse
        );
    }

    #[test]
    fn fit_statistics_are_sane() {
        let fit = optimize_thresholds(-1.5, 1.5, 40);
        assert!(fit.max_err > 0.0 && fit.max_err < 0.1);
        assert!(fit.mean_rel_err_pct >= 0.0);
        assert_eq!(fit.iterations, 40);
    }

    #[test]
    #[should_panic(expected = "start_lo < start_hi")]
    fn bad_start_panics() {
        let _ = optimize_thresholds(1.0, -1.0, 10);
    }
}
