//! Power-of-two quantisation configuration (paper §IV, eq. 9).

use crate::{QuantError, Result};
use serde::{Deserialize, Serialize};

/// Scale-factor pair for static quantisation.
///
/// The paper stores a float value `x` as `floor(x * 2^y)`; weights and
/// inputs/activations use different exponents (Table V: weights range in
/// `[-1, 1]` while MFCC inputs reach magnitudes of tens to hundreds, so
/// the weight scale can be larger without overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight scale exponent (`y_w`): weights stored as `i8` at `2^y_w`.
    pub weight_bits: u32,
    /// Input/activation scale exponent (`y_a`): residuals stored as `i16`
    /// at `2^y_a`.
    pub input_bits: u32,
}

impl QuantConfig {
    /// Builds from literal scale *factors* as Table V quotes them
    /// (8, 16, 32, 64 — i.e. `2^y`, not `y`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadScaleFactor`] if either factor is not a
    /// power of two in `[2, 32768]`.
    ///
    /// # Example
    /// ```
    /// let q = kwt_quant::QuantConfig::from_factors(64, 32)?;
    /// assert_eq!(q.weight_bits, 6);
    /// assert_eq!(q.input_bits, 5);
    /// # Ok::<(), kwt_quant::QuantError>(())
    /// ```
    pub fn from_factors(weight_factor: u32, input_factor: u32) -> Result<Self> {
        let check = |factor: u32| -> Result<u32> {
            if factor.is_power_of_two() && (2..=32_768).contains(&factor) {
                Ok(factor.trailing_zeros())
            } else {
                Err(QuantError::BadScaleFactor { factor })
            }
        };
        Ok(QuantConfig {
            weight_bits: check(weight_factor)?,
            input_bits: check(input_factor)?,
        })
    }

    /// The paper's best configuration (Table V): weights at 64, inputs
    /// at 32 — 82.5 % accuracy.
    pub fn paper_best() -> Self {
        QuantConfig {
            weight_bits: 6,
            input_bits: 5,
        }
    }

    /// Weight scale as a factor (`2^weight_bits`).
    pub fn weight_factor(&self) -> u32 {
        1 << self.weight_bits
    }

    /// Input scale as a factor (`2^input_bits`).
    pub fn input_factor(&self) -> u32 {
        1 << self.input_bits
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::paper_best()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_round_trip() {
        let q = QuantConfig::from_factors(8, 16).unwrap();
        assert_eq!(q.weight_factor(), 8);
        assert_eq!(q.input_factor(), 16);
        assert_eq!(q.weight_bits, 3);
        assert_eq!(q.input_bits, 4);
    }

    #[test]
    fn rejects_non_powers_of_two() {
        assert!(QuantConfig::from_factors(12, 8).is_err());
        assert!(QuantConfig::from_factors(8, 0).is_err());
        assert!(QuantConfig::from_factors(8, 1).is_err());
        assert!(QuantConfig::from_factors(65_536, 8).is_err());
    }

    #[test]
    fn paper_best_is_64_32() {
        let q = QuantConfig::paper_best();
        assert_eq!(q.weight_factor(), 64);
        assert_eq!(q.input_factor(), 32);
        assert_eq!(QuantConfig::default(), q);
    }
}
