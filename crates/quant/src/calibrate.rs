//! Per-dataset A8 exponent calibration.
//!
//! [`A8Config::paper_a8`] was hand-tuned on the synthetic GSC set; a
//! different corpus (the committed GSC v2 subset, or a full-set download)
//! has a different MFCC dynamic range and residual statistics, so its
//! best exponents differ. [`calibrate_a8`] re-derives them from data:
//!
//! 1. **Seed the input exponent from the corpus**: pick the finest
//!    `input_bits` whose `i8` grid still covers the split's largest
//!    absolute MFCC value (the only exponent with a closed-form answer).
//! 2. **Coordinate descent over the remaining exponents**: sweep each
//!    field ±2 around the current value in a fixed order, keeping the
//!    value that maximises top-1 agreement with the float model; repeat
//!    until a full pass changes nothing (at most [`MAX_PASSES`]).
//!
//! Candidates whose derived shifts leave the device's `[0, 31]` window
//! ([`A8Config::consts`]) are skipped, so the search space is exactly the
//! set of configs the image builder accepts. The whole procedure is
//! deterministic — same params + same split ⇒ same config — which is what
//! lets benches commit the calibrated exponents as a baseline.

use crate::{A8Config, A8Kwt, Result};
use kwt_dataset::MfccDataset;
use kwt_model::KwtParams;

/// Coordinate-descent pass limit (each pass sweeps every field once).
pub const MAX_PASSES: usize = 4;

/// One candidate evaluation during calibration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CalibrationTrial {
    /// Which exponent field was being swept.
    pub field: String,
    /// Candidate value of that field.
    pub value: i32,
    /// Top-1 agreement with the float model on the calibration split.
    pub agreement: f64,
    /// Whether this candidate became the new incumbent.
    pub accepted: bool,
}

/// Outcome of [`calibrate_a8`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CalibrationResult {
    /// The calibrated exponents.
    pub config: A8Config,
    /// Top-1 agreement of `config` with the float model.
    pub agreement: f64,
    /// Agreement of the starting config (the hand-tuned default) — the
    /// number calibration has to beat or match.
    pub start_agreement: f64,
    /// Largest absolute MFCC value observed (drives the input exponent).
    pub max_abs_input: f32,
    /// Every candidate evaluated, in order.
    pub trials: Vec<CalibrationTrial>,
    /// Coordinate-descent passes executed.
    pub passes: usize,
}

/// Top-1 agreement between the A8 pipeline at `cfg` and precomputed
/// float-model predictions. Returns `None` for configs the device
/// rejects (shift out of range) or that fail to quantise.
fn agreement(
    params: &KwtParams,
    cfg: A8Config,
    data: &MfccDataset,
    float_preds: &[usize],
) -> Option<f64> {
    cfg.consts(&params.config).ok()?;
    let a8 = A8Kwt::quantize(params, cfg).ok()?;
    let mut hits = 0usize;
    for (x, &fp) in data.x.iter().zip(float_preds) {
        let pred = a8.predict_a8(x).ok()?;
        if pred == fp {
            hits += 1;
        }
    }
    Some(hits as f64 / data.len().max(1) as f64)
}

/// Float-model top-1 predictions for every clip of `data`.
///
/// # Errors
///
/// Propagates float forward-pass failures (shape mismatches).
pub fn float_predictions(params: &KwtParams, data: &MfccDataset) -> Result<Vec<usize>> {
    let mut out = Vec::with_capacity(data.len());
    for x in &data.x {
        let p = kwt_model::predict(params, x)
            .map_err(|e| crate::QuantError::Model(format!("float forward failed: {e}")))?;
        out.push(p);
    }
    Ok(out)
}

/// Re-derives [`A8Config`] exponents for `params` on a calibration split.
///
/// See the module docs for the algorithm. `start` seeds the search
/// (usually [`A8Config::paper_a8`]); the result's agreement is always
/// ≥ the seeded-input-exponent variant of `start` on the calibration
/// split, since every move must improve it.
///
/// # Errors
///
/// Propagates float forward-pass failures; fails if even the start
/// config cannot be quantised.
pub fn calibrate_a8(
    params: &KwtParams,
    data: &MfccDataset,
    start: A8Config,
) -> Result<CalibrationResult> {
    let float_preds = float_predictions(params, data)?;

    // 1. data-driven input exponent: finest grid covering max |mfcc|.
    let max_abs_input = data
        .x
        .iter()
        .flat_map(|m| m.as_slice().iter())
        .fold(0.0f32, |a, &v| a.max(v.abs()));
    let mut current = start;
    if max_abs_input > 0.0 {
        // Largest y with max_abs * 2^y <= 127, clamped to a sane window.
        let y = (127.0 / max_abs_input).log2().floor() as i32;
        current.input_bits = y.clamp(-8, 7);
    }

    let start_agreement = agreement(params, current, data, &float_preds)
        .or_else(|| agreement(params, start, data, &float_preds))
        .ok_or_else(|| {
            crate::QuantError::Model("start A8 config cannot be quantised".to_string())
        })?;
    if agreement(params, current, data, &float_preds).is_none() {
        // The data-driven input exponent broke a shift constraint; fall
        // back to the caller's start config wholesale.
        current = start;
    }
    let mut best = agreement(params, current, data, &float_preds).expect("validated above");

    // 2. coordinate descent. Fixed field order: upstream exponents first
    // so downstream sweeps see settled inputs.
    type FieldAccess = (&'static str, fn(&mut A8Config) -> &mut i32);
    const FIELDS: [FieldAccess; 8] = [
        ("input_bits", |c| &mut c.input_bits),
        ("stream0_bits", |c| &mut c.stream0_bits),
        ("stream_bits", |c| &mut c.stream_bits),
        ("attn_bits", |c| &mut c.attn_bits),
        ("score_bits", |c| &mut c.score_bits),
        ("hidden_bits", |c| &mut c.hidden_bits),
        ("prob_bits", |c| &mut c.prob_bits),
        ("logit_bits", |c| &mut c.logit_bits),
    ];
    let mut trials = Vec::new();
    let mut passes = 0usize;
    for _ in 0..MAX_PASSES {
        passes += 1;
        let mut improved = false;
        for (name, get) in FIELDS {
            let base = *get(&mut current.clone());
            for delta in [-2i32, -1, 1, 2] {
                let mut cand = current;
                *get(&mut cand) = base + delta;
                let Some(a) = agreement(params, cand, data, &float_preds) else {
                    continue;
                };
                // Strict improvement only: ties keep the incumbent, so
                // the default exponents win unless the data disagrees.
                let accepted = a > best;
                trials.push(CalibrationTrial {
                    field: name.to_string(),
                    value: base + delta,
                    agreement: a,
                    accepted,
                });
                if accepted {
                    current = cand;
                    best = a;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(CalibrationResult {
        config: current,
        agreement: best,
        start_agreement,
        max_abs_input,
        trials,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_model::KwtConfig;
    use kwt_tensor::Mat;

    fn toy_data(n: usize, scale: f32) -> MfccDataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            x.push(Mat::from_fn(26, 16, |r, c| {
                let h = (i * 997 + r * 16 + c) as u64;
                let noise = ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f32
                    / (1u64 << 24) as f32
                    - 0.5)
                    * 2.0;
                let hot = (label == 0 && c < 8) || (label == 1 && c >= 8);
                scale * if hot { 4.0 + noise } else { noise }
            }));
            y.push(label);
        }
        MfccDataset {
            x,
            y,
            num_classes: 2,
        }
    }

    #[test]
    fn calibration_is_deterministic_and_agreement_is_high() {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 11).unwrap();
        let data = toy_data(24, 8.0);
        let a = calibrate_a8(&params, &data, A8Config::paper_a8()).unwrap();
        let b = calibrate_a8(&params, &data, A8Config::paper_a8()).unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.trials.len(), b.trials.len());
        assert!(a.agreement >= a.start_agreement);
        assert!(
            a.agreement >= 0.9,
            "calibrated agreement {} too low",
            a.agreement
        );
        assert!(a.passes >= 1 && a.passes <= MAX_PASSES);
    }

    #[test]
    fn input_exponent_tracks_dynamic_range() {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 11).unwrap();
        // Small-range data: finest covering exponent is positive.
        let small = calibrate_a8(&params, &toy_data(8, 0.5), A8Config::paper_a8()).unwrap();
        // Large-range data: exponent must drop to cover it.
        let large = calibrate_a8(&params, &toy_data(8, 60.0), A8Config::paper_a8()).unwrap();
        assert!(small.max_abs_input < large.max_abs_input);
        assert!(
            small.config.input_bits > large.config.input_bits,
            "{} vs {}",
            small.config.input_bits,
            large.config.input_bits
        );
    }

    #[test]
    fn every_accepted_trial_improves() {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 3).unwrap();
        let data = toy_data(12, 8.0);
        let r = calibrate_a8(&params, &data, A8Config::paper_a8()).unwrap();
        let mut best = f64::MIN;
        for t in &r.trials {
            if t.accepted {
                assert!(t.agreement > best || best == f64::MIN);
            }
            best = best.max(if t.accepted { t.agreement } else { best });
        }
        // The final config's consts must be device-valid.
        r.config.consts(&params.config).unwrap();
    }
}
