//! Fully-INT8 (A8W8) inference: i8 activations at per-stage power-of-two
//! exponents, driving the Xkwtdot `kdot4.i8` packed dot product.
//!
//! The i16-residual scheme of [`crate::QuantizedKwt`] keeps one global
//! activation exponent because the i16 range (±32767) absorbs both the
//! large raw token stream and the fine post-LayerNorm residuals. An i8
//! pipeline has 8× less dynamic range, so this scheme gives **each
//! pipeline stage its own signed power-of-two exponent** ([`A8Config`]):
//! raw MFCC inputs and the pre-LayerNorm token stream may sit at coarse
//! (even negative) exponents while attention probabilities keep seven
//! fractional bits. Every rescale is still a power of two, so the device
//! path stays shift-only (integer matmul epilogues) or a single exact
//! float multiply (quantisation boundaries).
//!
//! [`A8Kwt::forward_a8_into`] is the **host golden model** of the
//! generated `kdot4.i8` device image: every arithmetic step mirrors the
//! device instruction stream exactly —
//!
//! * integer matmuls accumulate in wrapping i32 and narrow through the
//!   device's `ksat.i16` + `kclip 7` epilogue
//!   ([`kwt_tensor::qops::matmul_i8_i8_into`]);
//! * quantisation boundaries mirror `kcvt.h2f` + `kfmul.t` (exact
//!   int→float then a truncating multiply, [`kwt_tensor::softfp::mul`])
//!   and `kfmul.t` + `kcvt.f2h` + `kclip` (truncating multiply, floor,
//!   saturate);
//! * SoftMax and GELU are the Q8.24 LUT pipelines ([`crate::fixed_softmax`],
//!   [`crate::fixed_gelu`]) — the A8 model is **LUT-only** (the paper's
//!   "+Hardware" accelerated flavour), which is what makes a bit-exact
//!   host oracle possible without a soft-float `expf` model;
//! * LayerNorm mirrors the packed `kfadd.t`/`kfsub.t`/`kfmul.t` kernel
//!   op-for-op, with [`kwt_tensor::softfp::rsqrt`] standing in for the
//!   device math library's `rsqrtf` (pinned by a differential test).
//!
//! The bare-metal crate asserts device logits are **bit-identical** to
//! this model across seeds, which is the A8 analogue of the i16 path's
//! scalar-vs-packed differential story: the numerics legitimately differ
//! from the i16 pipeline, so the oracle moves host-side.

use crate::luts::LutSet;
use crate::{fixed_gelu, fixed_softmax, QuantError, Result};
use kwt_model::{KwtConfig, KwtParams};
use kwt_tensor::qops::{self, QuantStats};
use kwt_tensor::{softfp, Mat};

/// Per-stage activation exponents of the A8W8 scheme.
///
/// A tensor at exponent `y` stores a float value `x` as
/// `clamp(floor(x * 2^y))` in `i8`; negative exponents widen the
/// representable range for large-magnitude stages at the cost of
/// resolution. Weights stay at the unsigned `2^weight_bits` of the i16
/// scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct A8Config {
    /// Weight exponent `yw` (weights quantised to `i8` at `2^yw`).
    pub weight_bits: u32,
    /// Raw MFCC input exponent (host-side quantisation; may be negative —
    /// MFCC magnitudes reach the hundreds).
    pub input_bits: i32,
    /// Token/residual stream exponent **before the first LayerNorm**
    /// (patch projection output, class token, positional embeddings,
    /// first attention residual).
    pub stream0_bits: i32,
    /// Residual stream exponent after LayerNorm (post-LN activations are
    /// normalised, so this can be much finer than `stream0_bits`).
    pub stream_bits: i32,
    /// Q/K/V and attention-context exponent.
    pub attn_bits: i32,
    /// Attention score exponent (scores are dequantised for SoftMax
    /// immediately, so this mostly controls pre-SoftMax clipping).
    pub score_bits: i32,
    /// MLP hidden (pre/post GELU) exponent.
    pub hidden_bits: i32,
    /// Attention probability exponent (probabilities live in `[0, 1]`).
    pub prob_bits: i32,
    /// Logit exponent (device logits are read back as `i8 / 2^logit_bits`).
    pub logit_bits: i32,
}

impl A8Config {
    /// The tuned default, calibrated against the i16 quant path on the
    /// synthetic GSC binary task (top-1 agreement 99.9 % over 900
    /// train/val/test clips): weight scale 64 like Table V's best row, a
    /// half-scale input exponent absorbing the MFCC range (≈ ±64 on the
    /// synth set), a coarse pre-LayerNorm stream, and fine exponents for
    /// the normalised stages.
    pub fn paper_a8() -> Self {
        A8Config {
            weight_bits: 6,
            input_bits: -1,
            stream0_bits: 2,
            stream_bits: 4,
            attn_bits: 2,
            score_bits: 3,
            hidden_bits: 3,
            prob_bits: 7,
            logit_bits: 2,
        }
    }

    /// The raw-feature input exponent — the scale a pre-quantising MFCC
    /// front end emits `i8` features at (`kwt_audio`'s
    /// `MfccExtractor::extract_a8_into`), and the scale the device
    /// session's own host-side quantisation uses. Keeping both readers
    /// on this one accessor is what makes the front-end-quantised and
    /// host-quantised upload paths bit-identical.
    pub fn input_exponent(&self) -> i32 {
        self.input_bits
    }

    /// Derives every shift and float scale constant of the pipeline,
    /// validating that each integer epilogue shift lands in `[0, 31]`
    /// (the device `ksat.i16` shift operand).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Model`] if any derived shift is out of
    /// range.
    pub fn consts(&self, config: &KwtConfig) -> Result<A8Consts> {
        let yw = self.weight_bits as i32;
        let shift = |name: &str, v: i32| -> Result<u32> {
            if (0..32).contains(&v) {
                Ok(v as u32)
            } else {
                Err(QuantError::Model(format!(
                    "A8 shift `{name}` = {v} out of the device range [0, 31]"
                )))
            }
        };
        let bits = |y: i32| ((y as f64).exp2() as f32).to_bits();
        let inv_bits = |y: i32| ((-(y as f64)).exp2() as f32).to_bits();
        let inv_sqrt_dh = 1.0 / (config.dim_head as f32).sqrt();
        let score_deq = f32::from_bits(inv_bits(self.score_bits)) * inv_sqrt_dh;
        Ok(A8Consts {
            shift_proj: shift("proj", self.input_bits + yw - self.stream0_bits)?,
            shift_qkv0: shift("qkv (layer 0)", self.stream0_bits + yw - self.attn_bits)?,
            shift_qkv: shift("qkv", self.stream_bits + yw - self.attn_bits)?,
            shift_scores: shift("scores", 2 * self.attn_bits - self.score_bits)?,
            shift_ctx: shift("context", self.prob_bits)?,
            shift_out0: shift(
                "out-proj (layer 0)",
                self.attn_bits + yw - self.stream0_bits,
            )?,
            shift_out: shift("out-proj", self.attn_bits + yw - self.stream_bits)?,
            shift_mlp1: shift("mlp1", self.stream_bits + yw - self.hidden_bits)?,
            shift_mlp2: shift("mlp2", self.hidden_bits + yw - self.stream_bits)?,
            shift_head: shift("head", self.stream_bits + yw - self.logit_bits)?,
            score_deq_bits: score_deq.to_bits(),
            prob_req_bits: bits(self.prob_bits),
            ln_deq0_bits: inv_bits(self.stream0_bits),
            ln_deq_bits: inv_bits(self.stream_bits),
            ln_req_bits: bits(self.stream_bits),
            gelu_deq_bits: inv_bits(self.hidden_bits),
            gelu_req_bits: bits(self.hidden_bits),
            inv_n_bits: (1.0 / config.dim as f32).to_bits(),
            eps_bits: config.ln_eps.to_bits(),
            logit_scale: f32::from_bits(inv_bits(self.logit_bits)),
        })
    }
}

impl Default for A8Config {
    fn default() -> Self {
        Self::paper_a8()
    }
}

/// Every derived constant of one A8 pipeline: integer epilogue shifts
/// and the f32 bit patterns of the quantisation-boundary scale factors.
///
/// Host golden model and bare-metal image builder both read these, so
/// the two sides can never disagree on a constant.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct A8Consts {
    pub shift_proj: u32,
    pub shift_qkv0: u32,
    pub shift_qkv: u32,
    pub shift_scores: u32,
    pub shift_ctx: u32,
    pub shift_out0: u32,
    pub shift_out: u32,
    pub shift_mlp1: u32,
    pub shift_mlp2: u32,
    pub shift_head: u32,
    /// Folded score dequantisation: `2^-score_bits / sqrt(dim_head)`.
    pub score_deq_bits: u32,
    pub prob_req_bits: u32,
    pub ln_deq0_bits: u32,
    pub ln_deq_bits: u32,
    pub ln_req_bits: u32,
    pub gelu_deq_bits: u32,
    pub gelu_req_bits: u32,
    pub inv_n_bits: u32,
    pub eps_bits: u32,
    /// `2^-logit_bits` — multiply read-back i8 logits by this.
    pub logit_scale: f32,
}

/// One A8-quantised transformer block.
#[derive(Debug, Clone)]
struct A8Layer {
    w_qkv: Mat<i8>,
    b_qkv: Vec<i32>,
    w_out: Mat<i8>,
    b_out: Vec<i32>,
    ln1_gamma: Vec<f32>,
    ln1_beta: Vec<f32>,
    w_mlp1: Mat<i8>,
    b_mlp1: Vec<i32>,
    w_mlp2: Mat<i8>,
    b_mlp2: Vec<i32>,
    ln2_gamma: Vec<f32>,
    ln2_beta: Vec<f32>,
}

/// Reusable activation arena for [`A8Kwt::forward_a8_into`].
#[derive(Debug, Clone, Default)]
pub struct A8Scratch {
    x_q: Mat<i8>,
    tokens: Mat<i8>,
    x: Mat<i8>,
    qkv: Mat<i8>,
    q: Vec<Mat<i8>>,
    k: Vec<Mat<i8>>,
    v: Vec<Mat<i8>>,
    score8: Vec<i8>,
    rowf: Vec<f32>,
    sa: Mat<i8>,
    attn: Mat<i8>,
    hidden: Mat<i8>,
    mlp_out: Mat<i8>,
    cls: Mat<i8>,
    logits_q: Mat<i8>,
}

/// The A8W8 model: i8 weights *and* i8 activations, LUT non-linearities.
///
/// Built straight from trained float parameters — weights quantise
/// identically to [`crate::QuantizedKwt`] (same `2^weight_bits` floor
/// rule), but biases, the class token and the positional embeddings are
/// requantised at the A8 per-stage exponents.
#[derive(Debug, Clone)]
pub struct A8Kwt {
    /// Architecture hyper-parameters.
    pub config: KwtConfig,
    /// The per-stage exponents.
    pub a8: A8Config,
    /// Derived shifts and scale constants (shared with the image builder).
    pub consts: A8Consts,
    w_proj: Mat<i8>,
    b_proj: Vec<i32>,
    pos_emb: Mat<i8>,
    class_token: Vec<i8>,
    layers: Vec<A8Layer>,
    w_head: Mat<i8>,
    b_head: Vec<i32>,
    luts: LutSet,
}

/// `floor(v * 2^y)` for a possibly negative exponent, saturated to i32 —
/// the A8 bias quantiser (biases sit at the combined input×weight scale).
fn quant_bias_a8(b: &[f32], combined: i32) -> Vec<i32> {
    let scale = (combined as f64).exp2() as f32;
    b.iter()
        .map(|&v| (v * scale).floor().clamp(i32::MIN as f32, i32::MAX as f32) as i32)
        .collect()
}

/// Host mirror of the device requantisation boundary: `kfmul.t` by the
/// scale (truncating), `kcvt.f2h` shift-0 (floor, saturate to i16), then
/// `kclip 7` (clamp to i8). Saturations are counted like the integer
/// kernels'.
fn requant8(bits: u32, scale_bits: u32, stats: &mut QuantStats) -> i8 {
    let prod_bits = softfp::mul(bits, scale_bits);
    let prod = f32::from_bits(prod_bits);
    let wide: i32 = if prod.is_nan() {
        if prod_bits >> 31 == 0 {
            i32::MAX
        } else {
            i32::MIN
        }
    } else {
        let fl = f64::from(prod).floor();
        if fl >= i32::MAX as f64 + 1.0 {
            i32::MAX
        } else if fl < i32::MIN as f64 {
            i32::MIN
        } else {
            fl as i32
        }
    };
    let wide = wide.clamp(-32768, 32767);
    if !(-128..=127).contains(&wide) {
        stats.saturations += 1;
    }
    wide.clamp(-128, 127) as i8
}

/// Host mirror of the device dequantisation boundary: `kcvt.h2f` shift-0
/// (exact int→float) then `kfmul.t` by the scale.
fn dequant8(v: i8, scale_bits: u32) -> f32 {
    f32::from_bits(softfp::mul((v as f32).to_bits(), scale_bits))
}

/// Copies a `width`-column slice of `src` starting at `start` into `dst`.
fn copy_columns_into(src: &Mat<i8>, start: usize, width: usize, dst: &mut Mat<i8>) {
    dst.resize(src.rows(), width);
    for r in 0..src.rows() {
        dst.row_mut(r)
            .copy_from_slice(&src.row(r)[start..start + width]);
    }
}

impl A8Kwt {
    /// Quantises trained float parameters into the A8W8 scheme.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Model`] if the exponent configuration
    /// produces an out-of-range device shift.
    pub fn quantize(params: &KwtParams, a8: A8Config) -> Result<Self> {
        let consts = a8.consts(&params.config)?;
        let yw = a8.weight_bits;
        let layers = params
            .layers
            .iter()
            .enumerate()
            .map(|(idx, l)| {
                let stream = if idx == 0 {
                    a8.stream0_bits
                } else {
                    a8.stream_bits
                };
                A8Layer {
                    w_qkv: qops::quantize_i8(&l.w_qkv, yw).0,
                    b_qkv: quant_bias_a8(&l.b_qkv, stream + yw as i32),
                    w_out: qops::quantize_i8(&l.w_out, yw).0,
                    b_out: quant_bias_a8(&l.b_out, a8.attn_bits + yw as i32),
                    ln1_gamma: l.ln1_gamma.clone(),
                    ln1_beta: l.ln1_beta.clone(),
                    w_mlp1: qops::quantize_i8(&l.w_mlp1, yw).0,
                    b_mlp1: quant_bias_a8(&l.b_mlp1, a8.stream_bits + yw as i32),
                    w_mlp2: qops::quantize_i8(&l.w_mlp2, yw).0,
                    b_mlp2: quant_bias_a8(&l.b_mlp2, a8.hidden_bits + yw as i32),
                    ln2_gamma: l.ln2_gamma.clone(),
                    ln2_beta: l.ln2_beta.clone(),
                }
            })
            .collect();
        Ok(A8Kwt {
            config: params.config,
            a8,
            consts,
            w_proj: qops::quantize_i8(&params.w_proj, yw).0,
            b_proj: quant_bias_a8(&params.b_proj, a8.input_bits + yw as i32),
            pos_emb: {
                let mut m = Mat::default();
                qops::quantize_i8_scaled_into(&params.pos_emb, a8.stream0_bits, &mut m);
                m
            },
            class_token: qops::quantize_slice_i8_scaled(&params.class_token, a8.stream0_bits).0,
            layers,
            w_head: qops::quantize_i8(&params.w_head, yw).0,
            b_head: quant_bias_a8(&params.b_head, a8.stream_bits + yw as i32),
            luts: LutSet::new(),
        })
    }

    /// Replaces the LUT set (threshold experiments).
    pub fn with_luts(mut self, luts: LutSet) -> Self {
        self.luts = luts;
        self
    }

    /// The LUT ROM of the SoftMax/GELU pipelines.
    pub fn luts(&self) -> &LutSet {
        &self.luts
    }

    /// Borrowed views of the top-level tensors, for the bare-metal image
    /// builder: `(w_proj, b_proj, pos_emb, class_token, w_head, b_head)`.
    #[allow(clippy::type_complexity)]
    pub fn tensors(&self) -> (&Mat<i8>, &[i32], &Mat<i8>, &[i8], &Mat<i8>, &[i32]) {
        (
            &self.w_proj,
            &self.b_proj,
            &self.pos_emb,
            &self.class_token,
            &self.w_head,
            &self.b_head,
        )
    }

    /// Borrowed views of one layer's tensors, in the same order as
    /// [`crate::QuantizedKwt::layer_tensors`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= depth`.
    #[allow(clippy::type_complexity)]
    pub fn layer_tensors(
        &self,
        idx: usize,
    ) -> (
        &Mat<i8>,
        &[i32],
        &Mat<i8>,
        &[i32],
        &[f32],
        &[f32],
        &Mat<i8>,
        &[i32],
        &Mat<i8>,
        &[i32],
        &[f32],
        &[f32],
    ) {
        let l = &self.layers[idx];
        (
            &l.w_qkv,
            &l.b_qkv,
            &l.w_out,
            &l.b_out,
            &l.ln1_gamma,
            &l.ln1_beta,
            &l.w_mlp1,
            &l.b_mlp1,
            &l.w_mlp2,
            &l.b_mlp2,
            &l.ln2_gamma,
            &l.ln2_beta,
        )
    }

    /// A8 inference returning float logits (`i8 logits / 2^logit_bits`).
    ///
    /// # Errors
    ///
    /// Same contract as [`forward_a8_into`](Self::forward_a8_into).
    pub fn forward_a8(&self, mfcc: &Mat<f32>) -> Result<(Vec<f32>, QuantStats)> {
        let mut logits = Vec::new();
        let stats = self.forward_a8_into(mfcc, &mut A8Scratch::default(), &mut logits)?;
        Ok((logits, stats))
    }

    /// Arg-max class prediction.
    ///
    /// # Errors
    ///
    /// Same contract as [`forward_a8_into`](Self::forward_a8_into).
    pub fn predict_a8(&self, mfcc: &Mat<f32>) -> Result<usize> {
        let (logits, _) = self.forward_a8(mfcc)?;
        Ok(logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("num_classes > 0"))
    }

    /// The single implementation of A8 inference — the host golden model
    /// the device image is differentially tested against (see the module
    /// docs for the instruction-level correspondence).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Model`] for a wrong input shape.
    pub fn forward_a8_into(
        &self,
        mfcc: &Mat<f32>,
        s: &mut A8Scratch,
        logits_out: &mut Vec<f32>,
    ) -> Result<QuantStats> {
        let c = &self.config;
        if mfcc.shape() != (c.input_time, c.input_freq) {
            return Err(QuantError::Model(format!(
                "input shape {:?} does not match configured ({}, {})",
                mfcc.shape(),
                c.input_time,
                c.input_freq
            )));
        }
        let k = &self.consts;
        let mut stats = QuantStats::default();
        let section = c.heads * c.dim_head;
        s.q.resize(c.heads, Mat::default());
        s.k.resize(c.heads, Mat::default());
        s.v.resize(c.heads, Mat::default());

        // 1. Quantise the MFCC input (host side on the device too).
        stats.merge(qops::quantize_i8_scaled_into(
            mfcc,
            self.a8.input_bits,
            &mut s.x_q,
        ));

        // 2. Patch projection, class token, positional embeddings — all
        // at the stream0 exponent.
        stats.merge(qops::matmul_i8_i8_into(
            &s.x_q,
            &self.w_proj,
            Some(&self.b_proj),
            k.shift_proj,
            &mut s.tokens,
        )?);
        s.x.resize(c.seqlen(), c.dim);
        s.x.row_mut(0).copy_from_slice(&self.class_token);
        for t in 0..s.tokens.rows() {
            let row = s.tokens.row(t);
            s.x.row_mut(t + 1).copy_from_slice(row);
        }
        stats.merge(qops::add_assign_sat_i8(&mut s.x, &self.pos_emb)?);

        // 3. Transformer blocks.
        for (idx, layer) in self.layers.iter().enumerate() {
            let first = idx == 0;
            let (shift_qkv, shift_out, ln1_deq) = if first {
                (k.shift_qkv0, k.shift_out0, k.ln_deq0_bits)
            } else {
                (k.shift_qkv, k.shift_out, k.ln_deq_bits)
            };
            stats.merge(qops::matmul_i8_i8_into(
                &s.x,
                &layer.w_qkv,
                Some(&layer.b_qkv),
                shift_qkv,
                &mut s.qkv,
            )?);
            for h in 0..c.heads {
                copy_columns_into(&s.qkv, h * c.dim_head, c.dim_head, &mut s.q[h]);
                copy_columns_into(&s.qkv, section + h * c.dim_head, c.dim_head, &mut s.k[h]);
                copy_columns_into(
                    &s.qkv,
                    2 * section + h * c.dim_head,
                    c.dim_head,
                    &mut s.v[h],
                );
            }

            // Fused per-row attention pipeline: scores → LUT softmax →
            // context, mirroring the device's `attention_a8` kernel.
            s.sa.resize(c.seqlen(), section);
            for h in 0..c.heads {
                stats.merge(self.attention_rows(
                    &s.q[h],
                    &s.k[h],
                    &s.v[h],
                    h * c.dim_head,
                    &mut s.sa,
                    &mut s.score8,
                    &mut s.rowf,
                ));
            }

            stats.merge(qops::matmul_i8_i8_into(
                &s.sa,
                &layer.w_out,
                Some(&layer.b_out),
                shift_out,
                &mut s.attn,
            )?);
            stats.merge(qops::add_assign_sat_i8(&mut s.x, &s.attn)?);

            // LayerNorm 1: stream0/stream → stream exponent.
            stats.merge(self.layer_norm_rows(
                &mut s.x,
                &layer.ln1_gamma,
                &layer.ln1_beta,
                ln1_deq,
                k.ln_req_bits,
            ));

            // MLP with the fused LUT-GELU boundary.
            stats.merge(qops::matmul_i8_i8_into(
                &s.x,
                &layer.w_mlp1,
                Some(&layer.b_mlp1),
                k.shift_mlp1,
                &mut s.hidden,
            )?);
            for v in s.hidden.as_mut_slice() {
                let f = dequant8(*v, k.gelu_deq_bits);
                let g = fixed_gelu(f, &self.luts);
                *v = requant8(g.to_bits(), k.gelu_req_bits, &mut stats);
            }
            stats.merge(qops::matmul_i8_i8_into(
                &s.hidden,
                &layer.w_mlp2,
                Some(&layer.b_mlp2),
                k.shift_mlp2,
                &mut s.mlp_out,
            )?);
            stats.merge(qops::add_assign_sat_i8(&mut s.x, &s.mlp_out)?);

            // LayerNorm 2: stream → stream.
            stats.merge(self.layer_norm_rows(
                &mut s.x,
                &layer.ln2_gamma,
                &layer.ln2_beta,
                k.ln_deq_bits,
                k.ln_req_bits,
            ));
        }

        // 4. Head on the class token.
        s.cls.resize(1, c.dim);
        s.cls.row_mut(0).copy_from_slice(s.x.row(0));
        stats.merge(qops::matmul_i8_i8_into(
            &s.cls,
            &self.w_head,
            Some(&self.b_head),
            k.shift_head,
            &mut s.logits_q,
        )?);
        logits_out.clear();
        logits_out.extend(
            s.logits_q
                .as_slice()
                .iter()
                .map(|&v| v as f32 * k.logit_scale),
        );
        Ok(stats)
    }

    /// One head's fused row pipeline: for every query row, integer
    /// scores (wrapping i32, `ksat`+`kclip` epilogue), the folded
    /// dequantise-and-scale (`kcvt.h2f` + one `kfmul.t` by
    /// `2^-score_bits / sqrt(dh)`), the LUT SoftMax, probability
    /// requantisation, and the integer context product — writing the
    /// head's column block of `sa`.
    #[allow(clippy::too_many_arguments)]
    fn attention_rows(
        &self,
        q: &Mat<i8>,
        kk: &Mat<i8>,
        v: &Mat<i8>,
        col0: usize,
        sa: &mut Mat<i8>,
        score8: &mut Vec<i8>,
        rowf: &mut Vec<f32>,
    ) -> QuantStats {
        let kc = &self.consts;
        let s_len = q.rows();
        let dh = q.cols();
        let mut stats = QuantStats::default();
        score8.resize(s_len, 0);
        rowf.resize(s_len, 0.0);
        for i in 0..s_len {
            let qrow = q.row(i);
            // scores_row = K · q_row, narrowed to i8 at the score scale
            for (j, sc) in score8.iter_mut().enumerate() {
                let krow = kk.row(j);
                let mut acc: i32 = 0;
                for (a, b) in qrow.iter().zip(krow) {
                    acc = acc.wrapping_add(*a as i32 * *b as i32);
                }
                stats.max_abs_acc = stats.max_abs_acc.max((acc as i64).abs());
                let narrowed = (acc >> kc.shift_scores).clamp(-128, 127);
                if narrowed != acc >> kc.shift_scores {
                    stats.saturations += 1;
                }
                *sc = narrowed as i8;
            }
            // dequantise + 1/sqrt(dh) in one truncating multiply
            for (f, &sc) in rowf.iter_mut().zip(score8.iter()) {
                *f = dequant8(sc, kc.score_deq_bits);
            }
            // Q8.24 LUT softmax (bit-exact vs the device `softmax_accel`)
            let probs = fixed_softmax(rowf, &self.luts);
            // requantise probabilities to i8
            for (p8, &p) in score8.iter_mut().zip(&probs) {
                *p8 = requant8(p.to_bits(), kc.prob_req_bits, &mut stats);
            }
            // context row: out[j] = (Σ_l V[l, j] · p8[l]) >> prob_bits
            let out_row = &mut sa.row_mut(i)[col0..col0 + dh];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc: i32 = 0;
                for (l, &p8) in score8.iter().enumerate() {
                    acc = acc.wrapping_add(v[(l, j)] as i32 * p8 as i32);
                }
                stats.max_abs_acc = stats.max_abs_acc.max((acc as i64).abs());
                let narrowed = (acc >> kc.shift_ctx).clamp(-128, 127);
                if narrowed != acc >> kc.shift_ctx {
                    stats.saturations += 1;
                }
                *o = narrowed as i8;
            }
        }
        stats
    }

    /// Host mirror of the device's fused `ln_a8` kernel: per row, the
    /// packed-LayerNorm float sequence (`kfadd`/`kfsub`/`kfmul` +
    /// `rsqrtf`) over on-the-fly dequantised elements, requantising the
    /// result straight back to i8.
    fn layer_norm_rows(
        &self,
        x: &mut Mat<i8>,
        gamma: &[f32],
        beta: &[f32],
        deq_bits: u32,
        req_bits: u32,
    ) -> QuantStats {
        let kc = &self.consts;
        let mut stats = QuantStats::default();
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            // pass 1: sum → mean (truncating adds in element order)
            let mut sum = 0u32; // +0.0
            for &v in row.iter() {
                sum = softfp::add(dequant8(v, deq_bits).to_bits(), sum);
            }
            let mean = softfp::mul(sum, kc.inv_n_bits);
            // pass 2: Σ (x - mean)² → variance → inv_std
            let mut acc = 0u32;
            for &v in row.iter() {
                let d = softfp::sub(dequant8(v, deq_bits).to_bits(), mean);
                acc = softfp::add(softfp::mul(d, d), acc);
            }
            let var_eps = softfp::add(softfp::mul(acc, kc.inv_n_bits), kc.eps_bits);
            let inv_std = softfp::rsqrt(var_eps);
            // pass 3: normalise, scale, shift, requantise
            for (v, (&g, &b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
                let mut t = softfp::sub(dequant8(*v, deq_bits).to_bits(), mean);
                t = softfp::mul(t, inv_std);
                t = softfp::mul(t, g.to_bits());
                t = softfp::add(t, b.to_bits());
                *v = requant8(t, req_bits, &mut stats);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_ish_params() -> KwtParams {
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 21).unwrap();
        p.visit_mut(|s| {
            for v in s {
                *v *= 0.7;
            }
        });
        p
    }

    /// MFCC-shaped test inputs: a large positive first cepstral
    /// coefficient and decaying higher coefficients, matching the range
    /// the exponents were calibrated on (the synthetic GSC front end
    /// produces values in roughly `[-7, 65]`).
    fn input(seed: u64) -> Mat<f32> {
        Mat::from_fn(26, 16, |r, c| {
            let h = seed
                .wrapping_add((r * 16 + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let u = (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5; // [-0.5, 0.5]
            if c == 0 {
                35.0 + 50.0 * u
            } else {
                u * 16.0 / (1.0 + c as f32 * 0.4)
            }
        })
    }

    #[test]
    fn consts_validate_shift_ranges() {
        let c = KwtConfig::kwt_tiny();
        assert!(A8Config::paper_a8().consts(&c).is_ok());
        // prob_bits drives the context shift; a negative one must be
        // rejected, as must a huge weight exponent pushing shifts past 31.
        let bad = A8Config {
            prob_bits: -1,
            ..A8Config::paper_a8()
        };
        assert!(bad.consts(&c).is_err());
        let bad = A8Config {
            weight_bits: 31,
            ..A8Config::paper_a8()
        };
        assert!(bad.consts(&c).is_err());
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let params = trained_ish_params();
        let qm = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let mut reused = A8Scratch::default();
        let mut logits_reused = Vec::new();
        for seed in 0..8 {
            let x = input(seed + 70);
            let stats_reused = qm
                .forward_a8_into(&x, &mut reused, &mut logits_reused)
                .unwrap();
            let (logits_fresh, stats_fresh) = qm.forward_a8(&x).unwrap();
            assert_eq!(logits_reused, logits_fresh, "seed {seed}");
            assert_eq!(stats_reused, stats_fresh, "seed {seed}");
        }
    }

    #[test]
    fn a8_tracks_the_i16_quant_path() {
        // The A8 numerics legitimately differ from the i16 pipeline, but
        // arg-max decisions must agree on the large majority of inputs.
        let params = trained_ish_params();
        let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let i16 = crate::QuantizedKwt::quantize(&params, crate::QuantConfig::paper_best());
        let mut agree = 0;
        for seed in 0..20 {
            let x = input(seed);
            if a8.predict_a8(&x).unwrap() == i16.predict(&x).unwrap() {
                agree += 1;
            }
        }
        assert!(agree >= 18, "only {agree}/20 argmax agreement");
    }

    #[test]
    fn wrong_shape_rejected() {
        let params = trained_ish_params();
        let qm = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        assert!(matches!(
            qm.forward_a8(&Mat::zeros(16, 26)),
            Err(QuantError::Model(_))
        ));
    }

    #[test]
    fn forward_reports_stats_and_logits() {
        let params = trained_ish_params();
        let qm = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let (logits, stats) = qm.forward_a8(&input(3)).unwrap();
        assert_eq!(logits.len(), 2);
        assert!(stats.max_abs_acc > 0);
        assert!(logits.iter().all(|l| l.is_finite()));
    }
}
