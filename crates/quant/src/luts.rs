//! The three ROM lookup tables of §VI and bit-exact golden models of the
//! custom-instruction kernels built on them.
//!
//! | Table | Entries | Domain        | Contents (Q8.24)            |
//! |-------|---------|---------------|------------------------------|
//! | LUT1  | 320     | `z ∈ [0,10)`  | `e^{-z}` at 32 steps/unit   |
//! | LUT2  | 320     | `z ∈ (0,10]`  | `1/z` at 32 steps/unit      |
//! | LUT3  | 32      | `[lo, hi]`    | `GELU(x)` midpoint samples  |
//!
//! Total ROM: `(320 + 320 + 32) * 4 = 2688` bytes — the paper's 2.69 kB.
//!
//! The index arithmetic matches a hardware implementation exactly:
//! `z * 32` in Q8.24 is simply `bits >> 19`, clamped into the table.

use crate::fixed::Q8_24;
use kwt_tensor::math::gelu_exact;
use serde::{Deserialize, Serialize};

/// Entries in the exponential table (`10 units x 32 divisions`).
pub const EXP_LUT_LEN: usize = 320;
/// Entries in the reciprocal table.
pub const INV_LUT_LEN: usize = 320;
/// Entries in the GELU table.
pub const GELU_LUT_LEN: usize = 32;

/// The paper's lower GELU clip threshold (`GELU(x) ≈ 0` below it).
pub const PAPER_GELU_LO: f32 = -1.857;
/// The paper's upper GELU clip threshold (`GELU(x) = x` above it).
pub const PAPER_GELU_HI: f32 = 1.595;

/// The 32-entry GELU table with its clip thresholds (eq. 13 / Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeluLut {
    /// Lower clip threshold: below it the approximation returns 0.
    pub lo: f32,
    /// Upper clip threshold: above it the approximation returns `x`.
    pub hi: f32,
    /// Midpoint samples of `GELU` over `[lo, hi]`, Q8.24.
    table: Vec<Q8_24>,
}

impl GeluLut {
    /// Builds the table for thresholds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "GELU thresholds must satisfy lo < hi");
        let step = (hi - lo) / GELU_LUT_LEN as f32;
        let table = (0..GELU_LUT_LEN)
            .map(|i| Q8_24::from_f32(gelu_exact(lo + (i as f32 + 0.5) * step)))
            .collect();
        GeluLut { lo, hi, table }
    }

    /// Builds the table directly from ROM words (threshold + truncation
    /// experiments; the table may deliberately be shorter than
    /// [`GELU_LUT_LEN`], in which case in-window lookups past its end
    /// fail — see [`GeluLut::try_eval`]).
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn from_words(lo: f32, hi: f32, words: &[i32]) -> Self {
        assert!(lo < hi, "GELU thresholds must satisfy lo < hi");
        GeluLut {
            lo,
            hi,
            table: words.iter().map(|&w| Q8_24::from_bits(w)).collect(),
        }
    }

    /// The approximation: piecewise clip + table lookup.
    ///
    /// # Panics
    ///
    /// Panics if the table was truncated below [`GELU_LUT_LEN`] entries
    /// and the clamped index falls past its end — simulators should use
    /// [`GeluLut::try_eval`] and trap instead.
    pub fn eval(&self, x: Q8_24) -> Q8_24 {
        self.try_eval(x).unwrap_or_else(|idx| {
            panic!(
                "GELU LUT index {idx} out of range ({} entries)",
                self.table.len()
            )
        })
    }

    /// The checked approximation: `Err(index)` when the clamped index
    /// falls outside the actual table (only possible for tables built
    /// shorter than [`GELU_LUT_LEN`] via [`GeluLut::from_words`]).
    pub fn try_eval(&self, x: Q8_24) -> Result<Q8_24, usize> {
        let xf = x.to_f32();
        if xf > self.hi {
            return Ok(x);
        }
        if xf < self.lo {
            return Ok(Q8_24::ZERO);
        }
        let step = (self.hi - self.lo) / GELU_LUT_LEN as f32;
        let idx = (((xf - self.lo) / step) as usize).min(GELU_LUT_LEN - 1);
        self.table.get(idx).copied().ok_or(idx)
    }

    /// Number of entries actually resident in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Raw Q8.24 table words (for ROM embedding).
    pub fn words(&self) -> Vec<i32> {
        self.table.iter().map(|q| q.to_bits()).collect()
    }
}

/// The full LUT ROM: exp, reciprocal and GELU tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LutSet {
    exp: Vec<Q8_24>,
    inv: Vec<Q8_24>,
    /// The GELU table (public: threshold experiments re-build it).
    pub gelu: GeluLut,
}

impl Default for LutSet {
    fn default() -> Self {
        Self::new()
    }
}

impl LutSet {
    /// Builds the ROMs with the paper's GELU thresholds.
    pub fn new() -> Self {
        Self::with_gelu_thresholds(PAPER_GELU_LO, PAPER_GELU_HI)
    }

    /// Builds the ROMs with custom GELU clip thresholds (the threshold
    /// optimiser uses this).
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn with_gelu_thresholds(lo: f32, hi: f32) -> Self {
        // LUT1[i] = e^{-(i/32)}  (eq. 11: LUT1[z*32] ≈ 1/e^z)
        let exp = (0..EXP_LUT_LEN)
            .map(|i| Q8_24::from_f32((-(i as f64) / 32.0).exp() as f32))
            .collect();
        // LUT2[i] = 1/((i+1)/32) = 32/(i+1)  (eq. 12: LUT2[z*32 - 1] ≈ 1/z)
        let inv = (0..INV_LUT_LEN)
            .map(|i| Q8_24::from_f32(32.0 / (i as f32 + 1.0)))
            .collect();
        LutSet {
            exp,
            inv,
            gelu: GeluLut::new(lo, hi),
        }
    }

    /// Builds a set directly from ROM words (for ROM round-trips and
    /// truncation experiments). Tables shorter than the nominal lengths
    /// are allowed; the checked `try_*` lookups report out-of-range
    /// indices instead of panicking, and `kwt-rv32` converts those into
    /// typed traps.
    pub fn from_words(exp: &[i32], inv: &[i32], gelu: GeluLut) -> Self {
        LutSet {
            exp: exp.iter().map(|&w| Q8_24::from_bits(w)).collect(),
            inv: inv.iter().map(|&w| Q8_24::from_bits(w)).collect(),
            gelu,
        }
    }

    /// `ALU_EXP` (funct3 = 000): `e^{-z}` for `z ≥ 0` via LUT1.
    ///
    /// Negative inputs clamp to index 0 (`e^0 = 1`); inputs ≥ 10 clamp to
    /// the last entry (`e^{-9.97} ≈ 4.7e-5`) — exactly what a hardware
    /// index clamp does.
    ///
    /// # Panics
    ///
    /// Panics when the table was truncated below [`EXP_LUT_LEN`] and the
    /// clamped index overruns it (see [`LutSet::try_alu_exp`]).
    pub fn alu_exp(&self, z: Q8_24) -> Q8_24 {
        self.try_alu_exp(z).unwrap_or_else(|idx| {
            panic!(
                "exp LUT index {idx} out of range ({} entries)",
                self.exp.len()
            )
        })
    }

    /// Checked [`LutSet::alu_exp`]: `Err(index)` on a table overrun.
    pub fn try_alu_exp(&self, z: Q8_24) -> Result<Q8_24, usize> {
        // z * 32 in Q8.24 == bits >> 19.
        let idx = (z.to_bits() >> 19).clamp(0, EXP_LUT_LEN as i32 - 1) as usize;
        self.exp.get(idx).copied().ok_or(idx)
    }

    /// `ALU_INVERT` (funct3 = 001): `1/z` for `z ∈ (0, 10]` via LUT2.
    ///
    /// Inputs above 10 clamp to the last entry (`1/10`), undersized inputs
    /// clamp to the first (`32`) — the saturation artefacts the paper's
    /// ≈80 % accelerated accuracy inherits.
    ///
    /// # Panics
    ///
    /// Panics when the table was truncated below [`INV_LUT_LEN`] and the
    /// clamped index overruns it (see [`LutSet::try_alu_invert`]).
    pub fn alu_invert(&self, z: Q8_24) -> Q8_24 {
        self.try_alu_invert(z).unwrap_or_else(|idx| {
            panic!(
                "inv LUT index {idx} out of range ({} entries)",
                self.inv.len()
            )
        })
    }

    /// Checked [`LutSet::alu_invert`]: `Err(index)` on a table overrun.
    pub fn try_alu_invert(&self, z: Q8_24) -> Result<Q8_24, usize> {
        let idx = ((z.to_bits() >> 19) - 1).clamp(0, INV_LUT_LEN as i32 - 1) as usize;
        self.inv.get(idx).copied().ok_or(idx)
    }

    /// `ALU_GELU` (funct3 = 011): the piecewise-clipped LUT approximation.
    ///
    /// # Panics
    ///
    /// Panics on a truncated-table overrun (see [`LutSet::try_alu_gelu`]).
    pub fn alu_gelu(&self, x: Q8_24) -> Q8_24 {
        self.gelu.eval(x)
    }

    /// Checked [`LutSet::alu_gelu`]: `Err(index)` on a table overrun.
    pub fn try_alu_gelu(&self, x: Q8_24) -> Result<Q8_24, usize> {
        self.gelu.try_eval(x)
    }

    /// Entries resident in the exp table (== [`EXP_LUT_LEN`] unless
    /// truncated via [`LutSet::from_words`]).
    pub fn exp_len(&self) -> usize {
        self.exp.len()
    }

    /// Entries resident in the reciprocal table.
    pub fn inv_len(&self) -> usize {
        self.inv.len()
    }

    /// Total ROM footprint in bytes (paper: 2.69 kB).
    pub fn rom_bytes(&self) -> usize {
        (self.exp.len() + self.inv.len() + self.gelu.len()) * 4
    }

    /// Raw LUT1 words for ROM embedding.
    pub fn exp_words(&self) -> Vec<i32> {
        self.exp.iter().map(|q| q.to_bits()).collect()
    }

    /// Raw LUT2 words for ROM embedding.
    pub fn inv_words(&self) -> Vec<i32> {
        self.inv.iter().map(|q| q.to_bits()).collect()
    }
}

/// Golden model of the accelerated SoftMax kernel (§VI):
///
/// 1. `ALU_TO_FIXED` each score
/// 2. fixed-point max; `z_i = max − x_i ∈ [0, ∞)`
/// 3. `e_i = ALU_EXP(z_i)` (= `e^{x_i − max}`)
/// 4. fixed-point sum
/// 5. `inv = ALU_INVERT(sum)`
/// 6. `p_i = e_i · inv`, `ALU_TO_FLOAT`
///
/// # Panics
///
/// Panics on an empty slice.
pub fn fixed_softmax(xs: &[f32], luts: &LutSet) -> Vec<f32> {
    assert!(!xs.is_empty(), "empty softmax input");
    let fixed: Vec<Q8_24> = xs.iter().map(|&x| Q8_24::from_f32(x)).collect();
    let max = fixed.iter().copied().max().expect("non-empty");
    let exps: Vec<Q8_24> = fixed.iter().map(|&x| luts.alu_exp(max - x)).collect();
    let mut sum = Q8_24::ZERO;
    for &e in &exps {
        sum = sum + e;
    }
    let inv = luts.alu_invert(sum);
    exps.iter().map(|&e| (e * inv).to_f32()).collect()
}

/// Golden model of the accelerated GELU kernel:
/// `ALU_TO_FIXED` → `ALU_GELU` → `ALU_TO_FLOAT`.
pub fn fixed_gelu(x: f32, luts: &LutSet) -> f32 {
    luts.alu_gelu(Q8_24::from_f32(x)).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_tensor::ops;

    #[test]
    fn rom_size_matches_paper() {
        let luts = LutSet::new();
        assert_eq!(luts.rom_bytes(), 2688); // 2.69 kB
        assert_eq!(luts.exp_words().len(), 320);
        assert_eq!(luts.inv_words().len(), 320);
        assert_eq!(luts.gelu.words().len(), 32);
    }

    #[test]
    fn exp_lut_tracks_exponential() {
        let luts = LutSet::new();
        for i in 0..200 {
            let z = i as f32 * 0.05; // [0, 10)
            let got = luts.alu_exp(Q8_24::from_f32(z)).to_f32();
            let want = (-z).exp();
            // Step size 1/32 -> relative error bounded by the derivative.
            assert!((got - want).abs() < 0.04, "exp(-{z}) = {want}, lut {got}");
        }
    }

    #[test]
    fn exp_lut_clamps() {
        let luts = LutSet::new();
        // negative input -> e^0 = 1
        assert_eq!(luts.alu_exp(Q8_24::from_f32(-3.0)).to_f32(), 1.0);
        // beyond 10 -> last entry (tiny)
        assert!(luts.alu_exp(Q8_24::from_f32(50.0)).to_f32() < 1e-4);
    }

    #[test]
    fn inv_lut_tracks_reciprocal() {
        let luts = LutSet::new();
        for i in 1..100 {
            let z = i as f32 * 0.1 + 0.05; // (0, 10)
            let got = luts.alu_invert(Q8_24::from_f32(z)).to_f32();
            let want = 1.0 / z;
            // Table step is 1/32 in z: near zero the reciprocal is steep,
            // so compare with the quantised-z reference instead of a fixed
            // tolerance.
            let z_quant = ((z * 32.0) as i32) as f32 / 32.0;
            let ref_val = 1.0 / z_quant.max(1.0 / 32.0);
            assert!(
                (got - want).abs() <= (ref_val - want).abs() + 0.08,
                "1/{z}: want {want} got {got}"
            );
        }
    }

    #[test]
    fn inv_lut_clamps() {
        let luts = LutSet::new();
        // above 10 -> 1/10
        assert!((luts.alu_invert(Q8_24::from_f32(64.0)).to_f32() - 0.1).abs() < 0.01);
        // near zero -> 32 (largest entry)
        assert!((luts.alu_invert(Q8_24::from_f32(0.001)).to_f32() - 32.0).abs() < 0.01);
    }

    #[test]
    fn fixed_softmax_close_to_float_softmax() {
        let luts = LutSet::new();
        let cases: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 2.0, 3.0],
            vec![-2.0, 0.5, 0.1, 4.0],
            vec![3.0, 3.1, 2.9, 3.05],
        ];
        for xs in cases {
            let approx = fixed_softmax(&xs, &luts);
            let mut exact = xs.clone();
            ops::softmax_normalized(&mut exact).unwrap();
            for (a, e) in approx.iter().zip(&exact) {
                assert!(
                    (a - e).abs() < 0.06,
                    "softmax({xs:?}): approx {a} vs exact {e}"
                );
            }
            let sum: f32 = approx.iter().sum();
            assert!((sum - 1.0).abs() < 0.15, "sum {sum}");
        }
    }

    #[test]
    fn fixed_softmax_long_uniform_row_saturates_gracefully() {
        // 27 equal scores: sum of exps = 27 > LUT2 domain (10) -> clamp to
        // 1/10 -> probabilities overestimated. This is the documented
        // hardware artefact; verify it is bounded, not catastrophic.
        let luts = LutSet::new();
        let xs = vec![1.0f32; 27];
        let probs = fixed_softmax(&xs, &luts);
        for &p in &probs {
            assert!((0.0..=0.2).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn fixed_softmax_preserves_argmax() {
        let luts = LutSet::new();
        let xs = vec![0.5, 2.5, -1.0, 2.0, 0.0];
        let probs = fixed_softmax(&xs, &luts);
        let arg = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(arg, 1);
    }

    #[test]
    fn gelu_lut_accuracy_inside_window() {
        let luts = LutSet::new();
        let mut max_err = 0.0f32;
        for i in -400..=400 {
            let x = i as f32 * 0.01;
            let err = (fixed_gelu(x, &luts) - gelu_exact(x)).abs();
            max_err = max_err.max(err);
        }
        // The worst case sits exactly at the upper clip threshold, where
        // the identity branch takes over: |GELU(1.595) - 1.595| ≈ 0.087.
        // The paper's thresholds minimise *mean* error, not max error.
        assert!(max_err < 0.10, "max GELU approx error {max_err}");
    }

    #[test]
    fn gelu_lut_clip_behaviour() {
        let luts = LutSet::new();
        assert_eq!(fixed_gelu(3.0, &luts), 3.0); // identity above hi
        assert_eq!(fixed_gelu(-3.0, &luts), 0.0); // zero below lo
    }

    #[test]
    fn gelu_lut_threshold_validation() {
        let l = GeluLut::new(-1.0, 1.0);
        assert_eq!(l.words().len(), 32);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gelu_lut_bad_thresholds_panic() {
        let _ = GeluLut::new(1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fixed_softmax_empty_panics() {
        let _ = fixed_softmax(&[], &LutSet::new());
    }

    #[test]
    fn truncated_tables_report_out_of_range_via_try() {
        let full = LutSet::new();
        let gelu = GeluLut::from_words(PAPER_GELU_LO, PAPER_GELU_HI, &full.gelu.words()[..8]);
        let short = LutSet::from_words(&full.exp_words()[..10], &full.inv_words()[..10], gelu);
        // in-range lookups still work and match the full tables
        assert_eq!(
            short.try_alu_exp(Q8_24::from_f32(0.1)),
            Ok(full.alu_exp(Q8_24::from_f32(0.1)))
        );
        // past the truncated end: a typed error, not a panic
        assert_eq!(short.try_alu_exp(Q8_24::from_f32(5.0)), Err(160));
        assert!(short.try_alu_invert(Q8_24::from_f32(9.0)).is_err());
        assert!(short.try_alu_gelu(Q8_24::from_f32(1.0)).is_err());
        // a full set never errors
        for x in [-20.0f32, -1.0, 0.0, 0.5, 9.99, 50.0] {
            let q = Q8_24::from_f32(x);
            assert!(full.try_alu_exp(q).is_ok());
            assert!(full.try_alu_invert(q).is_ok());
            assert!(full.try_alu_gelu(q).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn truncated_table_unchecked_lookup_panics() {
        let full = LutSet::new();
        let short =
            LutSet::from_words(&full.exp_words()[..4], &full.inv_words(), full.gelu.clone());
        let _ = short.alu_exp(Q8_24::from_f32(9.0));
    }
}
