use std::fmt;

/// Error type for quantisation and fixed-point operations.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A scale factor is not a power of two or is out of the supported
    /// range.
    BadScaleFactor {
        /// The offending factor.
        factor: u32,
    },
    /// The quantised model and the input disagree on shapes.
    Shape(kwt_tensor::TensorError),
    /// Model-level error (input geometry).
    Model(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::BadScaleFactor { factor } => write!(
                f,
                "scale factor {factor} is not a power of two in [2, 32768]"
            ),
            QuantError::Shape(e) => write!(f, "shape error in quantised kernel: {e}"),
            QuantError::Model(m) => write!(f, "quantised model error: {m}"),
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kwt_tensor::TensorError> for QuantError {
    fn from(e: kwt_tensor::TensorError) -> Self {
        QuantError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_bad_scale() {
        assert!(QuantError::BadScaleFactor { factor: 7 }
            .to_string()
            .contains("not a power of two"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
