//! Two-stage wake-word cascade: an always-on tiny detector gating a
//! large verifier.
//!
//! The paper's deployment story (§III) is a KWT-Tiny that is cheap enough
//! to run continuously on the Ibex-class core. This module completes that
//! story the way production wake-word systems do (and the KWS literature
//! in PAPERS.md assumes): the tiny model runs on **every** window, and
//! only when it fires does a much larger verifier — KWT-1 — confirm or
//! reject the detection. At realistic keyword duty cycles (speech in
//! ~1–5 % of windows) the verifier almost never runs, so the cascade's
//! cycles/hour is within a small factor of the tiny model alone while
//! keeping the verifier's false-accept behaviour.
//!
//! The two stages are full [`Engine`]s with **independent front ends**
//! (KWT-Tiny consumes 26×16 MFCC windows, KWT-1 98×40), so each stage
//! classifies the raw sample window through its own extractor — exactly
//! what the two device images would do on hardware.
//!
//! Decision identity is the correctness anchor: with
//! [`CascadeConfig::always_verify`] the verifier runs on every window,
//! and the crate's tests assert its verdicts are identical to running the
//! plain verifier engine alone — the cascade adds gating, never numerics.

use crate::{Engine, EngineError, Prediction, Result};

/// Gating policy of a [`CascadeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Detector class that means "wake word present".
    pub wake_class: usize,
    /// Detector probability of [`wake_class`](Self::wake_class) at or
    /// above which the verifier runs.
    pub wake_threshold: f32,
    /// Verifier class that confirms the detection.
    pub verify_class: usize,
    /// Run the verifier on every window regardless of the detector —
    /// the decision-identity test mode, and the "plain big model"
    /// reference point of the cascade bench.
    pub always_verify: bool,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            wake_class: 1,
            wake_threshold: 0.5,
            verify_class: 1,
            always_verify: false,
        }
    }
}

/// Outcome of one cascade window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CascadeDecision {
    /// Stage-1 result (always present — the detector is always on).
    pub detector: Prediction,
    /// Whether the detector fired (or [`CascadeConfig::always_verify`]).
    pub triggered: bool,
    /// Stage-2 result; `Some` iff [`triggered`](Self::triggered).
    pub verdict: Option<Prediction>,
    /// Final decision: the verifier ran and voted
    /// [`CascadeConfig::verify_class`].
    pub accepted: bool,
    /// Detector device cycles for this window (`None` on host backends).
    pub detector_cycles: Option<u64>,
    /// Verifier device cycles (`None` when not triggered or host-backed).
    pub verifier_cycles: Option<u64>,
}

/// Two [`Engine`]s in series: detector always on, verifier gated.
pub struct CascadeEngine {
    detector: Engine,
    verifier: Engine,
    config: CascadeConfig,
    verdict_scratch: Prediction,
}

impl CascadeEngine {
    /// Builds a cascade, validating the gate classes against each
    /// stage's output arity.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when a gate class is out of range
    /// or the threshold is not a finite probability.
    pub fn new(detector: Engine, verifier: Engine, config: CascadeConfig) -> Result<Self> {
        let dc = detector.config().num_classes;
        let vc = verifier.config().num_classes;
        if config.wake_class >= dc {
            return Err(EngineError::Config {
                why: format!(
                    "wake_class {} out of range for {dc}-class detector",
                    config.wake_class
                ),
            });
        }
        if config.verify_class >= vc {
            return Err(EngineError::Config {
                why: format!(
                    "verify_class {} out of range for {vc}-class verifier",
                    config.verify_class
                ),
            });
        }
        if !(config.wake_threshold.is_finite() && (0.0..=1.0).contains(&config.wake_threshold)) {
            return Err(EngineError::Config {
                why: format!(
                    "wake_threshold {} is not a probability",
                    config.wake_threshold
                ),
            });
        }
        Ok(CascadeEngine {
            detector,
            verifier,
            config,
            verdict_scratch: Prediction::default(),
        })
    }

    /// The gating policy.
    pub fn config(&self) -> CascadeConfig {
        self.config
    }

    /// The always-on stage.
    pub fn detector(&self) -> &Engine {
        &self.detector
    }

    /// The gated stage.
    pub fn verifier(&self) -> &Engine {
        &self.verifier
    }

    /// Mutable access to both stages (cycle budgets, recovery).
    pub fn stages_mut(&mut self) -> (&mut Engine, &mut Engine) {
        (&mut self.detector, &mut self.verifier)
    }

    /// Classifies one raw sample window through the cascade.
    ///
    /// The detector always runs; the verifier runs iff the detector's
    /// wake-class probability reaches the threshold (or
    /// [`CascadeConfig::always_verify`]). Each stage extracts its own
    /// MFCC view of `samples`.
    ///
    /// # Errors
    ///
    /// Propagates stage failures.
    pub fn classify(&mut self, samples: &[f32]) -> Result<CascadeDecision> {
        let mut out = CascadeDecision::default();
        self.classify_into(samples, &mut out)?;
        Ok(out)
    }

    /// [`classify`](Self::classify) into a reused decision (steady state
    /// allocates nothing beyond the stages' own arenas).
    ///
    /// # Errors
    ///
    /// Propagates stage failures.
    pub fn classify_into(&mut self, samples: &[f32], out: &mut CascadeDecision) -> Result<()> {
        self.detector.classify_into(samples, &mut out.detector)?;
        out.detector_cycles = self.detector.last_device_run().map(|r| r.cycles);
        let wake_p = out
            .detector
            .probs
            .get(self.config.wake_class)
            .copied()
            .unwrap_or(0.0);
        out.triggered = self.config.always_verify || wake_p >= self.config.wake_threshold;
        if out.triggered {
            self.verifier
                .classify_into(samples, &mut self.verdict_scratch)?;
            out.verifier_cycles = self.verifier.last_device_run().map(|r| r.cycles);
            out.accepted = self.verdict_scratch.class == self.config.verify_class;
            match &mut out.verdict {
                Some(v) => v.clone_from(&self.verdict_scratch),
                None => out.verdict = Some(self.verdict_scratch.clone()),
            }
        } else {
            out.verdict = None;
            out.verifier_cycles = None;
            out.accepted = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_audio::kwt_tiny_frontend;
    use kwt_model::{KwtConfig, KwtParams};

    fn tiny_engine(seed: u64) -> Engine {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), seed).unwrap();
        Engine::host_float(params, kwt_tiny_frontend().unwrap()).unwrap()
    }

    fn clip(seed: u64) -> Vec<f32> {
        (0..16_000)
            .map(|i| (i as f32 * 0.011 + seed as f32).sin() * 0.3)
            .collect()
    }

    #[test]
    fn always_verify_matches_plain_verifier() {
        // The cascade must add gating, never numerics: verdicts with the
        // verifier always on are bit-identical to the verifier alone.
        let mut cascade = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                always_verify: true,
                ..CascadeConfig::default()
            },
        )
        .unwrap();
        let mut plain = tiny_engine(2);
        for s in 0..6 {
            let c = clip(s);
            let d = cascade.classify(&c).unwrap();
            let p = plain.classify(&c).unwrap();
            assert!(d.triggered);
            let v = d.verdict.expect("always_verify ran the verifier");
            assert_eq!(v.class, p.class);
            let vb: Vec<u32> = v.logits.iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u32> = p.logits.iter().map(|x| x.to_bits()).collect();
            assert_eq!(vb, pb, "cascade verdict logits must be bit-identical");
            assert_eq!(d.accepted, p.class == 1);
        }
    }

    #[test]
    fn threshold_one_with_uncertain_detector_never_triggers() {
        let mut cascade = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                wake_threshold: 1.0,
                ..CascadeConfig::default()
            },
        )
        .unwrap();
        // A freshly initialised detector never reaches probability 1.0.
        let d = cascade.classify(&clip(3)).unwrap();
        assert!(!d.triggered);
        assert!(d.verdict.is_none());
        assert!(!d.accepted);
        assert!(d.verifier_cycles.is_none());
    }

    #[test]
    fn threshold_zero_always_triggers() {
        let mut cascade = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                wake_threshold: 0.0,
                ..CascadeConfig::default()
            },
        )
        .unwrap();
        let d = cascade.classify(&clip(4)).unwrap();
        assert!(d.triggered);
        assert!(d.verdict.is_some());
    }

    #[test]
    fn bad_configs_are_rejected() {
        let bad_wake = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                wake_class: 9,
                ..CascadeConfig::default()
            },
        );
        assert!(bad_wake.is_err());
        let bad_verify = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                verify_class: 7,
                ..CascadeConfig::default()
            },
        );
        assert!(bad_verify.is_err());
        let bad_thresh = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                wake_threshold: f32::NAN,
                ..CascadeConfig::default()
            },
        );
        assert!(bad_thresh.is_err());
    }

    #[test]
    fn decision_reuse_clears_stale_verdict() {
        let mut always = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                always_verify: true,
                ..CascadeConfig::default()
            },
        )
        .unwrap();
        let mut never = CascadeEngine::new(
            tiny_engine(1),
            tiny_engine(2),
            CascadeConfig {
                wake_threshold: 1.0,
                ..CascadeConfig::default()
            },
        )
        .unwrap();
        let mut d = CascadeDecision::default();
        always.classify_into(&clip(5), &mut d).unwrap();
        assert!(d.verdict.is_some());
        never.classify_into(&clip(5), &mut d).unwrap();
        assert!(d.verdict.is_none(), "stale verdict must be cleared");
    }
}
