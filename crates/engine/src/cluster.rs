//! The [`Rv32ClusterBackend`]: batched and streaming inference sharded
//! across the harts of a simulated RV32 cluster.
//!
//! One [`ClusterSession`] holds N harts against the banked shared
//! memory; the backend advertises [`Backend::batch_width`]` == N`, so
//! the engine shards every batch into waves of up to N clips — one clip
//! per hart mailbox, one [`ClusterSession::run_loaded`] per wave. The
//! hart mailboxes go through the same quantise/readback helpers as the
//! serial [`DeviceSession`](kwt_baremetal::DeviceSession), so wave
//! logits are **bit-identical** to the serial backend's, clip for clip;
//! the cluster only changes the *timing* ([`ClusterWave::soc_cycles`],
//! stall accounting).

use crate::backend::{Backend, BackendKind};
use crate::{EngineError, Result};
use kwt_baremetal::{ClusterSession, ClusterWave, InferenceImage, RecoveryReport};
use kwt_model::KwtConfig;
use kwt_rv32::{BankConfig, RunResult};
use kwt_tensor::Mat;

/// Simulated-cluster backend over a persistent [`ClusterSession`]:
/// N harts, each with a private clip mailbox, sharing the
/// bank-interleaved memory behind the round-robin arbiter.
///
/// Single-clip inference ([`Backend::infer_into`]) runs on hart 0 alone
/// — by the single-hart identity theorem (see `kwt_rv32::cluster`) that
/// is bit- and cycle-identical to the serial
/// [`Rv32SimBackend`](crate::Rv32SimBackend). Batches go through
/// [`Backend::infer_wave`] at the full hart count.
#[derive(Debug, Clone)]
pub struct Rv32ClusterBackend {
    session: ClusterSession,
    config: KwtConfig,
    last_run: Option<RunResult>,
    last_wave: Option<ClusterWave>,
}

impl Rv32ClusterBackend {
    /// Opens an `harts`-hart cluster session on a built inference image
    /// with the default bank geometry (eight word-interleaved
    /// single-cycle banks).
    ///
    /// # Errors
    ///
    /// Propagates [`InferenceImage::cluster_session`] errors.
    pub fn new(image: &InferenceImage, harts: usize) -> Result<Self> {
        Rv32ClusterBackend::with_banks(image, harts, BankConfig::default8())
    }

    /// [`new`](Self::new) with explicit bank geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`InferenceImage::cluster_session_with`] errors.
    pub fn with_banks(image: &InferenceImage, harts: usize, banks: BankConfig) -> Result<Self> {
        let session = image.cluster_session_with(harts, banks)?;
        let config = *session.config();
        Ok(Rv32ClusterBackend {
            session,
            config,
            last_run: None,
            last_wave: None,
        })
    }

    /// Number of harts (== [`Backend::batch_width`]).
    pub fn harts(&self) -> usize {
        self.session.num_harts()
    }

    /// Cumulative successful inferences across all harts.
    pub fn runs(&self) -> u64 {
        self.session.runs()
    }

    /// Timing accounting of the most recent wave: per-hart stats,
    /// bank-conflict stalls and the SoC finish time.
    pub fn last_wave(&self) -> Option<&ClusterWave> {
        self.last_wave.as_ref()
    }

    /// The underlying cluster session.
    pub fn session(&self) -> &ClusterSession {
        &self.session
    }

    /// The underlying cluster session, mutably — per-hart fault
    /// injection and histogram arming for robustness tests.
    pub fn session_mut(&mut self) -> &mut ClusterSession {
        &mut self.session
    }

    /// Runs one already-loaded wave and distributes the per-hart
    /// outcomes: logits for every completed hart, the first device
    /// fault as the propagated error.
    fn finish_wave(&mut self, n: usize, logits: &mut [Vec<f32>]) -> Result<()> {
        let wave = self.session.run_loaded(n);
        let mut first_err = None;
        for (h, r) in wave.results.iter().enumerate() {
            match r {
                Ok(rr) => {
                    if h == 0 {
                        self.last_run = Some(*rr);
                    }
                    self.session.read_logits(h, &mut logits[h]);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(EngineError::Device((*e).into()));
                    }
                }
            }
        }
        self.last_wave = Some(wave);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Backend for Rv32ClusterBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Rv32Cluster
    }

    fn config(&self) -> &KwtConfig {
        &self.config
    }

    fn infer_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()> {
        self.session.load_clip(0, mfcc)?;
        let mut slot = [std::mem::take(logits)];
        let r = self.finish_wave(1, &mut slot);
        *logits = std::mem::take(&mut slot[0]);
        r
    }

    fn input_exponent(&self) -> Option<i32> {
        self.session.input_exponent()
    }

    fn infer_prequantized_into(&mut self, input: &Mat<i8>, logits: &mut Vec<f32>) -> Result<()> {
        self.session.load_clip_prequantized(0, input)?;
        let mut slot = [std::mem::take(logits)];
        let r = self.finish_wave(1, &mut slot);
        *logits = std::mem::take(&mut slot[0]);
        r
    }

    fn batch_width(&self) -> usize {
        self.session.num_harts()
    }

    fn infer_wave(&mut self, mfccs: &[Mat<f32>], logits: &mut [Vec<f32>]) -> Result<()> {
        debug_assert!(mfccs.len() <= self.session.num_harts());
        for (h, m) in mfccs.iter().enumerate() {
            self.session.load_clip(h, m)?;
        }
        self.finish_wave(mfccs.len(), logits)
    }

    fn infer_prequantized_wave(
        &mut self,
        inputs: &[Mat<i8>],
        logits: &mut [Vec<f32>],
    ) -> Result<()> {
        debug_assert!(inputs.len() <= self.session.num_harts());
        for (h, m) in inputs.iter().enumerate() {
            self.session.load_clip_prequantized(h, m)?;
        }
        self.finish_wave(inputs.len(), logits)
    }

    fn last_device_run(&self) -> Option<RunResult> {
        self.last_run
    }

    fn wave_device_cycles(&self) -> Option<u64> {
        self.last_wave.as_ref().map(|w| w.soc_cycles)
    }

    fn clone_boxed(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(self.clone()))
    }

    fn recover(&mut self) -> Option<RecoveryReport> {
        // every hart gets the full reset-verify-repair pass; the report
        // sums the damage found across the cluster
        let mut total = RecoveryReport::default();
        for h in 0..self.session.num_harts() {
            let r = self.session.recover(h);
            total.banks_checked += r.banks_checked;
            total.banks_dirty += r.banks_dirty;
            total.bytes_restored += r.bytes_restored;
            total.luts_restored |= r.luts_restored;
            total.faults_cleared += r.faults_cleared;
        }
        Some(total)
    }

    fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.session.set_cycle_budget(budget);
    }

    fn inject_faults(&mut self, plan: kwt_rv32::FaultPlan) -> bool {
        // the chaos harness targets one hart; per-hart plans are
        // available through `session_mut().inject_faults(hart, plan)`
        self.session.inject_faults(0, plan);
        true
    }
}
