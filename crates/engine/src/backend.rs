//! The [`Backend`] trait and its three implementations.
//!
//! A backend maps one MFCC spectrogram to class logits. Each owns every
//! resource repeated inference needs — packed weights, activation scratch
//! arenas, or a live simulator machine — so `infer_into` is allocation-free
//! for the host backends and machine-reuse-warm for the simulated one.

use crate::Result;
use kwt_baremetal::{DeviceSession, InferenceImage, KernelIsa};
use kwt_model::{KwtConfig, KwtParams, PackedKwtWeights, Scratch};
use kwt_quant::{QuantScratch, QuantizedKwt};
use kwt_rv32::RunResult;
use kwt_tensor::qops::QuantStats;
use kwt_tensor::Mat;

/// Which inference flavour a backend implements (the paper's Table IX
/// rows, behind one API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Host-side float model (`kwt_model::forward_into`).
    HostFloat,
    /// Host-side INT8/INT16 quantised model
    /// (`QuantizedKwt::forward_detailed_into`).
    HostQuant,
    /// Bare-metal image on the RV32IMC simulator, over a persistent
    /// [`DeviceSession`].
    Rv32Sim,
    /// Bare-metal image on an N-hart simulated cluster with banked
    /// shared memory, over a persistent
    /// [`ClusterSession`](kwt_baremetal::ClusterSession) — one clip per
    /// hart per wave.
    Rv32Cluster,
}

impl BackendKind {
    /// Stable lowercase name (used by benchmark artefacts).
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::HostFloat => "host_float",
            BackendKind::HostQuant => "host_quant",
            BackendKind::Rv32Sim => "rv32_sim",
            BackendKind::Rv32Cluster => "rv32_cluster",
        }
    }
}

/// One inference flavour behind the uniform [`Engine`](crate::Engine) API.
pub trait Backend: Send {
    /// Which flavour this is.
    fn kind(&self) -> BackendKind;

    /// The model configuration (input geometry, class count).
    fn config(&self) -> &KwtConfig;

    /// Runs one inference over a `T x F` MFCC spectrogram, writing float
    /// logits into `logits` (cleared first; capacity reused).
    ///
    /// # Errors
    ///
    /// Propagates the subsystem's shape/kernel errors.
    fn infer_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()>;

    /// The power-of-two input exponent of a backend that consumes
    /// pre-quantised `i8` features directly — `Some` only for A8
    /// [`BackendKind::Rv32Sim`] sessions. When set, the engine extracts
    /// features straight to `i8` at this exponent
    /// (`MfccExtractor::extract_padded_a8_into`) and feeds them through
    /// [`infer_prequantized_into`](Self::infer_prequantized_into),
    /// skipping the separate host quantisation pass — with logits
    /// **bit-identical** to the float [`infer_into`](Self::infer_into)
    /// path (both quantise the same float features by the same rule).
    fn input_exponent(&self) -> Option<i32> {
        None
    }

    /// Runs one inference over features already quantised to `i8` at
    /// [`input_exponent`](Self::input_exponent).
    ///
    /// # Errors
    ///
    /// Returns a configuration error unless the backend advertises an
    /// input exponent.
    fn infer_prequantized_into(&mut self, input: &Mat<i8>, logits: &mut Vec<f32>) -> Result<()> {
        let _ = (input, logits);
        Err(crate::EngineError::Config {
            why: format!(
                "the {} backend does not accept pre-quantised input",
                self.kind().as_str()
            ),
        })
    }

    /// How many clips this backend can infer concurrently in one wave —
    /// `1` for every serial backend, the hart count for
    /// [`BackendKind::Rv32Cluster`]. The engine shards batches into
    /// waves of this width.
    fn batch_width(&self) -> usize {
        1
    }

    /// Runs up to [`batch_width`](Self::batch_width) inferences as one
    /// wave: clip `i` of `mfccs` produces `logits[i]`. The default runs
    /// the clips serially through [`infer_into`](Self::infer_into), so
    /// a wave is always *functionally* just a batch — a concurrent
    /// backend may only change the timing.
    ///
    /// # Errors
    ///
    /// Propagates the first clip failure.
    fn infer_wave(&mut self, mfccs: &[Mat<f32>], logits: &mut [Vec<f32>]) -> Result<()> {
        for (m, l) in mfccs.iter().zip(logits.iter_mut()) {
            self.infer_into(m, l)?;
        }
        Ok(())
    }

    /// [`infer_wave`](Self::infer_wave) over features already quantised
    /// to `i8` at [`input_exponent`](Self::input_exponent).
    ///
    /// # Errors
    ///
    /// Propagates the first clip failure; a configuration error unless
    /// the backend advertises an input exponent.
    fn infer_prequantized_wave(
        &mut self,
        inputs: &[Mat<i8>],
        logits: &mut [Vec<f32>],
    ) -> Result<()> {
        for (m, l) in inputs.iter().zip(logits.iter_mut()) {
            self.infer_prequantized_into(m, l)?;
        }
        Ok(())
    }

    /// Simulator statistics of the most recent inference — `Some` only for
    /// [`BackendKind::Rv32Sim`] and [`BackendKind::Rv32Cluster`].
    fn last_device_run(&self) -> Option<RunResult> {
        None
    }

    /// Simulated device cycles consumed by the most recent wave (or
    /// single inference) — the SoC finish time for
    /// [`BackendKind::Rv32Cluster`], the run's cycle count for
    /// [`BackendKind::Rv32Sim`], `None` for host backends, whose latency
    /// the simulator does not model. The serving layer sums this into
    /// its deterministic detections-per-cycle and queueing-latency
    /// accounting.
    fn wave_device_cycles(&self) -> Option<u64> {
        None
    }

    /// Quantisation statistics of the most recent inference — `Some` only
    /// for [`BackendKind::HostQuant`].
    fn last_quant_stats(&self) -> Option<QuantStats> {
        None
    }

    /// Clones this backend into an independent instance (own scratch
    /// arenas / own simulator machine), or `None` if the backend cannot
    /// be replicated. Used by the engine's parallel batch path to give
    /// each worker thread its own [`DeviceSession`]; every built-in
    /// backend supports it.
    fn clone_boxed(&self) -> Option<Box<dyn Backend>> {
        None
    }

    /// Re-arms the backend after a device fault, re-validating image
    /// integrity against the build-time bank checksums and repairing
    /// dirty banks ([`DeviceSession::recover`]). `None` for backends
    /// with nothing to recover (the host models are stateless).
    fn recover(&mut self) -> Option<kwt_baremetal::RecoveryReport> {
        None
    }

    /// Arms (or with `None` disarms) a per-inference simulated-cycle
    /// budget: a run exceeding it stops with a watchdog trap. No-op for
    /// host backends, whose latency the simulator does not model.
    fn set_cycle_budget(&mut self, budget: Option<u64>) {
        let _ = budget;
    }

    /// Arms a deterministic fault plan for the next inference(s) —
    /// returns `false` if this backend has no fault-injection surface
    /// (host backends). The chaos-harness entry point.
    fn inject_faults(&mut self, plan: kwt_rv32::FaultPlan) -> bool {
        let _ = plan;
        false
    }

    /// Resilience statistics — `Some` only for the
    /// [`ResilientBackend`](crate::ResilientBackend) wrapper.
    fn fault_stats(&self) -> Option<crate::FaultStats> {
        None
    }

    /// Current health of the primary backend — `Some` only for the
    /// [`ResilientBackend`](crate::ResilientBackend) wrapper.
    fn health(&self) -> Option<crate::BackendHealth> {
        None
    }
}

/// Float host backend: pre-packed weights + reusable activation arena.
#[derive(Debug, Clone)]
pub struct HostFloatBackend {
    params: KwtParams,
    packed: PackedKwtWeights,
    scratch: Scratch,
}

impl HostFloatBackend {
    /// Packs the weights once and pre-allocates the scratch arena.
    pub fn new(params: KwtParams) -> Self {
        let packed = params.pack_weights();
        let scratch = Scratch::new(&params.config);
        HostFloatBackend {
            params,
            packed,
            scratch,
        }
    }

    /// The wrapped parameters.
    pub fn params(&self) -> &KwtParams {
        &self.params
    }
}

impl Backend for HostFloatBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::HostFloat
    }

    fn config(&self) -> &KwtConfig {
        &self.params.config
    }

    fn infer_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()> {
        kwt_model::forward_into(&self.params, &self.packed, mfcc, &mut self.scratch, logits)?;
        Ok(())
    }

    fn clone_boxed(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(self.clone()))
    }
}

/// Quantised host backend: the model's own packed INT8 weights + reusable
/// integer activation arena.
#[derive(Debug, Clone)]
pub struct HostQuantBackend {
    qm: QuantizedKwt,
    scratch: QuantScratch,
    last_stats: Option<QuantStats>,
}

impl HostQuantBackend {
    /// Wraps a quantised model and pre-allocates its scratch arena.
    pub fn new(qm: QuantizedKwt) -> Self {
        let scratch = QuantScratch::new(&qm.config);
        HostQuantBackend {
            qm,
            scratch,
            last_stats: None,
        }
    }

    /// The wrapped quantised model.
    pub fn model(&self) -> &QuantizedKwt {
        &self.qm
    }
}

impl Backend for HostQuantBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::HostQuant
    }

    fn config(&self) -> &KwtConfig {
        &self.qm.config
    }

    fn infer_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()> {
        let stats = self
            .qm
            .forward_detailed_into(mfcc, &mut self.scratch, logits)?;
        self.last_stats = Some(stats);
        Ok(())
    }

    fn last_quant_stats(&self) -> Option<QuantStats> {
        self.last_stats
    }

    fn clone_boxed(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(self.clone()))
    }
}

/// Simulated-device backend over a persistent [`DeviceSession`]: the
/// machine is loaded once and re-armed between inferences, keeping the
/// weights in simulated RAM and the pre-decode execution cache warm —
/// unlike the one-shot [`InferenceImage::run`], which rebuilds the machine
/// every call.
#[derive(Debug, Clone)]
pub struct Rv32SimBackend {
    session: DeviceSession,
    config: KwtConfig,
    last_run: Option<RunResult>,
}

impl Rv32SimBackend {
    /// Opens a persistent session on a built inference image.
    ///
    /// # Errors
    ///
    /// Propagates [`InferenceImage::session`] errors.
    pub fn new(image: &InferenceImage) -> Result<Self> {
        let session = image.session()?;
        let config = *session.config();
        Ok(Rv32SimBackend {
            session,
            config,
            last_run: None,
        })
    }

    /// Cumulative run count of the underlying session.
    pub fn runs(&self) -> u64 {
        self.session.runs()
    }

    /// The kernel ISA the loaded image was generated for (the scalar
    /// oracle or the Xkwtdot packed extension).
    pub fn isa(&self) -> KernelIsa {
        self.session.isa()
    }

    /// The image flavour the session runs — the i16 quantised pipelines
    /// or the fully-INT8 [`kwt_baremetal::Flavor::A8`] mode.
    pub fn flavor(&self) -> kwt_baremetal::Flavor {
        self.session.flavor()
    }

    /// The underlying session, for profiler access.
    pub fn session(&self) -> &DeviceSession {
        &self.session
    }

    /// The underlying session, mutably — fault injection and cycle
    /// budgets for robustness tests and the chaos harness.
    pub fn session_mut(&mut self) -> &mut DeviceSession {
        &mut self.session
    }
}

impl Backend for Rv32SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Rv32Sim
    }

    fn config(&self) -> &KwtConfig {
        &self.config
    }

    fn infer_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()> {
        let run = self.session.run_into(mfcc, logits)?;
        self.last_run = Some(run);
        Ok(())
    }

    fn input_exponent(&self) -> Option<i32> {
        self.session.input_exponent()
    }

    fn infer_prequantized_into(&mut self, input: &Mat<i8>, logits: &mut Vec<f32>) -> Result<()> {
        let run = self.session.run_prequantized_into(input, logits)?;
        self.last_run = Some(run);
        Ok(())
    }

    fn last_device_run(&self) -> Option<RunResult> {
        self.last_run
    }

    fn wave_device_cycles(&self) -> Option<u64> {
        self.last_run.map(|r| r.cycles)
    }

    fn clone_boxed(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(self.clone()))
    }

    fn recover(&mut self) -> Option<kwt_baremetal::RecoveryReport> {
        Some(self.session.recover())
    }

    fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.session.set_cycle_budget(budget);
    }

    fn inject_faults(&mut self, plan: kwt_rv32::FaultPlan) -> bool {
        self.session.inject_faults(plan);
        true
    }
}
