//! Graceful degradation: [`ResilientBackend`] wraps a primary
//! [`Backend`] with bounded retry-with-recovery and an ordered failover
//! ladder, so device faults surface as slower-but-correct answers
//! instead of errors.
//!
//! # The degradation ladder
//!
//! The paper's deployment story is a simulated Ibex device; this module
//! asks what happens when that device misbehaves (a bit flip in a
//! weight bank, a truncated LUT ROM, a runaway kernel). The answer is a
//! ladder:
//!
//! 1. **retry**: a device fault triggers [`Backend::recover`] — the
//!    session checksums every static bank against its build-time digest,
//!    rewrites only dirty ones, and re-runs. Up to
//!    [`ResilientConfig::max_recoveries`] times per request.
//! 2. **failover**: if the primary keeps faulting, the request is
//!    served by the first healthy fallback (typically
//!    `Rv32Sim → HostQuant → HostFloat`). Failover logits are
//!    **identical** to running the fallback directly: the wrapper
//!    always hands backends the same float MFCC matrix (it never
//!    advertises an input exponent, so the engine never pre-quantises
//!    features for one backend that another would then have to accept).
//! 3. **quarantine**: after [`ResilientConfig::quarantine_after`]
//!    consecutive failed requests the primary is no longer tried at all
//!    until [`ResilientBackend::reset_health`].
//!
//! Non-device errors (shape mismatches, configuration) are *not*
//! retried or failed over — they are caller bugs, not device faults,
//! and identical on every backend.
//!
//! Every decision is counted in [`FaultStats`], exposed through
//! [`Engine::fault_stats`](crate::Engine::fault_stats).

use crate::backend::{Backend, BackendKind};
use crate::{EngineError, Result};
use kwt_baremetal::BuildError;
use kwt_model::KwtConfig;
use kwt_rv32::{RunResult, Trap};
use kwt_tensor::Mat;

/// Health of the primary backend inside a [`ResilientBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendHealth {
    /// Last request was served by the primary without any fault.
    #[default]
    Healthy,
    /// The primary needed recovery (or the last request failed over),
    /// but it is still being tried.
    Degraded,
    /// The primary is no longer tried; every request goes straight to
    /// the fallbacks until [`ResilientBackend::reset_health`].
    Quarantined,
}

/// Counters of every resilience decision a [`ResilientBackend`] made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FaultStats {
    /// Inference requests served (or attempted).
    pub requests: u64,
    /// Device traps observed from the primary (including watchdog).
    pub traps_seen: u64,
    /// Watchdog budget expiries among those traps.
    pub budget_kills: u64,
    /// [`Backend::recover`] passes run on the primary.
    pub recoveries: u64,
    /// Requests ultimately served by a fallback backend.
    pub failovers: u64,
}

/// Policy knobs for a [`ResilientBackend`]. Construct with struct
/// update syntax over [`Default`] to stay source-compatible as knobs
/// are added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientConfig {
    /// Recovery-and-retry attempts on the primary per request before
    /// failing over (0 = fail over on the first fault).
    pub max_recoveries: u32,
    /// Per-inference simulated-cycle budget armed on the primary (and
    /// on simulator fallbacks); `None` leaves watchdogs disarmed.
    pub cycle_budget: Option<u64>,
    /// Consecutive failed requests after which the primary is
    /// quarantined.
    pub quarantine_after: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            max_recoveries: 1,
            cycle_budget: None,
            quarantine_after: 3,
        }
    }
}

/// A [`Backend`] wrapper implementing the retry → failover → quarantine
/// ladder described at the top of this module.
///
/// [`kind`](Backend::kind) and [`config`](Backend::config) report the
/// *primary's* — the wrapper is a deployment policy around one logical
/// backend, not a fourth flavour.
pub struct ResilientBackend {
    primary: Box<dyn Backend>,
    fallbacks: Vec<Box<dyn Backend>>,
    rcfg: ResilientConfig,
    stats: FaultStats,
    health: BackendHealth,
    consecutive_failures: u32,
    /// Which backend served the last successful request: `None` = the
    /// primary, `Some(i)` = `fallbacks[i]`.
    served_by: Option<usize>,
}

impl ResilientBackend {
    /// Wraps `primary` with an ordered fallback ladder.
    ///
    /// Arms [`ResilientConfig::cycle_budget`] on every wrapped backend
    /// (a no-op for host backends).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if any fallback's model
    /// configuration differs from the primary's — a failover must
    /// answer the *same* classification problem.
    pub fn new(
        mut primary: Box<dyn Backend>,
        mut fallbacks: Vec<Box<dyn Backend>>,
        rcfg: ResilientConfig,
    ) -> Result<Self> {
        let c = *primary.config();
        for (i, fb) in fallbacks.iter().enumerate() {
            if *fb.config() != c {
                return Err(EngineError::Config {
                    why: format!(
                        "fallback {} ({}) disagrees with the primary ({}) about the model \
                         configuration",
                        i,
                        fb.kind().as_str(),
                        primary.kind().as_str()
                    ),
                });
            }
        }
        if rcfg.cycle_budget.is_some() {
            primary.set_cycle_budget(rcfg.cycle_budget);
            for fb in &mut fallbacks {
                fb.set_cycle_budget(rcfg.cycle_budget);
            }
        }
        Ok(ResilientBackend {
            primary,
            fallbacks,
            rcfg,
            stats: FaultStats::default(),
            health: BackendHealth::default(),
            consecutive_failures: 0,
            served_by: None,
        })
    }

    /// The resilience policy in effect.
    pub fn resilient_config(&self) -> &ResilientConfig {
        &self.rcfg
    }

    /// Counters of every resilience decision so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Current health of the primary.
    pub fn backend_health(&self) -> BackendHealth {
        self.health
    }

    /// Which backend flavour served the last successful request.
    pub fn last_served_by(&self) -> BackendKind {
        match self.served_by {
            None => self.primary.kind(),
            Some(i) => self.fallbacks[i].kind(),
        }
    }

    /// Un-quarantines the primary and zeroes the failure streak (the
    /// operator's "I replaced the board" lever). Statistics are kept.
    pub fn reset_health(&mut self) {
        self.health = BackendHealth::Healthy;
        self.consecutive_failures = 0;
    }

    /// Whether `e` is a device-side fault — the only class the ladder
    /// retries and fails over. Everything else (shapes, configuration)
    /// is a caller bug that would fail identically on every backend.
    fn is_device_fault(e: &EngineError) -> bool {
        matches!(
            e,
            EngineError::Device(BuildError::Device(_)) | EngineError::Device(BuildError::Trap(_))
        )
    }

    fn note_trap(&mut self, e: &EngineError) {
        self.stats.traps_seen += 1;
        if let EngineError::Device(BuildError::Device(d)) = e {
            if matches!(d.trap, Trap::WatchdogExpired { .. }) {
                self.stats.budget_kills += 1;
            }
        }
    }

    /// The ladder itself, shared by the float and (rejected) prequantised
    /// entry points.
    fn serve(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()> {
        self.stats.requests += 1;
        let mut last_err: Option<EngineError> = None;
        if self.health != BackendHealth::Quarantined {
            let mut recoveries_left = self.rcfg.max_recoveries;
            loop {
                match self.primary.infer_into(mfcc, logits) {
                    Ok(()) => {
                        self.consecutive_failures = 0;
                        // a request that needed recovery leaves the
                        // primary Degraded; a clean one restores Healthy
                        if recoveries_left == self.rcfg.max_recoveries {
                            self.health = BackendHealth::Healthy;
                        } else {
                            self.health = BackendHealth::Degraded;
                        }
                        self.served_by = None;
                        return Ok(());
                    }
                    Err(e) if Self::is_device_fault(&e) => {
                        self.note_trap(&e);
                        last_err = Some(e);
                        if recoveries_left == 0 {
                            break;
                        }
                        recoveries_left -= 1;
                        self.primary.recover();
                        self.stats.recoveries += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
            self.consecutive_failures += 1;
            self.health = if self.consecutive_failures >= self.rcfg.quarantine_after {
                BackendHealth::Quarantined
            } else {
                BackendHealth::Degraded
            };
        }
        // failover ladder: first fallback that answers wins
        for i in 0..self.fallbacks.len() {
            match self.fallbacks[i].infer_into(mfcc, logits) {
                Ok(()) => {
                    self.stats.failovers += 1;
                    self.served_by = Some(i);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| EngineError::Config {
            why: "resilient backend has a quarantined primary and no fallbacks".into(),
        }))
    }
}

impl Backend for ResilientBackend {
    fn kind(&self) -> BackendKind {
        self.primary.kind()
    }

    fn config(&self) -> &KwtConfig {
        self.primary.config()
    }

    fn infer_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<()> {
        self.serve(mfcc, logits)
    }

    // Deliberately *not* forwarding the primary's input exponent: the
    // wrapper always takes float MFCCs so a failed-over request hands
    // the fallback exactly the input it would get when run directly —
    // that is what makes failover logits provably identical.

    fn last_device_run(&self) -> Option<RunResult> {
        match self.served_by {
            None => self.primary.last_device_run(),
            Some(i) => self.fallbacks[i].last_device_run(),
        }
    }

    fn last_quant_stats(&self) -> Option<kwt_tensor::qops::QuantStats> {
        match self.served_by {
            None => self.primary.last_quant_stats(),
            Some(i) => self.fallbacks[i].last_quant_stats(),
        }
    }

    fn clone_boxed(&self) -> Option<Box<dyn Backend>> {
        let primary = self.primary.clone_boxed()?;
        let mut fallbacks = Vec::with_capacity(self.fallbacks.len());
        for fb in &self.fallbacks {
            fallbacks.push(fb.clone_boxed()?);
        }
        Some(Box::new(ResilientBackend {
            primary,
            fallbacks,
            rcfg: self.rcfg,
            stats: self.stats,
            health: self.health,
            consecutive_failures: self.consecutive_failures,
            served_by: None,
        }))
    }

    fn recover(&mut self) -> Option<kwt_baremetal::RecoveryReport> {
        self.primary.recover()
    }

    fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.primary.set_cycle_budget(budget);
        for fb in &mut self.fallbacks {
            fb.set_cycle_budget(budget);
        }
    }

    fn inject_faults(&mut self, plan: kwt_rv32::FaultPlan) -> bool {
        self.primary.inject_faults(plan)
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(self.stats)
    }

    fn health(&self) -> Option<BackendHealth> {
        Some(self.health)
    }
}

impl std::fmt::Debug for ResilientBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientBackend")
            .field("primary", &self.primary.kind())
            .field(
                "fallbacks",
                &self.fallbacks.iter().map(|b| b.kind()).collect::<Vec<_>>(),
            )
            .field("health", &self.health)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
