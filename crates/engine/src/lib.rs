//! # kwt-engine
//!
//! The unified inference engine: one servable runtime over every
//! inference flavour this reproduction implements. Where the lower crates
//! expose one-shot, allocation-heavy per-clip calls
//! (`MfccExtractor::extract`, `kwt_model::forward`,
//! `QuantizedKwt::forward`, `InferenceImage::run`), the engine owns all
//! per-call state — packed weights, activation scratch arenas, MFCC work
//! buffers, a persistent simulator machine — and reuses it across calls.
//!
//! # Backend matrix
//!
//! | [`BackendKind`] | Implementation                                   | Paper row (Table IX)    |
//! |-----------------|--------------------------------------------------|-------------------------|
//! | `HostFloat`     | `kwt_model::forward_into` + [`kwt_model::Scratch`] | KWT-Tiny (float)      |
//! | `HostQuant`     | `QuantizedKwt::forward_detailed_into` + [`kwt_quant::QuantScratch`] | KWT-Tiny-Q |
//! | `Rv32Sim`       | `kwt_baremetal::DeviceSession` (persistent machine, warm decode cache) | any flavour on the simulated Ibex |
//! | `Rv32Cluster`   | `kwt_baremetal::ClusterSession` (N harts, banked shared memory, batches sharded one clip per hart per wave) | any flavour, N cores |
//!
//! All of them sit behind [`Engine::classify`] / [`Engine::classify_batch`]
//! and produce logits bit-identical to their one-shot counterparts (the
//! equivalence tests prove it). The `Rv32Sim` backend runs whichever
//! image flavour it is given — including the fully-INT8
//! `kwt_baremetal::Flavor::A8` pipeline ([`Rv32SimBackend::flavor`]).
//!
//! # Parallel batches
//!
//! [`Engine::classify_batch_parallel`] shards a batch across host
//! threads: every worker owns an independent clone of the backend (for
//! the simulator, a whole `DeviceSession` — machine, RAM and decode
//! cache) and writes a disjoint output range, so results are
//! deterministic, ordered, and bit-identical to the serial path at any
//! thread count.
//!
//! # Scratch lifecycle
//!
//! Arenas are allocated once at engine construction and resized in place
//! thereafter; a fresh arena and a reused one are indistinguishable
//! (buffers carry no state between calls). Consequently the host
//! backends' `classify_into` steady state performs **zero heap
//! allocation** — `tests/alloc_free.rs` wraps the global allocator in a
//! counter and asserts it.
//!
//! # Fault tolerance
//!
//! [`ResilientBackend`] wraps any backend in the degradation ladder:
//! device faults (structured [`kwt_baremetal::DeviceError`]s, including
//! cycle-watchdog kills) trigger bounded recovery-and-retry
//! ([`Backend::recover`] re-validates the image against build-time bank
//! checksums and repairs only dirty banks), then ordered failover —
//! typically `Rv32Sim → HostQuant → HostFloat` — and finally quarantine.
//! Failover answers are bit-identical to running the fallback directly,
//! every decision is counted in [`FaultStats`]
//! ([`Engine::fault_stats`]), and deterministic fault injection is
//! available end to end through [`Backend::inject_faults`]. See the
//! [`resilient`](ResilientBackend) module docs for the ladder's exact
//! semantics.
//!
//! # Streaming semantics
//!
//! [`StreamingKws`] spots keywords on a continuous stream: a bounded
//! sample buffer feeds incremental, hop-aligned MFCC extraction
//! (bit-identical to batch extraction — same per-frame kernel), frames
//! slide through a `T x F` model window, and the window is classified
//! every [`StreamingConfig::stride_frames`] frames with majority-vote
//! smoothing over the last [`StreamingConfig::vote_window`] raw
//! decisions. After exactly one nominal clip, the streamed window equals
//! the batch spectrogram bit-for-bit, so streamed and one-shot
//! classifications agree.
//!
//! # Wake-word cascade
//!
//! [`CascadeEngine`] chains two engines with independent front ends: an
//! always-on KWT-Tiny detector classifies every window, and only when
//! its wake-class probability crosses [`CascadeConfig::wake_threshold`]
//! does
//! the KWT-1 verifier run. With [`CascadeConfig::always_verify`] the
//! cascade is provably decision-identical to the plain verifier — the
//! gating changes economics (`paper bench-cascade`), never numerics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cascade;
mod cluster;
#[allow(clippy::module_inception)]
mod engine;
mod error;
mod resilient;
mod streaming;

pub use backend::{Backend, BackendKind, HostFloatBackend, HostQuantBackend, Rv32SimBackend};
pub use cascade::{CascadeConfig, CascadeDecision, CascadeEngine};
pub use cluster::Rv32ClusterBackend;
pub use engine::{Engine, Prediction};
pub use error::EngineError;
pub use resilient::{BackendHealth, FaultStats, ResilientBackend, ResilientConfig};
pub use streaming::{majority_vote, StreamDecision, StreamingConfig, StreamingKws};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
