//! The [`Engine`]: MFCC front end + one [`Backend`] behind a uniform
//! `classify` API, with a zero-allocation steady state.

use crate::backend::{Backend, BackendKind, HostFloatBackend, HostQuantBackend, Rv32SimBackend};
use crate::cluster::Rv32ClusterBackend;
use crate::{EngineError, Result};
use kwt_audio::{MfccExtractor, MfccScratch};
use kwt_baremetal::InferenceImage;
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::QuantizedKwt;
use kwt_rv32::RunResult;
use kwt_tensor::Mat;

/// One classification result.
///
/// Holds owned vectors so an instance can be reused across
/// [`Engine::classify_into`] calls without reallocating — the engine
/// clears and refills them in place.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Prediction {
    /// Arg-max class index.
    pub class: usize,
    /// Softmax probability of [`class`](Self::class).
    pub score: f32,
    /// Raw class logits.
    pub logits: Vec<f32>,
    /// Softmax probabilities (same order as `logits`).
    pub probs: Vec<f32>,
}

/// The unified inference engine: audio in, [`Prediction`] out, over any
/// [`Backend`].
///
/// ```
/// use kwt_engine::Engine;
/// use kwt_model::{KwtConfig, KwtParams};
///
/// # fn main() -> Result<(), kwt_engine::EngineError> {
/// let params = KwtParams::init(KwtConfig::kwt_tiny(), 7).unwrap();
/// let mut engine = Engine::host_float(params, kwt_audio::kwt_tiny_frontend().unwrap())?;
/// let clip = vec![0.1f32; 16_000]; // 1 s at 16 kHz
/// let pred = engine.classify(&clip)?;
/// assert!(pred.class < 2);
/// # Ok(())
/// # }
/// ```
///
/// # Scratch lifecycle
///
/// Construction allocates everything once: the backend's packed weights
/// and activation arena, the MFCC work buffers, and the logits vector.
/// `classify_into` then reuses all of them, so the host steady state
/// performs **no heap allocation** (asserted by the engine's
/// allocation-counting test). `classify` is the convenience form that
/// allocates one fresh [`Prediction`] per call.
pub struct Engine {
    frontend: MfccExtractor,
    backend: Box<dyn Backend>,
    mfcc: Mat<f32>,
    /// `i8` feature staging for backends that consume pre-quantised
    /// input (A8 device sessions — see [`Backend::input_exponent`]).
    mfcc_q: Mat<i8>,
    scratch: MfccScratch,
    logits: Vec<f32>,
    /// Per-slot logits staging reused by every wave-sharded entry point
    /// ([`classify_batch_into`](Self::classify_batch_into) on wide
    /// backends, [`classify_window_wave_into`](Self::classify_window_wave_into)).
    wave_logits: Vec<Vec<f32>>,
}

impl Engine {
    /// Wraps an arbitrary backend, validating that the front end's frame
    /// geometry matches the model's `[T, F]` input.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a geometry mismatch.
    pub fn new(frontend: MfccExtractor, backend: Box<dyn Backend>) -> Result<Self> {
        let c = *backend.config();
        if frontend.frames_per_clip() != c.input_time || frontend.config().n_mfcc != c.input_freq {
            return Err(EngineError::Config {
                why: format!(
                    "front end produces {} frames x {} coefficients but the {} backend \
                     expects {} x {}",
                    frontend.frames_per_clip(),
                    frontend.config().n_mfcc,
                    backend.kind().as_str(),
                    c.input_time,
                    c.input_freq
                ),
            });
        }
        Ok(Engine {
            mfcc: Mat::zeros(c.input_time, c.input_freq),
            mfcc_q: Mat::zeros(c.input_time, c.input_freq),
            frontend,
            backend,
            scratch: MfccScratch::new(),
            logits: Vec::with_capacity(c.num_classes),
            wave_logits: Vec::new(),
        })
    }

    /// Float host engine over freshly packed weights.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a geometry mismatch.
    pub fn host_float(params: KwtParams, frontend: MfccExtractor) -> Result<Self> {
        Engine::new(frontend, Box::new(HostFloatBackend::new(params)))
    }

    /// Quantised host engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a geometry mismatch.
    pub fn host_quant(qm: QuantizedKwt, frontend: MfccExtractor) -> Result<Self> {
        Engine::new(frontend, Box::new(HostQuantBackend::new(qm)))
    }

    /// Simulated-device engine over a persistent machine session.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a geometry mismatch, or a
    /// propagated device error if the image does not fit the platform.
    pub fn rv32_sim(image: &InferenceImage, frontend: MfccExtractor) -> Result<Self> {
        Engine::new(frontend, Box::new(Rv32SimBackend::new(image)?))
    }

    /// Simulated-cluster engine: `harts` cores against the banked
    /// shared memory, batches sharded one clip per hart per wave
    /// ([`Backend::batch_width`]). Logits are bit-identical to
    /// [`rv32_sim`](Self::rv32_sim) for every clip; only the simulated
    /// timing (SoC cycles, bank-conflict stalls) differs.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a geometry mismatch, or a
    /// propagated device error if the image does not fit the platform.
    pub fn rv32_cluster(
        image: &InferenceImage,
        frontend: MfccExtractor,
        harts: usize,
    ) -> Result<Self> {
        Engine::new(frontend, Box::new(Rv32ClusterBackend::new(image, harts)?))
    }

    /// Engine over a [`ResilientBackend`](crate::ResilientBackend):
    /// `primary` with bounded retry-with-recovery and an ordered
    /// failover ladder (typically `Rv32Sim → HostQuant → HostFloat`).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a geometry mismatch or if a
    /// fallback's model configuration differs from the primary's.
    pub fn resilient(
        primary: Box<dyn Backend>,
        fallbacks: Vec<Box<dyn Backend>>,
        rcfg: crate::ResilientConfig,
        frontend: MfccExtractor,
    ) -> Result<Self> {
        Engine::new(
            frontend,
            Box::new(crate::ResilientBackend::new(primary, fallbacks, rcfg)?),
        )
    }

    /// Which backend flavour this engine runs.
    pub fn kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The model configuration.
    pub fn config(&self) -> &KwtConfig {
        self.backend.config()
    }

    /// The MFCC front end.
    pub fn frontend(&self) -> &MfccExtractor {
        &self.frontend
    }

    /// Simulator statistics of the most recent inference
    /// ([`BackendKind::Rv32Sim`] only).
    pub fn last_device_run(&self) -> Option<RunResult> {
        self.backend.last_device_run()
    }

    /// Simulated device cycles of the most recent wave — the SoC finish
    /// time for [`BackendKind::Rv32Cluster`], the run's cycles for
    /// [`BackendKind::Rv32Sim`], `None` on host backends. The serving
    /// layer sums this per wave for deterministic throughput and
    /// queueing-latency accounting.
    pub fn last_wave_device_cycles(&self) -> Option<u64> {
        self.backend.wave_device_cycles()
    }

    /// Clips the backend can run concurrently in one wave (harts for the
    /// simulated cluster, 1 everywhere else) — the natural chunk size for
    /// [`classify_window_wave_into`](Self::classify_window_wave_into).
    pub fn wave_width(&self) -> usize {
        self.backend.batch_width().max(1)
    }

    /// Quantisation statistics of the most recent inference
    /// ([`BackendKind::HostQuant`] only).
    pub fn last_quant_stats(&self) -> Option<kwt_tensor::qops::QuantStats> {
        self.backend.last_quant_stats()
    }

    /// Resilience counters (traps seen, recoveries, failovers, budget
    /// kills) — `Some` only when the engine wraps a
    /// [`ResilientBackend`](crate::ResilientBackend)
    /// ([`resilient`](Self::resilient)).
    pub fn fault_stats(&self) -> Option<crate::FaultStats> {
        self.backend.fault_stats()
    }

    /// Health of the primary backend — `Some` only for
    /// [`resilient`](Self::resilient) engines.
    pub fn backend_health(&self) -> Option<crate::BackendHealth> {
        self.backend.health()
    }

    /// Re-arms the backend after a device fault, repairing any static
    /// bank that no longer matches its build-time checksum. `None` for
    /// host backends (nothing to recover).
    pub fn recover(&mut self) -> Option<kwt_baremetal::RecoveryReport> {
        self.backend.recover()
    }

    /// Arms (or disarms) a per-inference simulated-cycle budget on the
    /// backend (no-op for host backends).
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.backend.set_cycle_budget(budget);
    }

    /// The wrapped backend, mutably — fault injection
    /// ([`Backend::inject_faults`]) for robustness tests and the chaos
    /// harness.
    pub fn backend_mut(&mut self) -> &mut dyn Backend {
        self.backend.as_mut()
    }

    /// Classifies one audio clip (zero-padded / truncated to the front
    /// end's nominal clip length).
    ///
    /// # Errors
    ///
    /// Propagates front-end and backend errors.
    pub fn classify(&mut self, samples: &[f32]) -> Result<Prediction> {
        let mut out = Prediction::default();
        self.classify_into(samples, &mut out)?;
        Ok(out)
    }

    /// [`classify`](Self::classify) into a reusable [`Prediction`] — the
    /// allocation-free steady-state form.
    ///
    /// A backend that consumes pre-quantised `i8` features (an A8 device
    /// session) receives them straight from the front end at its input
    /// exponent — no separate host quantisation pass — with logits
    /// bit-identical to the float feature path.
    ///
    /// # Errors
    ///
    /// Same contract as [`classify`](Self::classify).
    pub fn classify_into(&mut self, samples: &[f32], out: &mut Prediction) -> Result<()> {
        if let Some(y) = self.backend.input_exponent() {
            self.frontend.extract_padded_a8_into(
                samples,
                y,
                &mut self.mfcc_q,
                &mut self.scratch,
            )?;
            return infer_prediction_prequantized(
                self.backend.as_mut(),
                &self.mfcc_q,
                &mut self.logits,
                out,
            );
        }
        self.frontend
            .extract_padded_into(samples, &mut self.mfcc, &mut self.scratch)?;
        infer_prediction(self.backend.as_mut(), &self.mfcc, &mut self.logits, out)
    }

    /// Classifies an already-extracted `T x F` MFCC spectrogram.
    ///
    /// # Errors
    ///
    /// Propagates backend errors (including input-shape mismatches).
    pub fn classify_mfcc(&mut self, mfcc: &Mat<f32>) -> Result<Prediction> {
        let mut out = Prediction::default();
        self.classify_mfcc_into(mfcc, &mut out)?;
        Ok(out)
    }

    /// [`classify_mfcc`](Self::classify_mfcc) into a reusable
    /// [`Prediction`].
    ///
    /// # Errors
    ///
    /// Same contract as [`classify_mfcc`](Self::classify_mfcc).
    pub fn classify_mfcc_into(&mut self, mfcc: &Mat<f32>, out: &mut Prediction) -> Result<()> {
        infer_prediction(self.backend.as_mut(), mfcc, &mut self.logits, out)
    }

    /// Classifies a wave of already-extracted `T x F` windows — the
    /// multi-session serving entry point. The scheduler stages one
    /// window per ready session; the engine shards them across the
    /// backend in chunks of [`wave_width`](Self::wave_width), reusing an
    /// engine-owned logits arena, so the steady state allocates nothing.
    ///
    /// Results are bit-identical to calling
    /// [`classify_mfcc_into`](Self::classify_mfcc_into) per window, in
    /// order — [`Backend::infer_wave`]'s contract guarantees it (its
    /// default *is* that serial loop, and the cluster's wave path is
    /// proven logit-identical to the serial device). Only the simulated
    /// *timing* differs: after each call,
    /// [`last_wave_device_cycles`](Self::last_wave_device_cycles)
    /// reports the final chunk's SoC cost, so callers wanting per-wave
    /// cycle accounting should pass at most `wave_width` windows per
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `out.len() !=
    /// windows.len()`; propagates backend errors, after which the
    /// contents of `out` are unspecified.
    pub fn classify_window_wave_into(
        &mut self,
        windows: &[Mat<f32>],
        out: &mut [Prediction],
    ) -> Result<()> {
        if out.len() != windows.len() {
            return Err(EngineError::Config {
                why: format!(
                    "wave output length {} does not match window count {}",
                    out.len(),
                    windows.len()
                ),
            });
        }
        let width = self.backend.batch_width().max(1);
        if self.wave_logits.len() < width {
            self.wave_logits.resize_with(width, Vec::new);
        }
        for (chunk, preds) in windows.chunks(width).zip(out.chunks_mut(width)) {
            let k = chunk.len();
            self.backend.infer_wave(chunk, &mut self.wave_logits[..k])?;
            for (logits, pred) in self.wave_logits[..k].iter().zip(preds.iter_mut()) {
                finish_prediction(logits, pred)?;
            }
        }
        Ok(())
    }

    /// Classifies a batch of clips, one [`Prediction`] per clip, reusing
    /// the engine's arenas across the whole batch.
    ///
    /// # Errors
    ///
    /// Fails on the first clip that fails; earlier results are discarded.
    pub fn classify_batch(&mut self, clips: &[impl AsRef<[f32]>]) -> Result<Vec<Prediction>> {
        let mut out = Vec::new();
        self.classify_batch_into(clips, &mut out)?;
        Ok(out)
    }

    /// [`classify_batch`](Self::classify_batch) into a reusable output
    /// vector: existing [`Prediction`]s (and their buffers) are refilled
    /// in place, so re-running batches of the same size allocates nothing
    /// on the host backends.
    ///
    /// A backend with [`Backend::batch_width`]` > 1` (the simulated
    /// cluster) receives the batch as waves of up to `batch_width`
    /// clips, one clip per hart — functionally identical to the serial
    /// loop (the wave contract guarantees it), but the simulated cost
    /// is the *SoC* timeline, not the sum of per-clip runs.
    ///
    /// # Errors
    ///
    /// Same contract as [`classify_batch`](Self::classify_batch).
    pub fn classify_batch_into(
        &mut self,
        clips: &[impl AsRef<[f32]>],
        out: &mut Vec<Prediction>,
    ) -> Result<()> {
        out.resize_with(clips.len(), Prediction::default);
        let width = self.backend.batch_width();
        if width > 1 && clips.len() > 1 {
            return self.classify_batch_waves(clips, width, out);
        }
        for (clip, pred) in clips.iter().zip(out.iter_mut()) {
            self.classify_into(clip.as_ref(), pred)?;
        }
        Ok(())
    }

    /// The wave-sharded batch path: extract a wave's worth of features,
    /// run them concurrently on the backend, finish the predictions.
    fn classify_batch_waves(
        &mut self,
        clips: &[impl AsRef<[f32]>],
        width: usize,
        out: &mut [Prediction],
    ) -> Result<()> {
        let c = *self.backend.config();
        if self.wave_logits.len() < width {
            self.wave_logits.resize_with(width, Vec::new);
        }
        if let Some(y) = self.backend.input_exponent() {
            let mut staged: Vec<Mat<i8>> = (0..width)
                .map(|_| Mat::zeros(c.input_time, c.input_freq))
                .collect();
            for (chunk, preds) in clips.chunks(width).zip(out.chunks_mut(width)) {
                let k = chunk.len();
                for (slot, clip) in staged.iter_mut().zip(chunk.iter()) {
                    self.frontend.extract_padded_a8_into(
                        clip.as_ref(),
                        y,
                        slot,
                        &mut self.scratch,
                    )?;
                }
                self.backend
                    .infer_prequantized_wave(&staged[..k], &mut self.wave_logits[..k])?;
                for (logits, pred) in self.wave_logits[..k].iter().zip(preds.iter_mut()) {
                    finish_prediction(logits, pred)?;
                }
            }
        } else {
            let mut staged: Vec<Mat<f32>> = (0..width)
                .map(|_| Mat::zeros(c.input_time, c.input_freq))
                .collect();
            for (chunk, preds) in clips.chunks(width).zip(out.chunks_mut(width)) {
                let k = chunk.len();
                for (slot, clip) in staged.iter_mut().zip(chunk.iter()) {
                    self.frontend
                        .extract_padded_into(clip.as_ref(), slot, &mut self.scratch)?;
                }
                self.backend
                    .infer_wave(&staged[..k], &mut self.wave_logits[..k])?;
                for (logits, pred) in self.wave_logits[..k].iter().zip(preds.iter_mut()) {
                    finish_prediction(logits, pred)?;
                }
            }
        }
        Ok(())
    }

    /// [`classify_batch_into`](Self::classify_batch_into) sharded across
    /// `threads` host threads.
    ///
    /// The clip list is split into contiguous chunks; each worker owns an
    /// independent clone of the backend (for [`BackendKind::Rv32Sim`]
    /// that is a whole `DeviceSession` — its own simulator machine with
    /// its own warm decode cache) plus private MFCC scratch, and writes
    /// into a disjoint slice of `out`. Clip `i` therefore always lands in
    /// `out[i]`, computed by the same deterministic pipeline as the
    /// serial path — sessions are stateless across inputs (proven by the
    /// bare-metal differential tests), so the logits are **identical**
    /// to [`classify_batch_into`](Self::classify_batch_into)'s, in the
    /// same order, for any thread count.
    ///
    /// `threads` is clamped to the clip count; `threads <= 1` runs the
    /// serial path (as does a backend that cannot be cloned).
    ///
    /// # Errors
    ///
    /// Fails if any clip fails anywhere in the batch; `out` contents are
    /// then unspecified (like the serial path's discard semantics).
    pub fn classify_batch_parallel(
        &mut self,
        clips: &[impl AsRef<[f32]> + Sync],
        threads: usize,
        out: &mut Vec<Prediction>,
    ) -> Result<()> {
        let n = clips.len();
        let t = threads.min(n).max(1);
        if t == 1 {
            return self.classify_batch_into(clips, out);
        }
        // one extra backend per worker beyond the engine's own
        let mut extra: Vec<Box<dyn Backend>> = Vec::with_capacity(t - 1);
        for _ in 1..t {
            match self.backend.clone_boxed() {
                Some(b) => extra.push(b),
                None => return self.classify_batch_into(clips, out),
            }
        }
        out.resize_with(n, Prediction::default);
        let chunk = n.div_ceil(t);
        let frontend = &self.frontend;
        let config = *self.backend.config();
        let run_chunk = |backend: &mut dyn Backend,
                         clips: &[_],
                         preds: &mut [Prediction]|
         -> Result<()> {
            let mut mfcc = Mat::zeros(config.input_time, config.input_freq);
            let mut mfcc_q = Mat::zeros(config.input_time, config.input_freq);
            let mut scratch = MfccScratch::new();
            let mut logits = Vec::with_capacity(config.num_classes);
            for (clip, pred) in clips.iter().zip(preds.iter_mut()) {
                if let Some(y) = backend.input_exponent() {
                    frontend.extract_padded_a8_into(
                        AsRef::as_ref(clip),
                        y,
                        &mut mfcc_q,
                        &mut scratch,
                    )?;
                    infer_prediction_prequantized(backend, &mfcc_q, &mut logits, pred)?;
                } else {
                    frontend.extract_padded_into(AsRef::as_ref(clip), &mut mfcc, &mut scratch)?;
                    infer_prediction(backend, &mfcc, &mut logits, pred)?;
                }
            }
            Ok(())
        };
        let (head_clips, tail_clips) = clips.split_at(chunk.min(n));
        let (head_out, tail_out) = out.split_at_mut(chunk.min(n));
        let own_backend = self.backend.as_mut();
        std::thread::scope(|scope| -> Result<()> {
            let run_chunk = &run_chunk;
            let mut handles = Vec::new();
            let mut rem_clips = tail_clips;
            let mut rem_out = tail_out;
            for backend in extra.iter_mut() {
                let take = chunk.min(rem_clips.len());
                let (clip_slice, clips_rest) = rem_clips.split_at(take);
                let (out_slice, out_rest) = std::mem::take(&mut rem_out).split_at_mut(take);
                rem_clips = clips_rest;
                rem_out = out_rest;
                handles
                    .push(scope.spawn(move || run_chunk(backend.as_mut(), clip_slice, out_slice)));
            }
            // the calling thread works its own chunk while workers run
            let own_result = run_chunk(own_backend, head_clips, head_out);
            let mut first_err = own_result.err();
            for h in handles {
                let r = h.join().expect("worker thread never panics");
                if first_err.is_none() {
                    first_err = r.err();
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("backend", &self.backend.kind())
            .field("config", self.backend.config())
            .finish_non_exhaustive()
    }
}

/// Shared tail of every classify path: infer, softmax, arg-max — all into
/// caller/engine-owned buffers.
fn infer_prediction(
    backend: &mut dyn Backend,
    mfcc: &Mat<f32>,
    logits: &mut Vec<f32>,
    out: &mut Prediction,
) -> Result<()> {
    backend.infer_into(mfcc, logits)?;
    finish_prediction(logits, out)
}

/// [`infer_prediction`] over pre-quantised `i8` features (A8 device
/// backends).
fn infer_prediction_prequantized(
    backend: &mut dyn Backend,
    mfcc_q: &Mat<i8>,
    logits: &mut Vec<f32>,
    out: &mut Prediction,
) -> Result<()> {
    backend.infer_prequantized_into(mfcc_q, logits)?;
    finish_prediction(logits, out)
}

/// Softmax + arg-max of freshly produced logits into the reusable
/// [`Prediction`].
fn finish_prediction(logits: &[f32], out: &mut Prediction) -> Result<()> {
    kwt_model::softmax_probs_into(logits, &mut out.probs)?;
    out.logits.clear();
    out.logits.extend_from_slice(logits);
    let (mut best, mut best_p) = (0usize, f32::NEG_INFINITY);
    for (i, &p) in out.probs.iter().enumerate() {
        if p > best_p {
            best = i;
            best_p = p;
        }
    }
    out.class = best;
    out.score = best_p;
    Ok(())
}
