use std::fmt;

/// Error type of the unified inference engine: one variant per subsystem
/// the engine drives, plus configuration mismatches caught at
/// construction.
///
/// Marked `#[non_exhaustive]`: the fault taxonomy grows with the
/// robustness work, so downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// MFCC front-end failure.
    Audio(kwt_audio::AudioError),
    /// Float model failure.
    Model(kwt_model::ModelError),
    /// Quantised model failure.
    Quant(kwt_quant::QuantError),
    /// Bare-metal image / simulator failure (RV32 backend).
    Device(kwt_baremetal::BuildError),
    /// The front end and the backend disagree about the input geometry,
    /// or a streaming parameter is out of its valid domain.
    Config {
        /// What is inconsistent.
        why: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Audio(e) => write!(f, "audio front end: {e}"),
            EngineError::Model(e) => write!(f, "float model: {e}"),
            EngineError::Quant(e) => write!(f, "quantised model: {e}"),
            EngineError::Device(e) => write!(f, "rv32 device: {e}"),
            EngineError::Config { why } => write!(f, "engine configuration: {why}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Audio(e) => Some(e),
            EngineError::Model(e) => Some(e),
            EngineError::Quant(e) => Some(e),
            EngineError::Device(e) => Some(e),
            EngineError::Config { .. } => None,
        }
    }
}

impl From<kwt_audio::AudioError> for EngineError {
    fn from(e: kwt_audio::AudioError) -> Self {
        EngineError::Audio(e)
    }
}

impl From<kwt_model::ModelError> for EngineError {
    fn from(e: kwt_model::ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<kwt_quant::QuantError> for EngineError {
    fn from(e: kwt_quant::QuantError) -> Self {
        EngineError::Quant(e)
    }
}

impl From<kwt_baremetal::BuildError> for EngineError {
    fn from(e: kwt_baremetal::BuildError) -> Self {
        EngineError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::Config {
            why: "frames mismatch".into(),
        };
        assert!(e.to_string().contains("frames mismatch"));
        let e: EngineError = kwt_audio::AudioError::SignalTooShort { got: 1, need: 2 }.into();
        assert!(e.to_string().contains("audio front end"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
