//! Continuous keyword spotting over a live audio stream.
//!
//! [`StreamingKws`] chains the incremental MFCC front end
//! ([`kwt_audio::StreamingMfcc`], bit-identical to batch extraction) with
//! an [`Engine`] over a sliding window of model-input frames:
//!
//! 1. every pushed chunk is folded into the sample ring buffer and turned
//!    into hop-aligned MFCC frames as windows complete;
//! 2. each new frame shifts the `T x F` model window up by one row;
//! 3. once `T` frames have accumulated, the window is classified every
//!    [`StreamingConfig::stride_frames`] frames;
//! 4. raw per-window decisions are smoothed by majority vote over the last
//!    [`StreamingConfig::vote_window`] classifications (ties break toward
//!    the class voted most recently), suppressing single-window flickers.
//!
//! Because the window after exactly one nominal clip equals
//! `extract(clip)` bit-for-bit, the first streamed decision matches
//! [`Engine::classify`] on the same clip — the engine's property tests
//! assert this.

use crate::{Engine, EngineError, Prediction, Result};
use kwt_audio::StreamingMfcc;
use kwt_tensor::Mat;
use std::collections::VecDeque;

/// Sliding-window and smoothing parameters for [`StreamingKws`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Classify every this-many new frames once the window is full
    /// (1 = every hop).
    pub stride_frames: usize,
    /// Majority vote over this many most-recent raw classifications.
    pub vote_window: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            stride_frames: 1,
            vote_window: 5,
        }
    }
}

/// One emitted classification of the sliding window.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDecision {
    /// Index of the newest frame in the classified window (frame numbers
    /// start at 0; the first decision fires at frame `T - 1`).
    pub frame_index: u64,
    /// Raw arg-max class of this window.
    pub class: usize,
    /// Softmax probability of `class`.
    pub score: f32,
    /// Majority-vote-smoothed class over the recent decisions.
    pub smoothed_class: usize,
}

/// Streaming keyword spotter (see the module docs).
pub struct StreamingKws {
    engine: Engine,
    stream: StreamingMfcc,
    window: Mat<f32>,
    frames_seen: u64,
    config: StreamingConfig,
    votes: VecDeque<usize>,
    counts: Vec<usize>,
    pred: Prediction,
}

impl StreamingKws {
    /// Wraps an engine for streaming; the incremental front end is cloned
    /// from the engine's extractor, so frames match its batch output
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for zero `stride_frames` or
    /// `vote_window`.
    pub fn new(engine: Engine, config: StreamingConfig) -> Result<Self> {
        if config.stride_frames == 0 || config.vote_window == 0 {
            return Err(EngineError::Config {
                why: "stride_frames and vote_window must be positive".into(),
            });
        }
        let c = *engine.config();
        let stream = StreamingMfcc::from_extractor(engine.frontend().clone());
        Ok(StreamingKws {
            window: Mat::zeros(c.input_time, c.input_freq),
            counts: vec![0; c.num_classes],
            votes: VecDeque::with_capacity(config.vote_window),
            stream,
            engine,
            frames_seen: 0,
            config,
            pred: Prediction::default(),
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Recovers the engine, dropping the stream state.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// MFCC frames folded into the window so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Forgets all stream state (samples, window, votes); the engine and
    /// its arenas are kept.
    pub fn reset(&mut self) {
        self.stream.reset();
        self.frames_seen = 0;
        self.votes.clear();
    }

    /// Feeds a chunk of audio, returning every sliding-window decision it
    /// completed (often none; possibly several for large chunks).
    ///
    /// # Errors
    ///
    /// Propagates front-end and backend errors. On error the returned
    /// decisions are dropped, but the stream state (ring buffer, window,
    /// votes) keeps whatever progress was made before the failure — the
    /// chunk's samples must not be pushed again.
    pub fn push(&mut self, samples: &[f32]) -> Result<Vec<StreamDecision>> {
        let mut out = Vec::new();
        self.push_with(samples, |d| out.push(d))?;
        Ok(out)
    }

    /// [`push`](Self::push) delivering decisions through a callback — the
    /// allocation-conscious form for long-running streams.
    ///
    /// # Errors
    ///
    /// Propagates front-end and backend errors. Decisions completed
    /// before the failure have already been delivered to `on_decision`,
    /// and stream state keeps the progress made — there is no rollback.
    pub fn push_with(
        &mut self,
        samples: &[f32],
        mut on_decision: impl FnMut(StreamDecision),
    ) -> Result<()> {
        if samples.is_empty() {
            return Err(EngineError::Config {
                why: "empty audio chunk: push at least one sample".into(),
            });
        }
        let t_frames = self.window.rows() as u64;
        let stride = self.config.stride_frames as u64;
        let vote_window = self.config.vote_window;
        let Self {
            engine,
            stream,
            window,
            frames_seen,
            votes,
            counts,
            pred,
            ..
        } = self;
        let mut deferred: Result<()> = Ok(());
        stream.push(samples, |frame_index, row| {
            if deferred.is_err() {
                return;
            }
            // Shift the model window up one row and append the new frame.
            let cols = window.cols();
            window.as_mut_slice().copy_within(cols.., 0);
            let last = window.rows() - 1;
            window.row_mut(last).copy_from_slice(row);
            *frames_seen += 1;
            if *frames_seen < t_frames || !(*frames_seen - t_frames).is_multiple_of(stride) {
                return;
            }
            match engine.classify_mfcc_into(window, pred) {
                Ok(()) => {
                    if votes.len() == vote_window {
                        votes.pop_front();
                    }
                    votes.push_back(pred.class);
                    on_decision(StreamDecision {
                        frame_index,
                        class: pred.class,
                        score: pred.score,
                        smoothed_class: majority_vote(votes, counts),
                    });
                }
                Err(e) => deferred = Err(e),
            }
        })?;
        deferred
    }
}

impl std::fmt::Debug for StreamingKws {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingKws")
            .field("engine", &self.engine)
            .field("config", &self.config)
            .field("frames_seen", &self.frames_seen)
            .finish_non_exhaustive()
    }
}

/// Majority class of `votes`; ties break toward the class whose latest
/// vote is most recent. `counts` is a reusable per-class tally, cleared
/// here.
///
/// Public because the serving layer replicates [`StreamingKws`]'s
/// smoothing per multiplexed session and must use the *same* tie-break
/// to stay bit-identical.
pub fn majority_vote(votes: &VecDeque<usize>, counts: &mut [usize]) -> usize {
    counts.fill(0);
    let mut best = 0usize;
    let mut best_count = 0usize;
    for &v in votes {
        counts[v] += 1;
        // `>=` lets a later class overtake on equal count: the most
        // recently voted class wins ties.
        if counts[v] >= best_count {
            if counts[v] > best_count || v != best {
                best = v;
            }
            best_count = counts[v];
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn votes(v: &[usize]) -> VecDeque<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn majority_prefers_most_common() {
        let mut counts = vec![0; 4];
        assert_eq!(majority_vote(&votes(&[1, 2, 2, 1, 2]), &mut counts), 2);
        assert_eq!(majority_vote(&votes(&[0, 0, 3]), &mut counts), 0);
        assert_eq!(majority_vote(&votes(&[3]), &mut counts), 3);
    }

    #[test]
    fn majority_tie_breaks_toward_recent() {
        let mut counts = vec![0; 4];
        // 1 and 2 both have two votes; 2 voted last.
        assert_eq!(majority_vote(&votes(&[1, 2, 1, 2]), &mut counts), 2);
        assert_eq!(majority_vote(&votes(&[2, 1, 2, 1]), &mut counts), 1);
    }
}
