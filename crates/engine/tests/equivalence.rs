//! The engine's headline guarantees: every backend produces logits
//! bit-identical to the one-shot seed path it replaces, and batched
//! classification equals per-clip classification on all three backends.

use kwt_audio::kwt_tiny_frontend;
use kwt_baremetal::InferenceImage;
use kwt_engine::{BackendKind, Engine, EngineError, Prediction};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{Nonlinearity, QuantConfig, QuantizedKwt};

fn trained_ish() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn quantized() -> QuantizedKwt {
    QuantizedKwt::quantize(&trained_ish(), QuantConfig::paper_best())
}

/// A deterministic 1 s clip: two tones plus pseudo-noise.
fn clip(seed: u64) -> Vec<f32> {
    (0..16_000u64)
        .map(|i| {
            let t = i as f64 / 16_000.0;
            let f1 = 200.0 + 37.0 * seed as f64;
            let f2 = 900.0 + 11.0 * seed as f64;
            let h =
                (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            (0.5 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                + 0.3 * (2.0 * std::f64::consts::PI * f2 * t).sin()
                + 0.05 * noise) as f32
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: logit {i}: {x} vs {y}");
    }
}

#[test]
fn host_float_engine_matches_one_shot_seed_path() {
    let params = trained_ish();
    let fe = kwt_tiny_frontend().unwrap();
    let mut engine = Engine::host_float(params.clone(), fe.clone()).unwrap();
    assert_eq!(engine.kind(), BackendKind::HostFloat);
    for seed in 0..5 {
        let audio = clip(seed);
        let pred = engine.classify(&audio).unwrap();
        // the pre-refactor one-shot path: extract, then forward
        let mfcc = fe.extract_padded(&audio).unwrap();
        let want = kwt_model::forward(&params, &mfcc).unwrap();
        assert_bits_eq(&pred.logits, &want, "host_float");
    }
}

#[test]
fn host_quant_engine_matches_one_shot_seed_path() {
    let qm = quantized();
    let fe = kwt_tiny_frontend().unwrap();
    let mut engine = Engine::host_quant(qm.clone(), fe.clone()).unwrap();
    assert_eq!(engine.kind(), BackendKind::HostQuant);
    for seed in 0..5 {
        let audio = clip(seed);
        let pred = engine.classify(&audio).unwrap();
        let mfcc = fe.extract_padded(&audio).unwrap();
        let want = qm.forward(&mfcc).unwrap();
        assert_bits_eq(&pred.logits, &want, "host_quant");
        let stats = engine
            .last_quant_stats()
            .expect("quant backend reports stats");
        assert!(stats.max_abs_acc > 0);
    }
}

#[test]
fn rv32_engine_matches_one_shot_image_run() {
    let qm = quantized().with_nonlinearity(Nonlinearity::FixedLut);
    let image = InferenceImage::build_quant(&qm).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let mut engine = Engine::rv32_sim(&image, fe.clone()).unwrap();
    assert_eq!(engine.kind(), BackendKind::Rv32Sim);
    for seed in [3u64, 9] {
        let audio = clip(seed);
        let pred = engine.classify(&audio).unwrap();
        let mfcc = fe.extract_padded(&audio).unwrap();
        let (want, want_run, _) = image.run(&mfcc).unwrap();
        assert_bits_eq(&pred.logits, &want, "rv32_sim");
        let run = engine
            .last_device_run()
            .expect("device backend reports runs");
        assert_eq!(run.cycles, want_run.cycles, "per-run cycle accounting");
    }
}

#[test]
fn rv32_engine_isa_toggle_is_bit_identical_and_faster() {
    // The same accelerated model behind the engine on both kernel ISAs:
    // identical logits clip-for-clip, with the Xkwtdot image spending a
    // small fraction of the scalar image's simulated cycles.
    use kwt_baremetal::KernelIsa;
    let qm = quantized().with_nonlinearity(Nonlinearity::FixedLut);
    let scalar_img = InferenceImage::build_quant(&qm).unwrap();
    let packed_img = InferenceImage::build_quant_with_isa(&qm, KernelIsa::Xkwtdot).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let mut scalar = Engine::rv32_sim(&scalar_img, fe.clone()).unwrap();
    let mut packed = Engine::rv32_sim(&packed_img, fe).unwrap();
    for seed in [4u64, 12] {
        let audio = clip(seed);
        let a = scalar.classify(&audio).unwrap();
        let b = packed.classify(&audio).unwrap();
        assert_bits_eq(&a.logits, &b.logits, "scalar vs xkwtdot engine");
        assert_eq!(a.class, b.class);
        let ca = scalar.last_device_run().unwrap().cycles;
        let cb = packed.last_device_run().unwrap().cycles;
        assert!(
            cb * 3 < ca,
            "xkwtdot should cut simulated cycles >3x: {cb} vs {ca}"
        );
    }
}

#[test]
fn a8_engine_prequantized_upload_matches_float_feature_path() {
    // An A8 backend advertises its input exponent, so the engine feeds
    // the device front-end-quantised i8 features directly. Logits must
    // be bit-identical to running the session on the float features
    // (both quantise the same f32 values by the same floor rule), for
    // the serial, batch and parallel paths.
    use kwt_quant::{A8Config, A8Kwt};
    let params = trained_ish();
    let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
    let image = InferenceImage::build_a8(&a8).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let mut engine = Engine::rv32_sim(&image, fe.clone()).unwrap();
    let mut session = image.session().unwrap();
    let clips: Vec<Vec<f32>> = (0..4).map(clip).collect();
    for (i, audio) in clips.iter().enumerate() {
        let pred = engine.classify(audio).unwrap();
        let mfcc = fe.extract_padded(audio).unwrap();
        let (want, _) = session.run(&mfcc).unwrap();
        assert_bits_eq(&pred.logits, &want, &format!("a8 engine clip {i}"));
    }
    let batch = engine.classify_batch(&clips).unwrap();
    let mut par = Vec::new();
    engine.classify_batch_parallel(&clips, 2, &mut par).unwrap();
    for (i, (b, p)) in batch.iter().zip(&par).enumerate() {
        assert_eq!(b, p, "parallel a8 clip {i}");
    }
}

#[test]
fn classify_batch_matches_per_clip_on_all_backends() {
    let params = trained_ish();
    let qm = quantized();
    let image =
        InferenceImage::build_quant(&qm.clone().with_nonlinearity(Nonlinearity::FixedLut)).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let clips: Vec<Vec<f32>> = (0..3).map(clip).collect();
    let engines: Vec<Engine> = vec![
        Engine::host_float(params, fe.clone()).unwrap(),
        Engine::host_quant(qm, fe.clone()).unwrap(),
        Engine::rv32_sim(&image, fe.clone()).unwrap(),
    ];
    for mut engine in engines {
        let kind = engine.kind();
        let batch = engine.classify_batch(&clips).unwrap();
        assert_eq!(batch.len(), clips.len());
        for (i, audio) in clips.iter().enumerate() {
            let single = engine.classify(audio).unwrap();
            assert_eq!(batch[i], single, "{} clip {i}", kind.as_str());
        }
    }
}

#[test]
fn predictions_are_well_formed() {
    let mut engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let pred = engine.classify(&clip(1)).unwrap();
    assert_eq!(pred.logits.len(), 2);
    assert_eq!(pred.probs.len(), 2);
    assert!((pred.probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    assert_eq!(pred.score, pred.probs[pred.class]);
    let other = 1 - pred.class;
    assert!(pred.probs[pred.class] >= pred.probs[other]);
    assert!(pred.logits[pred.class] >= pred.logits[other]);
}

#[test]
fn geometry_mismatch_rejected_at_construction() {
    // KWT-1 front end (98 x 40) cannot feed the KWT-Tiny model (26 x 16).
    let err = Engine::host_float(trained_ish(), kwt_audio::kwt1_frontend().unwrap());
    assert!(matches!(err, Err(EngineError::Config { .. })));
}

#[test]
fn short_and_long_clips_are_padded_like_the_seed_path() {
    let params = trained_ish();
    let fe = kwt_tiny_frontend().unwrap();
    let mut engine = Engine::host_float(params.clone(), fe.clone()).unwrap();
    for len in [4_000usize, 16_000, 40_000] {
        let audio: Vec<f32> = clip(4)[..].iter().cycle().take(len).copied().collect();
        let pred = engine.classify(&audio).unwrap();
        let mfcc = fe.extract_padded(&audio).unwrap();
        let want = kwt_model::forward(&params, &mfcc).unwrap();
        assert_bits_eq(&pred.logits, &want, "padded clip");
    }
}

#[test]
fn parallel_batch_identical_to_serial_on_rv32() {
    // The sharded batch path must match the serial path bit-for-bit, in
    // order, for any thread count — each worker owns its own
    // DeviceSession clone and sessions are stateless across inputs.
    let qm = quantized().with_nonlinearity(Nonlinearity::FixedLut);
    let image =
        InferenceImage::build_quant_with_isa(&qm, kwt_baremetal::KernelIsa::Xkwtdot).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let mut engine = Engine::rv32_sim(&image, fe).unwrap();
    let clips: Vec<Vec<f32>> = (0..7).map(clip).collect();
    let serial = engine.classify_batch(&clips).unwrap();
    for threads in [1usize, 2, 4, 16] {
        let mut par = Vec::new();
        engine
            .classify_batch_parallel(&clips, threads, &mut par)
            .unwrap();
        assert_eq!(par.len(), serial.len(), "threads {threads}");
        for (i, (p, s)) in par.iter().zip(&serial).enumerate() {
            assert_eq!(p.class, s.class, "threads {threads} clip {i}");
            assert_bits_eq(&p.logits, &s.logits, "parallel rv32");
        }
    }
}

#[test]
fn cluster_engine_batch_identical_to_serial_rv32_engine() {
    // The wave-sharded cluster path (4 harts, so 7 clips = a full wave
    // plus a partial one) must be bit-identical to the serial rv32
    // engine, and a single clip — hart 0 alone — must also be
    // cycle-identical to the serial session (the single-hart identity).
    use kwt_quant::{A8Config, A8Kwt};
    let a8 = A8Kwt::quantize(&trained_ish(), A8Config::paper_a8()).unwrap();
    let image = InferenceImage::build_a8(&a8).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let mut serial = Engine::rv32_sim(&image, fe.clone()).unwrap();
    let mut cluster = Engine::rv32_cluster(&image, fe, 4).unwrap();
    assert_eq!(cluster.kind(), BackendKind::Rv32Cluster);
    let clips: Vec<Vec<f32>> = (0..7).map(clip).collect();
    let want = serial.classify_batch(&clips).unwrap();
    let got = cluster.classify_batch(&clips).unwrap();
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.class, w.class, "cluster clip {i}");
        assert_bits_eq(&g.logits, &w.logits, &format!("cluster clip {i}"));
    }
    let a = serial.classify(&clips[0]).unwrap();
    let b = cluster.classify(&clips[0]).unwrap();
    assert_bits_eq(&a.logits, &b.logits, "cluster single clip");
    assert_eq!(
        serial.last_device_run().unwrap().cycles,
        cluster.last_device_run().unwrap().cycles,
        "a lone hart must be cycle-identical to the serial session"
    );
}

#[test]
fn cluster_engine_float_feature_path_matches_serial() {
    // The non-A8 flavours exercise the float-feature wave path
    // (infer_wave rather than infer_prequantized_wave).
    let qm = quantized().with_nonlinearity(Nonlinearity::FixedLut);
    let image = InferenceImage::build_quant(&qm).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let mut serial = Engine::rv32_sim(&image, fe.clone()).unwrap();
    let mut cluster = Engine::rv32_cluster(&image, fe, 2).unwrap();
    let clips: Vec<Vec<f32>> = (0..5).map(clip).collect();
    let want = serial.classify_batch(&clips).unwrap();
    let got = cluster.classify_batch(&clips).unwrap();
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g, w, "quant cluster clip {i}");
    }
}

#[test]
fn window_wave_entry_matches_per_window_classify() {
    // The serving layer's wave entry point: already-extracted windows
    // sharded across the backend must equal per-window classify_mfcc
    // bit-for-bit — on a host engine (wave width 1, the default serial
    // loop) and on the cluster (windows sharded one per hart, which also
    // reports the wave's SoC finish time).
    let fe = kwt_tiny_frontend().unwrap();
    let windows: Vec<_> = (0..5)
        .map(|s| fe.extract_padded(&clip(s)).unwrap())
        .collect();
    let mut host = Engine::host_float(trained_ish(), fe.clone()).unwrap();
    assert_eq!(host.wave_width(), 1);
    let mut out = vec![Prediction::default(); windows.len()];
    host.classify_window_wave_into(&windows, &mut out).unwrap();
    for (i, w) in windows.iter().enumerate() {
        let single = host.classify_mfcc(w).unwrap();
        assert_eq!(out[i], single, "host wave window {i}");
    }
    assert!(host.last_wave_device_cycles().is_none());

    let qm = quantized().with_nonlinearity(Nonlinearity::FixedLut);
    let image = InferenceImage::build_quant(&qm).unwrap();
    let mut serial = Engine::rv32_sim(&image, fe.clone()).unwrap();
    let mut cluster = Engine::rv32_cluster(&image, fe, 4).unwrap();
    assert_eq!(cluster.wave_width(), 4);
    cluster
        .classify_window_wave_into(&windows, &mut out)
        .unwrap();
    assert!(cluster.last_wave_device_cycles().unwrap() > 0);
    for (i, w) in windows.iter().enumerate() {
        let single = serial.classify_mfcc(w).unwrap();
        assert_bits_eq(
            &out[i].logits,
            &single.logits,
            &format!("cluster wave window {i}"),
        );
    }

    let mut short = vec![Prediction::default(); 2];
    assert!(matches!(
        host.classify_window_wave_into(&windows, &mut short),
        Err(EngineError::Config { .. })
    ));
}

#[test]
fn parallel_batch_identical_to_serial_on_a8_and_hosts() {
    use kwt_quant::{A8Config, A8Kwt};
    let fe = kwt_tiny_frontend().unwrap();
    let a8 = A8Kwt::quantize(&trained_ish(), A8Config::paper_a8()).unwrap();
    let a8_image = InferenceImage::build_a8(&a8).unwrap();
    let mut engines = vec![
        Engine::rv32_sim(&a8_image, fe.clone()).unwrap(),
        Engine::host_float(trained_ish(), fe.clone()).unwrap(),
        Engine::host_quant(quantized(), fe).unwrap(),
    ];
    let clips: Vec<Vec<f32>> = (0..5).map(clip).collect();
    for engine in &mut engines {
        let serial = engine.classify_batch(&clips).unwrap();
        let mut par = Vec::new();
        engine.classify_batch_parallel(&clips, 3, &mut par).unwrap();
        for (p, s) in par.iter().zip(&serial) {
            assert_bits_eq(&p.logits, &s.logits, "parallel batch");
        }
    }
}
