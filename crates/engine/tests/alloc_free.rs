//! Proof of the zero-allocation steady state: wraps the global allocator
//! in a counter and asserts that, after warm-up, repeated host-side
//! `classify_into` calls perform **no heap allocation at all** — the
//! tentpole property the scratch arenas exist for.

use kwt_audio::kwt_tiny_frontend;
use kwt_engine::{Engine, Prediction, StreamingConfig, StreamingKws};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{QuantConfig, QuantizedKwt};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn trained_ish() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn clip(seed: u64) -> Vec<f32> {
    (0..16_000u64)
        .map(|i| {
            let t = i as f64 / 16_000.0;
            ((2.0 * std::f64::consts::PI * (300.0 + seed as f64 * 50.0) * t).sin() * 0.5) as f32
        })
        .collect()
}

/// Warm the engine on every input it will see, then count allocations
/// over many steady-state iterations.
fn steady_state_allocs(engine: &mut Engine, clips: &[Vec<f32>]) -> u64 {
    let mut pred = Prediction::default();
    for audio in clips {
        engine.classify_into(audio, &mut pred).unwrap();
    }
    allocations(|| {
        for _ in 0..10 {
            for audio in clips {
                engine.classify_into(audio, &mut pred).unwrap();
            }
        }
    })
}

#[test]
fn host_float_steady_state_allocates_nothing() {
    let clips: Vec<Vec<f32>> = (0..3).map(clip).collect();
    let mut engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let n = steady_state_allocs(&mut engine, &clips);
    assert_eq!(n, 0, "host_float hot loop allocated {n} times");
}

#[test]
fn host_quant_steady_state_allocates_nothing() {
    let qm = QuantizedKwt::quantize(&trained_ish(), QuantConfig::paper_best());
    let clips: Vec<Vec<f32>> = (0..3).map(clip).collect();
    let mut engine = Engine::host_quant(qm, kwt_tiny_frontend().unwrap()).unwrap();
    let n = steady_state_allocs(&mut engine, &clips);
    assert_eq!(n, 0, "host_quant hot loop allocated {n} times");
}

#[test]
fn batched_steady_state_allocates_nothing() {
    let clips: Vec<Vec<f32>> = (0..4).map(clip).collect();
    let mut engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let mut out = Vec::new();
    engine.classify_batch_into(&clips, &mut out).unwrap();
    let n = allocations(|| {
        for _ in 0..5 {
            engine.classify_batch_into(&clips, &mut out).unwrap();
        }
    });
    assert_eq!(n, 0, "batched hot loop allocated {n} times");
}

#[test]
fn streaming_push_is_allocation_bounded() {
    // The warm-up pushes absorb every one-time buffer growth (ring
    // buffer, window, vote deque); after that the streaming steady state
    // must allocate nothing at all.
    let mut kws = StreamingKws::new(
        Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap(),
        StreamingConfig::default(),
    )
    .unwrap();
    let chunk = clip(2);
    // Warm up: several full clips through the window + one classify.
    for _ in 0..3 {
        kws.push_with(&chunk, |_| {}).unwrap();
    }
    let n = allocations(|| {
        for _ in 0..5 {
            kws.push_with(&chunk, |_| {}).unwrap();
        }
    });
    assert_eq!(n, 0, "streaming steady state allocated {n} times");
}

#[test]
fn streaming_reset_reuse_allocates_nothing() {
    // Session-slot reuse in the serving layer: a stream closes, the slot
    // is reset, and a different caller's audio runs through the same
    // stream object. After warm-up the whole reset-and-replay cycle must
    // not touch the allocator — reset() keeps every arena.
    let mut kws = StreamingKws::new(
        Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap(),
        StreamingConfig::default(),
    )
    .unwrap();
    let first = clip(1);
    let second = clip(5);
    for audio in [&first, &second] {
        kws.push_with(audio, |_| {}).unwrap();
        kws.reset();
    }
    let n = allocations(|| {
        for _ in 0..4 {
            kws.reset();
            kws.push_with(&first, |_| {}).unwrap();
            kws.reset();
            kws.push_with(&second, |_| {}).unwrap();
        }
    });
    assert_eq!(n, 0, "reset-reuse cycle allocated {n} times");
}

#[test]
fn window_wave_steady_state_allocates_nothing() {
    // The serving layer's batch entry point: classifying a wave of
    // staged windows into reused Predictions must be allocation-free
    // after the first (warming) wave.
    let mut engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let windows: Vec<_> = (0..4)
        .map(|s| engine.frontend().extract_padded(&clip(s)).unwrap())
        .collect();
    let mut out = vec![Prediction::default(); windows.len()];
    engine
        .classify_window_wave_into(&windows, &mut out)
        .unwrap();
    let n = allocations(|| {
        for _ in 0..10 {
            engine
                .classify_window_wave_into(&windows, &mut out)
                .unwrap();
        }
    });
    assert_eq!(n, 0, "window wave hot loop allocated {n} times");
}
