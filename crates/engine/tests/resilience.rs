//! The degradation-ladder guarantees: faults on the simulated device
//! surface as recoveries or failovers, never as wrong answers — and a
//! failed-over request is bit-identical to running the fallback
//! directly.

use kwt_audio::kwt_tiny_frontend;
use kwt_baremetal::InferenceImage;
use kwt_engine::{
    Backend, BackendHealth, BackendKind, Engine, EngineError, HostFloatBackend, HostQuantBackend,
    ResilientBackend, ResilientConfig, Rv32SimBackend, StreamingConfig, StreamingKws,
};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{A8Config, A8Kwt, QuantConfig, QuantizedKwt};
use kwt_rv32::{FaultPlan, Trap};

fn trained_ish() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn a8_image() -> InferenceImage {
    let qm = A8Kwt::quantize(&trained_ish(), A8Config::paper_a8()).unwrap();
    InferenceImage::build_a8(&qm).unwrap()
}

/// A deterministic 1 s clip: two tones plus pseudo-noise.
fn clip(seed: u64) -> Vec<f32> {
    (0..16_000u64)
        .map(|i| {
            let t = i as f64 / 16_000.0;
            let f1 = 200.0 + 37.0 * seed as f64;
            let f2 = 900.0 + 11.0 * seed as f64;
            let h =
                (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            (0.5 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                + 0.3 * (2.0 * std::f64::consts::PI * f2 * t).sin()
                + 0.05 * noise) as f32
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: logit {i}: {x} vs {y}");
    }
}

#[test]
fn transient_fault_is_recovered_and_answer_matches_clean_run() {
    let image = a8_image();
    let fe = kwt_tiny_frontend().unwrap();
    let audio = clip(3);
    let want = Engine::rv32_sim(&image, fe.clone())
        .unwrap()
        .classify(&audio)
        .unwrap();

    let primary = Box::new(Rv32SimBackend::new(&image).unwrap());
    let fallbacks: Vec<Box<dyn Backend>> = vec![Box::new(HostFloatBackend::new(trained_ish()))];
    let mut engine = Engine::resilient(primary, fallbacks, ResilientConfig::default(), fe).unwrap();

    // one forced trap; it is consumed by the first attempt, so the
    // post-recovery retry runs clean
    engine
        .backend_mut()
        .inject_faults(FaultPlan::new().force_trap_at_step(
            50_000,
            Trap::IllegalInstruction {
                pc: 0xdead,
                word: 0,
            },
        ));
    let pred = engine.classify(&audio).unwrap();
    assert_bits_eq(&pred.logits, &want.logits, "recovered request");

    let stats = engine.fault_stats().unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.traps_seen, 1);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.failovers, 0);
    assert_eq!(engine.backend_health(), Some(BackendHealth::Degraded));

    // the next clean request restores full health
    let pred2 = engine.classify(&audio).unwrap();
    assert_bits_eq(&pred2.logits, &want.logits, "clean follow-up");
    assert_eq!(engine.backend_health(), Some(BackendHealth::Healthy));
}

#[test]
fn failover_logits_identical_to_running_the_fallback_directly() {
    let image = a8_image();
    let qm = QuantizedKwt::quantize(&trained_ish(), QuantConfig::paper_best());
    let fe = kwt_tiny_frontend().unwrap();
    let audio = clip(5);
    // direct fallback runs, for the identity checks
    let want_quant = Engine::host_quant(qm.clone(), fe.clone())
        .unwrap()
        .classify(&audio)
        .unwrap();
    let want_float = Engine::host_float(trained_ish(), fe.clone())
        .unwrap()
        .classify(&audio)
        .unwrap();

    // a 1k-cycle budget kills every device run (an A8 inference takes
    // ~285k), so every request walks the full ladder
    let rcfg = ResilientConfig {
        max_recoveries: 1,
        cycle_budget: Some(1_000),
        quarantine_after: 2,
    };
    let primary = Box::new(Rv32SimBackend::new(&image).unwrap());
    let fallbacks: Vec<Box<dyn Backend>> = vec![
        Box::new(HostQuantBackend::new(qm)),
        Box::new(HostFloatBackend::new(trained_ish())),
    ];
    let mut backend = ResilientBackend::new(primary, fallbacks, rcfg).unwrap();
    assert_eq!(backend.kind(), BackendKind::Rv32Sim);
    let mut engine = Engine::new(fe, backend.clone_boxed().unwrap()).unwrap();

    let pred = engine.classify(&audio).unwrap();
    assert_bits_eq(&pred.logits, &want_quant.logits, "failover to host_quant");
    let stats = engine.fault_stats().unwrap();
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.budget_kills, 2, "initial try + one retry");
    assert_eq!(stats.traps_seen, 2);
    assert_eq!(engine.backend_health(), Some(BackendHealth::Degraded));

    // second failed request quarantines the primary...
    engine.classify(&audio).unwrap();
    assert_eq!(engine.backend_health(), Some(BackendHealth::Quarantined));
    let traps_at_quarantine = engine.fault_stats().unwrap().traps_seen;

    // ...after which the device is not tried at all
    let pred3 = engine.classify(&audio).unwrap();
    assert_bits_eq(&pred3.logits, &want_quant.logits, "quarantined request");
    assert_eq!(
        engine.fault_stats().unwrap().traps_seen,
        traps_at_quarantine
    );
    assert_eq!(engine.fault_stats().unwrap().failovers, 3);

    // the ladder keeps order: with host_quant removed, float serves
    let primary = Box::new(Rv32SimBackend::new(&image).unwrap());
    let fallbacks: Vec<Box<dyn Backend>> = vec![Box::new(HostFloatBackend::new(trained_ish()))];
    backend = ResilientBackend::new(primary, fallbacks, rcfg).unwrap();
    let mut engine = Engine::new(kwt_tiny_frontend().unwrap(), Box::new(backend)).unwrap();
    let pred = engine.classify(&audio).unwrap();
    assert_bits_eq(&pred.logits, &want_float.logits, "failover to host_float");
}

#[test]
fn non_device_errors_are_not_retried_or_failed_over() {
    let image = a8_image();
    let primary = Box::new(Rv32SimBackend::new(&image).unwrap());
    let fallbacks: Vec<Box<dyn Backend>> = vec![Box::new(HostFloatBackend::new(trained_ish()))];
    let mut backend =
        ResilientBackend::new(primary, fallbacks, ResilientConfig::default()).unwrap();
    // wrong-shape MFCC is a caller bug: it must propagate as-is
    let bad = kwt_tensor::Mat::<f32>::zeros(3, 3);
    let mut logits = Vec::new();
    let err = backend.infer_into(&bad, &mut logits).unwrap_err();
    assert!(matches!(err, EngineError::Device(_)), "shape error: {err}");
    let stats = backend.stats();
    assert_eq!(stats.traps_seen, 0);
    assert_eq!(stats.recoveries, 0);
    assert_eq!(stats.failovers, 0);
    assert_eq!(backend.backend_health(), BackendHealth::Healthy);
}

#[test]
fn mismatched_fallback_config_rejected() {
    let image = a8_image();
    let primary = Box::new(Rv32SimBackend::new(&image).unwrap());
    let mut other = KwtParams::init(
        KwtConfig {
            num_classes: 5,
            ..KwtConfig::kwt_tiny()
        },
        9,
    )
    .unwrap();
    other.visit_mut(|s| {
        for v in s {
            *v *= 0.5;
        }
    });
    let fallbacks: Vec<Box<dyn Backend>> = vec![Box::new(HostFloatBackend::new(other))];
    assert!(matches!(
        ResilientBackend::new(primary, fallbacks, ResilientConfig::default()),
        Err(EngineError::Config { .. })
    ));
}

#[test]
fn streaming_rejects_empty_chunks() {
    let engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let mut kws = StreamingKws::new(engine, StreamingConfig::default()).unwrap();
    let err = kws.push(&[]).unwrap_err();
    assert!(matches!(err, EngineError::Config { .. }), "{err}");
    // the stream is untouched and keeps working
    kws.push(&clip(1)).unwrap();
}

#[test]
fn streaming_propagates_typed_sample_errors() {
    let engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let mut kws = StreamingKws::new(engine, StreamingConfig::default()).unwrap();
    let err = kws.push(&[0.1, f32::NAN, 0.2]).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Audio(kwt_audio::AudioError::InvalidSample {
                index: 1,
                why: "NaN"
            })
        ),
        "{err}"
    );
    // rejected before buffering: the stream continues cleanly
    kws.push(&clip(2)).unwrap();
}
