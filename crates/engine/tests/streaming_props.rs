//! Property tests for the streaming front end and the scratch arenas:
//!
//! * incremental MFCC == batch `extract`, bit-identically, across random
//!   window/hop geometries and random chunk splits of the clip;
//! * `forward` with a fresh scratch == `forward` with a heavily reused
//!   scratch on random inputs;
//! * the first streaming decision == one-shot `classify` of the same clip.

use kwt_audio::{kwt_tiny_frontend, MfccConfig, MfccExtractor, StreamingMfcc, WindowKind};
use kwt_engine::{Engine, StreamingConfig, StreamingKws};
use kwt_model::{KwtConfig, KwtParams, Scratch};
use kwt_tensor::Mat;
use proptest::prelude::*;

fn wave(seed: u64, n: usize) -> Vec<f32> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            let t = i as f64 / 16_000.0;
            ((2.0 * std::f64::consts::PI * (250.0 + seed as f64 % 700.0) * t).sin() * 0.4
                + noise * 0.2) as f32
        })
        .collect()
}

/// Splits `clip` at the given relative cut points and pushes the chunks.
fn stream_rows(extractor: &MfccExtractor, clip: &[f32], cuts: &[usize]) -> Vec<Vec<f32>> {
    let mut stream = StreamingMfcc::from_extractor(extractor.clone());
    let mut rows = Vec::new();
    let mut off = 0;
    for &c in cuts {
        let end = off + c % (clip.len() - off).max(1);
        stream
            .push(&clip[off..end], |_, row| rows.push(row.to_vec()))
            .unwrap();
        off = end;
    }
    stream
        .push(&clip[off..], |_, row| rows.push(row.to_vec()))
        .unwrap();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_mfcc_equals_batch_for_random_geometry_and_splits(
        win_sel in 32usize..200,
        hop_sel in 8usize..300,
        clip_extra in 0usize..2_000,
        seed in 0u64..1_000,
        cuts in proptest::collection::vec(1usize..4_000, 0..6),
    ) {
        let config = MfccConfig {
            n_fft: 256,
            win_length: win_sel,
            hop_length: hop_sel,
            n_mels: 12,
            n_mfcc: 8,
            window: WindowKind::Hann,
            clip_samples: win_sel + 100,
            ..MfccConfig::default()
        };
        let extractor = MfccExtractor::new(config).unwrap();
        let clip = wave(seed, win_sel + 100 + clip_extra);
        let batch = extractor.extract(&clip).unwrap();
        let rows = stream_rows(&extractor, &clip, &cuts);
        prop_assert_eq!(rows.len(), batch.rows());
        for (t, row) in rows.iter().enumerate() {
            for (a, b) in row.iter().zip(batch.row(t)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "frame {}", t);
            }
        }
    }

    #[test]
    fn fresh_and_reused_scratch_agree_on_random_inputs(
        seeds in proptest::collection::vec(0u64..10_000, 1..6),
    ) {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), 3).unwrap();
        let packed = params.pack_weights();
        let mut reused = Scratch::new(&params.config);
        let mut out_reused = Vec::new();
        for seed in seeds {
            let x = Mat::from_fn(26, 16, |r, c| {
                let h = (seed + (r * 16 + c) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            });
            kwt_model::forward_into(&params, &packed, &x, &mut reused, &mut out_reused).unwrap();
            let fresh = kwt_model::forward_with(&params, &packed, &x).unwrap();
            prop_assert_eq!(&out_reused, &fresh);
        }
    }
}

#[test]
fn first_streaming_decision_equals_batch_classify() {
    let params = {
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
        p.visit_mut(|s| {
            for v in s {
                *v *= 0.6;
            }
        });
        p
    };
    let fe = kwt_tiny_frontend().unwrap();
    let clip = wave(5, 16_000);
    let mut engine = Engine::host_float(params.clone(), fe.clone()).unwrap();
    let want = engine.classify(&clip).unwrap();

    let engine2 = Engine::host_float(params, fe).unwrap();
    let mut kws = StreamingKws::new(engine2, StreamingConfig::default()).unwrap();
    let mut decisions = Vec::new();
    for chunk in clip.chunks(1_234) {
        decisions.extend(kws.push(chunk).unwrap());
    }
    // One nominal clip yields exactly T frames -> exactly one decision,
    // whose window is bit-identical to the batch spectrogram.
    assert_eq!(decisions.len(), 1);
    let d = &decisions[0];
    assert_eq!(d.frame_index, 25);
    assert_eq!(d.class, want.class);
    assert_eq!(d.score.to_bits(), want.score.to_bits());
    assert_eq!(d.smoothed_class, want.class, "single vote: smoothed == raw");
}

#[test]
fn streaming_smoothing_suppresses_flicker() {
    // Alternate two very different signals chunk-by-chunk: raw decisions
    // may flip, the smoothed majority must be at least as stable.
    let params = KwtParams::init(KwtConfig::kwt_tiny(), 12).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let engine = Engine::host_float(params, fe).unwrap();
    let mut kws = StreamingKws::new(
        engine,
        StreamingConfig {
            stride_frames: 2,
            vote_window: 7,
        },
    )
    .unwrap();
    let a = wave(1, 48_000);
    let mut decisions = Vec::new();
    for chunk in a.chunks(800) {
        decisions.extend(kws.push(chunk).unwrap());
    }
    assert!(decisions.len() > 10, "expected many decisions");
    let raw_flips = decisions
        .windows(2)
        .filter(|w| w[0].class != w[1].class)
        .count();
    let smooth_flips = decisions
        .windows(2)
        .filter(|w| w[0].smoothed_class != w[1].smoothed_class)
        .count();
    assert!(
        smooth_flips <= raw_flips,
        "smoothing increased flicker: {smooth_flips} > {raw_flips}"
    );
    // decision cadence respects the stride
    assert_eq!(decisions[0].frame_index, 25);
    assert_eq!(decisions[1].frame_index, 27);
}
