//! Property-based tests for the tensor kernels: algebraic identities the
//! float ops must satisfy and quantisation invariants the integer ops must
//! preserve.

use kwt_tensor::{math, ops, packed, qops, Mat, PackedMat};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    // Bounded, finite floats keep identity tolerances meaningful.
    (-8.0f32..8.0).prop_map(|x| (x * 64.0).round() / 64.0)
}

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat<f32>> {
    proptest::collection::vec(small_f32(), rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matmul_distributes_over_addition(
        a in mat_strategy(3, 4),
        b in mat_strategy(4, 2),
        c in mat_strategy(4, 2),
    ) {
        // A(B + C) == AB + AC
        let mut bc = b.clone();
        ops::add_assign(&mut bc, &c).unwrap();
        let lhs = ops::matrix_multiply(&a, &bc).unwrap();
        let mut rhs = ops::matrix_multiply(&a, &b).unwrap();
        ops::add_assign(&mut rhs, &ops::matrix_multiply(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(
        a in mat_strategy(3, 4),
        b in mat_strategy(4, 3),
    ) {
        // (AB)^T == B^T A^T
        let lhs = ops::matrix_multiply(&a, &b).unwrap().transpose();
        let rhs = ops::matrix_multiply(&b.transpose(), &a.transpose()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(
        v in proptest::collection::vec(small_f32(), 1..24),
        shift in -4.0f32..4.0,
    ) {
        let mut a = v.clone();
        let mut b: Vec<f32> = v.iter().map(|x| x + shift).collect();
        ops::softmax_normalized(&mut a).unwrap();
        ops::softmax_normalized(&mut b).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_output_is_distribution(
        v in proptest::collection::vec(small_f32(), 1..32),
    ) {
        let mut a = v;
        ops::softmax_normalized(&mut a).unwrap();
        let sum: f32 = a.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(a.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn softmax_preserves_order(
        v in proptest::collection::vec(small_f32(), 2..16),
    ) {
        let mut s = v.clone();
        ops::softmax_normalized(&mut s).unwrap();
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] > v[j] {
                    prop_assert!(s[i] >= s[j] - 1e-7);
                }
            }
        }
    }

    #[test]
    fn layer_norm_output_standardised(
        v in proptest::collection::vec(small_f32(), 2..32),
    ) {
        // Skip near-constant vectors where eps dominates.
        let (_, var) = ops::compute_mean_and_variance(&v).unwrap();
        prop_assume!(var > 1e-3);
        let mut x = v;
        let n = x.len();
        ops::layer_norm(&mut x, &vec![1.0; n], &vec![0.0; n], 1e-9).unwrap();
        let (m, s2) = ops::compute_mean_and_variance(&x).unwrap();
        prop_assert!(m.abs() < 1e-4, "mean {m}");
        prop_assert!((s2 - 1.0).abs() < 1e-2, "var {s2}");
    }

    #[test]
    fn gelu_bounded_by_relu(
        v in proptest::collection::vec(small_f32(), 1..32),
    ) {
        // 0 >= GELU(x) - ReLU(x) >= -0.17 everywhere
        let mut g = v.clone();
        ops::gelu(&mut g);
        for (x, y) in v.iter().zip(&g) {
            let relu = x.max(0.0);
            prop_assert!(*y <= relu + 1e-6);
            prop_assert!(*y >= relu - 0.17);
        }
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -10.0f32..10.0) {
        let e = math::erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((math::erf(-x) + e).abs() < 1e-6);
    }

    #[test]
    fn quantize_dequantize_error_bound(
        v in proptest::collection::vec(-4.0f32..4.0, 1..64),
        y in 3u32..8,
    ) {
        let n = v.len();
        let m = Mat::from_vec(1, n, v).unwrap();
        let (q, stats) = qops::quantize_i16(&m, y);
        prop_assume!(stats.saturations == 0);
        let back = qops::dequantize_i16(&q, y);
        let step = 1.0 / (1 << y) as f32;
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            // floor quantisation error lies in [0, step)
            let err = a - b;
            prop_assert!(err >= -1e-6 && err < step + 1e-6, "err {err} step {step}");
        }
    }

    #[test]
    fn quantized_matmul_tracks_float(
        a in mat_strategy(2, 3),
        w in proptest::collection::vec(-0.9f32..0.9, 6),
    ) {
        let w_f = Mat::from_vec(3, 2, w).unwrap();
        let ya = 8u32;
        let yw = 6u32;
        let (a_q, sa) = qops::quantize_i16(&a, ya);
        let (w_q, sw) = qops::quantize_i8(&w_f, yw);
        prop_assume!(sa.saturations == 0 && sw.saturations == 0);
        let (c_q, _) = qops::matmul_i16_i8(&a_q, &w_q, None, yw).unwrap();
        let c_f = ops::matrix_multiply(&a, &w_f).unwrap();
        let c_d = qops::dequantize_i16(&c_q, ya);
        // Floor-quantisation error per term: |a| * 2^-yw + |w| * 2^-ya, summed
        // over K = 3 inner terms, plus the output floor shift.
        let bound = 3.0 * (8.0 / (1 << yw) as f32 + 0.9 / (1 << ya) as f32) + 1.0 / (1 << ya) as f32;
        for (x, y) in c_f.as_slice().iter().zip(c_d.as_slice()) {
            prop_assert!((x - y).abs() < bound, "{x} vs {y} (bound {bound})");
        }
    }

    #[test]
    fn attention_rows_are_convex_combinations(
        q in mat_strategy(3, 2),
        k in mat_strategy(3, 2),
        v in mat_strategy(3, 2),
    ) {
        // Every output row of SDPA lies inside the [min, max] envelope of
        // V's columns because softmax weights are a convex combination.
        let sa = ops::scaled_dot_product_attention(&q, &k, &v).unwrap();
        for c in 0..2 {
            let lo = (0..3).map(|r| v[(r, c)]).fold(f32::INFINITY, f32::min);
            let hi = (0..3).map(|r| v[(r, c)]).fold(f32::NEG_INFINITY, f32::max);
            for r in 0..3 {
                prop_assert!(sa[(r, c)] >= lo - 1e-4);
                prop_assert!(sa[(r, c)] <= hi + 1e-4);
            }
        }
    }

    // ---- packed/blocked kernels vs naive reference oracles ----
    //
    // The packed fast paths must be *bit-identical* to the reference
    // kernels — same outputs AND same QuantStats — across arbitrary
    // shapes, explicitly including dimensions that are not multiples of
    // the panel width (NR = 8), the row blocking (MR = 4) or the k
    // blocking (KC = 256).

    #[test]
    fn packed_i16_i8_bit_identical_to_reference(
        m in 1usize..10,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0i32..1000,
        shift in 0u32..8,
        with_bias in proptest::any::<bool>(),
    ) {
        let a = Mat::from_fn(m, k, |r, c| {
            ((r as i32 * 131 + c as i32 * 37 + seed) % 8001 - 4000) as i16
        });
        let w = Mat::from_fn(k, n, |r, c| {
            ((r as i32 * 31 + c as i32 * 17 + seed) % 255 - 127) as i8
        });
        let bias: Vec<i32> = (0..n as i32).map(|j| (j * 7919 + seed) % 100_000 - 50_000).collect();
        let b = if with_bias { Some(bias.as_slice()) } else { None };
        let (c_ref, s_ref) = qops::reference::matmul_i16_i8(&a, &w, b, shift).unwrap();
        // Drop-in entry point (packs on the fly).
        let (c_new, s_new) = qops::matmul_i16_i8(&a, &w, b, shift).unwrap();
        prop_assert_eq!(&c_new, &c_ref);
        prop_assert_eq!(s_new, s_ref);
        // Pre-packed entry point.
        let p = PackedMat::pack(&w);
        let (c_pre, s_pre) = packed::matmul_i16_i8_packed(&a, &p, b, shift).unwrap();
        prop_assert_eq!(c_pre, c_ref);
        prop_assert_eq!(s_pre, s_ref);
    }

    #[test]
    fn packed_i16_i8_saturating_inputs_match(
        m in 1usize..4,
        k in 1usize..600,   // crosses the KC = 256 block boundary
        sign in proptest::any::<bool>(),
    ) {
        // Extremal operands drive the accumulator to its bounds and force
        // output saturation; stats must still match exactly.
        let a = Mat::filled(m, k, if sign { i16::MAX } else { i16::MIN });
        let w = Mat::filled(k, 3, i8::MIN);
        let (c_ref, s_ref) = qops::reference::matmul_i16_i8(&a, &w, None, 2).unwrap();
        let (c_new, s_new) = qops::matmul_i16_i8(&a, &w, None, 2).unwrap();
        prop_assert_eq!(c_new, c_ref);
        prop_assert_eq!(s_new, s_ref);
    }

    #[test]
    fn packed_i16_i16_bit_identical_to_reference(
        m in 1usize..10,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0i32..1000,
        shift in 0u32..8,
    ) {
        let a = Mat::from_fn(m, k, |r, c| {
            ((r as i32 * 57 + c as i32 * 23 + seed) % 60001 - 30000) as i16
        });
        let b = Mat::from_fn(k, n, |r, c| {
            ((r as i32 * 91 + c as i32 * 13 + seed * 3) % 60001 - 30000) as i16
        });
        let (c_ref, s_ref) = qops::reference::matmul_i16_i16(&a, &b, shift).unwrap();
        let (c_new, s_new) = qops::matmul_i16_i16(&a, &b, shift).unwrap();
        prop_assert_eq!(&c_new, &c_ref);
        prop_assert_eq!(s_new, s_ref);
        let p = PackedMat::pack(&b);
        let (c_pre, s_pre) = packed::matmul_i16_i16_packed(&a, &p, shift).unwrap();
        prop_assert_eq!(c_pre, c_ref);
        prop_assert_eq!(s_pre, s_ref);
    }

    #[test]
    fn packed_f32_bit_identical_to_reference(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let a = Mat::from_fn(m, k, |r, c| {
            let h = seed.wrapping_add((r * k + c) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 16.0
        });
        let b = Mat::from_fn(k, n, |r, c| {
            let h = seed.wrapping_add(0x1234).wrapping_add((r * n + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
        });
        let c_ref = ops::reference::matrix_multiply(&a, &b).unwrap();
        let c_new = ops::matrix_multiply(&a, &b).unwrap();
        for (x, y) in c_ref.as_slice().iter().zip(c_new.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let p = PackedMat::pack(&b);
        let c_pre = packed::matrix_multiply_packed(&a, &p).unwrap();
        for (x, y) in c_ref.as_slice().iter().zip(c_pre.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn pack_transposed_equals_pack_of_transpose(
        rows in 1usize..30,
        cols in 1usize..30,
        seed in 0i32..100,
    ) {
        let src = Mat::from_fn(rows, cols, |r, c| {
            ((r as i32 * 7 + c as i32 * 3 + seed) % 251 - 125) as i16
        });
        prop_assert_eq!(
            PackedMat::pack_transposed(&src),
            PackedMat::pack(&src.transpose())
        );
    }

    #[test]
    fn transpose_involution(m in mat_strategy(4, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn hstack_then_columns_recovers(a in mat_strategy(3, 2), b in mat_strategy(3, 4)) {
        let h = a.hstack(&b).unwrap();
        prop_assert_eq!(h.columns(0, 2), a);
        prop_assert_eq!(h.columns(2, 4), b);
    }
}
