//! Quick wall-clock comparison of the reference and packed kernels.
use kwt_tensor::{ops, packed, qops, Mat, PackedMat};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, mut f: F) -> f64 {
    for _ in 0..3 {
        f();
    }
    let t0 = Instant::now();
    let mut n = 0u64;
    while t0.elapsed().as_millis() < 250 {
        f();
        n += 1;
    }
    let ns = t0.elapsed().as_nanos() as f64 / n as f64;
    println!("{label:<40} {:.0} ns/iter", ns);
    ns
}

fn main() {
    for (m, k, n) in [
        (27usize, 12usize, 24usize),
        (27, 12, 36),
        (64, 64, 64),
        (128, 128, 128),
    ] {
        let a = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.1).sin());
        let b = Mat::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.07).cos() * 0.5);
        let (aq, _) = qops::quantize_i16(&a, 5);
        let (bq, _) = qops::quantize_i8(&b, 6);
        let (bq16, _) = qops::quantize_i16(&b, 6);
        let pb = PackedMat::pack(&bq);
        let pb16 = PackedMat::pack(&bq16);
        let pbf = PackedMat::pack(&b);
        println!("-- {m}x{k}x{n}");
        let t1 = time("i16i8 naive", || {
            black_box(
                qops::reference::matmul_i16_i8(black_box(&aq), black_box(&bq), None, 6).unwrap(),
            );
        });
        let t2 = time("i16i8 packed(pre)", || {
            black_box(
                packed::matmul_i16_i8_packed(black_box(&aq), black_box(&pb), None, 6).unwrap(),
            );
        });
        let t3 = time("i16i8 pack-on-fly", || {
            black_box(qops::matmul_i16_i8(black_box(&aq), black_box(&bq), None, 6).unwrap());
        });
        println!("   speedup pre={:.2}x onfly={:.2}x", t1 / t2, t1 / t3);
        let t1 = time("i16i16 naive", || {
            black_box(
                qops::reference::matmul_i16_i16(black_box(&aq), black_box(&bq16), 6).unwrap(),
            );
        });
        let t2 = time("i16i16 packed(pre)", || {
            black_box(packed::matmul_i16_i16_packed(black_box(&aq), black_box(&pb16), 6).unwrap());
        });
        println!("   speedup pre={:.2}x", t1 / t2);
        let t1 = time("f32 naive", || {
            black_box(ops::reference::matrix_multiply(black_box(&a), black_box(&b)).unwrap());
        });
        let t2 = time("f32 packed(pre)", || {
            black_box(packed::matrix_multiply_packed(black_box(&a), black_box(&pbf)).unwrap());
        });
        println!("   speedup pre={:.2}x", t1 / t2);
    }
}
