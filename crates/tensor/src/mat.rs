use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major 2-D matrix.
///
/// `Mat` is the only container type in the library — the paper's pipeline is
/// built entirely from rank-2 operands (spectrograms, token embeddings,
/// weight matrices, attention score matrices). Vectors are represented as
/// `1 x n` or `n x 1` matrices, or as plain slices for the in-place kernels.
///
/// # Example
///
/// ```
/// use kwt_tensor::Mat;
///
/// # fn main() -> Result<(), kwt_tensor::TensorError> {
/// let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Mat<T> {
    /// Creates a `rows x cols` matrix filled with `T::default()` (zero for
    /// all numeric types used in this crate).
    ///
    /// # Example
    /// ```
    /// let z = kwt_tensor::Mat::<f32>::zeros(2, 2);
    /// assert_eq!(z[(0, 1)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix filled with a single value.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBufferLength`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBufferLength {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Reshapes the matrix in place to `rows x cols`, reusing the backing
    /// buffer — no allocation when the new element count fits the existing
    /// capacity, which is what makes the `_into` kernels and the model
    /// scratch arenas allocation-free in steady state. Newly exposed
    /// elements are `T::default()`; surviving elements keep stale values,
    /// so callers must overwrite every element (every `_into` kernel does).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, T::default());
    }

    /// `true` if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the backing row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Option<&T> {
        if r < self.rows && c < self.cols {
            Some(&self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Checked mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> Option<&mut T> {
        if r < self.rows && c < self.cols {
            Some(&mut self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat<T> {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` element-wise, producing a new matrix (possibly of a
    /// different element type).
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Extracts the sub-matrix of columns `[start, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if `start + width > self.cols()`.
    pub fn columns(&self, start: usize, width: usize) -> Mat<T> {
        assert!(
            start + width <= self.cols,
            "column range {}..{} out of bounds ({} cols)",
            start,
            start + width,
            self.cols
        );
        Mat::from_fn(self.rows, width, |r, c| {
            self.data[r * self.cols + start + c]
        })
    }

    /// Stacks `self` on top of `other` (row-wise concatenation).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Mat<T>) -> Result<Mat<T>> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Mat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` and `other` side by side (column-wise).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if row counts differ.
    pub fn hstack(&self, other: &Mat<T>) -> Result<Mat<T>> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }
}

impl<T> Index<(usize, usize)> for Mat<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Mat<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.data[r * self.cols + c])?;
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Copy + Default> Default for Mat<T> {
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::<f32>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Mat::from_vec(2, 2, vec![1.0f32; 4]).is_ok());
        let err = Mat::from_vec(2, 2, vec![1.0f32; 3]).unwrap_err();
        assert!(matches!(err, TensorError::BadBufferLength { len: 3, .. }));
    }

    #[test]
    fn from_fn_row_major() {
        let m = Mat::from_fn(2, 3, |r, c| (10 * r + c) as i32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn indexing_and_rows() {
        let mut m = Mat::from_fn(2, 2, |r, c| (r + c) as i16);
        assert_eq!(m[(1, 1)], 2);
        m[(0, 1)] = 9;
        assert_eq!(m.row(0), &[0, 9]);
        m.row_mut(1)[0] = 7;
        assert_eq!(m[(1, 0)], 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Mat::<f32>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn get_is_checked() {
        let m = Mat::from_fn(2, 2, |r, c| r + c);
        assert_eq!(m.get(1, 1), Some(&2));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as i32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_changes_type() {
        let m = Mat::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let q = m.map(|x| x as i8);
        assert_eq!(q.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn columns_slice() {
        let m = Mat::from_fn(2, 6, |r, c| (r * 6 + c) as i32);
        let mid = m.columns(2, 2);
        assert_eq!(mid.as_slice(), &[2, 3, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "column range")]
    fn columns_out_of_range_panics() {
        let m = Mat::<i32>::zeros(2, 3);
        let _ = m.columns(2, 2);
    }

    #[test]
    fn vstack_and_hstack() {
        let a = Mat::from_fn(1, 2, |_, c| c as i32);
        let b = Mat::from_fn(2, 2, |r, c| (10 + r * 2 + c) as i32);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(0), &[0, 1]);
        assert_eq!(v.row(2), &[12, 13]);

        let h = b.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[10, 11, 10, 11]);

        assert!(a.hstack(&b).is_err());
        let wide = Mat::<i32>::zeros(1, 3);
        assert!(a.vstack(&wide).is_err());
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = Mat::from_fn(3, 2, |r, c| r * 2 + c);
        for (i, row) in m.iter_rows().enumerate() {
            assert_eq!(row, m.row(i));
        }
        assert_eq!(m.iter_rows().count(), 3);
    }

    #[test]
    fn resize_reuses_capacity() {
        let mut m = Mat::from_fn(4, 8, |r, c| (r * 8 + c) as i32);
        let cap = m.data.capacity();
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.data.capacity() >= cap, "shrinking must not reallocate");
        m.resize(4, 8);
        assert_eq!(m.shape(), (4, 8));
        // growing back within the original capacity keeps the buffer
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Mat::<f32>::zeros(0, 0);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mat<f32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
