//! Panel-packed weight layout and cache-blocked GEMM microkernels — the
//! fast path behind [`crate::ops::matrix_multiply`],
//! [`crate::qops::matmul_i16_i8`] and [`crate::qops::matmul_i16_i16`].
//!
//! # Why the naive kernels were slow
//!
//! The reference kernels (kept in [`crate::ops::reference`] and
//! [`crate::qops::reference`] as test oracles) walk the weight matrix
//! **column by column**: computing output element `(i, j)` reads
//! `w[(0, j)], w[(1, j)], …`, which for a row-major `K x N` matrix is a
//! stride-`N` access pattern — one cache line fetched per element, and no
//! opportunity for the compiler to vectorise the inner loop. The
//! quantised kernels additionally widened every product to `i64`
//! unconditionally, serialising the inner loop on 64-bit multiplies.
//!
//! # The packed layout
//!
//! [`PackedMat`] stores the weight operand transposed and **panel-packed**
//! once (at model-load time in the downstream crates): the `N` output
//! columns are grouped into panels of [`NR`] = 8, and within a panel the
//! entries are interleaved k-major:
//!
//! ```text
//! data[panel * K * NR + k * NR + j]  ==  W[(k, panel * NR + j)]
//! ```
//!
//! so the microkernel's inner loop reads **one contiguous `NR`-wide row
//! per k step** and keeps `NR` accumulators in registers. The last panel
//! is zero-padded; padded lanes have their own (discarded) accumulators
//! and never affect stored results.
//!
//! # Blocking and accumulator widths
//!
//! * `i16 x i8`: products are bounded by `2^22`, so up to [`KC`] = 256 of
//!   them fit an `i32` accumulator without overflow (`256 · 2^22 = 2^30`).
//!   The k loop therefore runs in blocks of `KC` with `NR` `i32`
//!   accumulators, widening the per-block partial sums into `i64` totals
//!   between blocks — the paper's exact `i64` semantics at a fraction of
//!   the cost.
//! * `i16 x i16`: a single product already reaches `2^30`, so two of them
//!   can overflow `i32`; the microkernel multiplies in `i32` (safe for one
//!   product) and widens every product into the `i64` lane accumulators.
//! * `f32`: floating-point addition is not associative, so the microkernel
//!   preserves the reference kernel's per-element accumulation order
//!   (ascending `k`) exactly — outputs are **bit-identical** to the
//!   reference, the speedup coming purely from contiguous reads and
//!   register-resident accumulators.
//!
//! Integer results and [`QuantStats`] are bit-identical to the reference
//! kernels by construction (integer addition is associative; `max_abs_acc`
//! and saturation checks are evaluated on the same final per-element
//! accumulator values) — `crates/tensor/tests/properties.rs` asserts this
//! across randomised shapes, including non-multiples of the block sizes.

use crate::qops::{sat_i16 as sat_i16_stats, QuantStats};
use crate::{Mat, Result, TensorError};

/// Panel width: number of output columns computed per microkernel pass.
pub const NR: usize = 8;

/// Row blocking: rows of `A` processed together by the float and
/// `i16 x i16` microkernels. Each row owns an independent set of `NR`
/// accumulators, so `MR` rows interleave `MR` independent dependency
/// chains and hide the accumulator add latency.
pub const MR: usize = 4;

/// k-blocking depth for the `i16 x i8` kernel: the largest number of
/// `i16·i8` products that cannot overflow an `i32` accumulator
/// (`KC · 2^22 ≤ 2^30 < i32::MAX`).
pub const KC: usize = 256;

/// A weight matrix repacked for the blocked microkernels: transposed and
/// panel-packed as described in the module docs.
///
/// Logically this is still the `K x N` operand `W` of `Y = X · W`; `get`
/// / `to_mat` recover the unpacked view for tests and serialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMat<T> {
    k: usize,
    n: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Default for PackedMat<T> {
    fn default() -> Self {
        PackedMat {
            k: 0,
            n: 0,
            data: Vec::new(),
        }
    }
}

impl<T: Copy + Default> PackedMat<T> {
    /// Packs a `K x N` row-major weight matrix.
    pub fn pack(w: &Mat<T>) -> Self {
        let mut out = PackedMat::default();
        out.pack_into(w);
        out
    }

    /// Re-packs a `K x N` row-major weight matrix into `self`, reusing the
    /// existing backing buffer — the allocation-free counterpart of
    /// [`PackedMat::pack`] for per-call packing inside scratch arenas.
    pub fn pack_into(&mut self, w: &Mat<T>) {
        let (k, n) = w.shape();
        let panels = n.div_ceil(NR.max(1));
        self.k = k;
        self.n = n;
        self.data.clear();
        self.data.resize(panels * k * NR, T::default());
        for p in 0..panels {
            let base = p * k * NR;
            let width = (n - p * NR).min(NR);
            for kk in 0..k {
                let wrow = w.row(kk);
                for j in 0..width {
                    self.data[base + kk * NR + j] = wrow[p * NR + j];
                }
            }
        }
    }

    /// Packs the **transpose** of an `N x K` row-major matrix, i.e. builds
    /// the packed form of the logical `K x N` operand `srcᵀ` while reading
    /// `src` row-contiguously. This is the cheap way to feed `Q Kᵀ`-style
    /// products: `pack_transposed(&k_mat)` packs `k_matᵀ` without
    /// materialising the transpose.
    pub fn pack_transposed(src: &Mat<T>) -> Self {
        let mut out = PackedMat::default();
        out.pack_transposed_into(src);
        out
    }

    /// [`PackedMat::pack_transposed`] into `self`, reusing the backing
    /// buffer (no allocation once the buffer has grown to the panel size).
    pub fn pack_transposed_into(&mut self, src: &Mat<T>) {
        let (n, k) = src.shape();
        let panels = n.div_ceil(NR.max(1));
        self.k = k;
        self.n = n;
        self.data.clear();
        self.data.resize(panels * k * NR, T::default());
        for p in 0..panels {
            let base = p * k * NR;
            let width = (n - p * NR).min(NR);
            for j in 0..width {
                let srow = src.row(p * NR + j);
                for (kk, &v) in srow.iter().enumerate() {
                    self.data[base + kk * NR + j] = v;
                }
            }
        }
    }

    /// Inner dimension `K` (rows of the logical weight matrix).
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Output dimension `N` (columns of the logical weight matrix).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// `(K, N)` of the logical weight matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Element `(k, j)` of the logical weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, k: usize, j: usize) -> T {
        assert!(k < self.k && j < self.n, "packed index out of range");
        self.data[(j / NR) * self.k * NR + k * NR + (j % NR)]
    }

    /// Reconstructs the unpacked `K x N` matrix.
    pub fn to_mat(&self) -> Mat<T> {
        Mat::from_fn(self.k, self.n, |k, j| self.get(k, j))
    }

    /// Borrow of one packed panel (`K * NR` entries, k-major).
    pub(crate) fn panel(&self, p: usize) -> &[T] {
        &self.data[p * self.k * NR..(p + 1) * self.k * NR]
    }

    pub(crate) fn panels(&self) -> usize {
        self.n.div_ceil(NR.max(1))
    }
}

fn check_inner(op: &'static str, a_shape: (usize, usize), w: (usize, usize)) -> Result<()> {
    if a_shape.1 != w.0 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a_shape,
            rhs: w,
        });
    }
    Ok(())
}

/// Blocked quantised affine map `Y = (A · W + bias) >> shift` over a
/// pre-packed weight operand. Semantics (including [`QuantStats`]) are
/// bit-identical to [`crate::qops::reference::matmul_i16_i8`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inner-dimension or
/// bias-length mismatch.
pub fn matmul_i16_i8_packed(
    a: &Mat<i16>,
    w: &PackedMat<i8>,
    bias: Option<&[i32]>,
    shift: u32,
) -> Result<(Mat<i16>, QuantStats)> {
    let mut out = Mat::default();
    let stats = matmul_i16_i8_packed_into(a, w, bias, shift, &mut out)?;
    Ok((out, stats))
}

/// [`matmul_i16_i8_packed`] writing into a caller-provided output matrix,
/// which is resized to `M x N` in place — allocation-free once the buffer
/// has grown to the largest shape it has seen.
///
/// # Errors
///
/// Same contract as [`matmul_i16_i8_packed`].
pub fn matmul_i16_i8_packed_into(
    a: &Mat<i16>,
    w: &PackedMat<i8>,
    bias: Option<&[i32]>,
    shift: u32,
    out: &mut Mat<i16>,
) -> Result<QuantStats> {
    check_inner("matmul_i16_i8", a.shape(), w.shape())?;
    if let Some(b) = bias {
        if b.len() != w.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_i16_i8 (bias)",
                lhs: (1, b.len()),
                rhs: w.shape(),
            });
        }
    }
    let (m, k, n) = (a.rows(), a.cols(), w.cols());
    let mut stats = QuantStats::default();
    out.resize(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for p in 0..w.panels() {
            let panel = w.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [0i64; NR];
            // k blocks of KC: partial sums stay in i32 (bound: KC · 2^22).
            let mut kk = 0;
            while kk < k {
                let kend = (kk + KC).min(k);
                let mut part = [0i32; NR];
                for (av, wrow) in arow[kk..kend]
                    .iter()
                    .zip(panel[kk * NR..kend * NR].chunks_exact(NR))
                {
                    let av = *av as i32;
                    for j in 0..NR {
                        part[j] += av * wrow[j] as i32;
                    }
                }
                for j in 0..NR {
                    acc[j] += part[j] as i64;
                }
                kk = kend;
            }
            for j in 0..width {
                let total = acc[j] + bias.map_or(0, |b| b[col0 + j] as i64);
                stats.max_abs_acc = stats.max_abs_acc.max(total.abs());
                orow[col0 + j] = sat_i16_stats(total >> shift, &mut stats);
            }
        }
    }
    Ok(stats)
}

/// Blocked quantised activation-activation product `Y = (A · B) >> shift`
/// over a pre-packed right operand. Semantics (including [`QuantStats`])
/// are bit-identical to [`crate::qops::reference::matmul_i16_i16`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols()` matches the
/// packed operand's inner dimension.
pub fn matmul_i16_i16_packed(
    a: &Mat<i16>,
    b: &PackedMat<i16>,
    shift: u32,
) -> Result<(Mat<i16>, QuantStats)> {
    let mut out = Mat::default();
    let stats = matmul_i16_i16_packed_into(a, b, shift, &mut out)?;
    Ok((out, stats))
}

/// [`matmul_i16_i16_packed`] writing into a caller-provided output matrix
/// (resized to `M x N` in place; allocation-free at steady state).
///
/// # Errors
///
/// Same contract as [`matmul_i16_i16_packed`].
pub fn matmul_i16_i16_packed_into(
    a: &Mat<i16>,
    b: &PackedMat<i16>,
    shift: u32,
    out: &mut Mat<i16>,
) -> Result<QuantStats> {
    check_inner("matmul_i16_i16", a.shape(), b.shape())?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut stats = QuantStats::default();
    out.resize(m, n);
    // A single i16·i16 product reaches 2^30, so per-block i32 accumulation
    // is not safe here: multiply in i32 (one product always fits) and widen
    // every product into i64 lanes. MR rows run together so the widening
    // adds form MR independent dependency chains.
    let mut i = 0;
    while i + MR <= m {
        let rows: [&[i16]; MR] = [a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3)];
        for p in 0..b.panels() {
            let panel = b.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [[0i64; NR]; MR];
            for (kk, brow) in panel.chunks_exact(NR).enumerate().take(k) {
                for r in 0..MR {
                    let av = rows[r][kk] as i32;
                    for j in 0..NR {
                        acc[r][j] += (av * brow[j] as i32) as i64;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                let orow = out.row_mut(i + r);
                for j in 0..width {
                    let total = acc_row[j];
                    stats.max_abs_acc = stats.max_abs_acc.max(total.abs());
                    orow[col0 + j] = sat_i16_stats(total >> shift, &mut stats);
                }
            }
        }
        i += MR;
    }
    while i < m {
        let arow = a.row(i);
        for p in 0..b.panels() {
            let panel = b.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [0i64; NR];
            for (av, brow) in arow.iter().zip(panel.chunks_exact(NR)).take(k) {
                let av = *av as i32;
                for j in 0..NR {
                    acc[j] += (av * brow[j] as i32) as i64;
                }
            }
            let orow = out.row_mut(i);
            for j in 0..width {
                let total = acc[j];
                stats.max_abs_acc = stats.max_abs_acc.max(total.abs());
                orow[col0 + j] = sat_i16_stats(total >> shift, &mut stats);
            }
        }
        i += 1;
    }
    Ok(stats)
}

/// Blocked float product `C = A · B` over a pre-packed right operand.
/// Bit-identical to [`crate::ops::reference::matrix_multiply`]: every
/// output element accumulates its products in ascending-`k` order, the
/// same order the reference uses, so no float reassociation occurs.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols()` matches the
/// packed operand's inner dimension.
pub fn matrix_multiply_packed(a: &Mat<f32>, b: &PackedMat<f32>) -> Result<Mat<f32>> {
    let mut out = Mat::default();
    matrix_multiply_packed_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matrix_multiply_packed`] writing into a caller-provided output matrix
/// (resized to `M x N` in place; allocation-free at steady state). Outputs
/// stay bit-identical to the reference kernel.
///
/// # Errors
///
/// Same contract as [`matrix_multiply_packed`].
pub fn matrix_multiply_packed_into(
    a: &Mat<f32>,
    b: &PackedMat<f32>,
    out: &mut Mat<f32>,
) -> Result<()> {
    check_inner("matrix_multiply", a.shape(), b.shape())?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    out.resize(m, n);
    // MR independent rows per pass hide the float-add latency; each output
    // element still accumulates in ascending-k order (bit-exactness).
    let mut i = 0;
    while i + MR <= m {
        let rows: [&[f32]; MR] = [a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3)];
        for p in 0..b.panels() {
            let panel = b.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [[0.0f32; NR]; MR];
            for (kk, brow) in panel.chunks_exact(NR).enumerate().take(k) {
                for r in 0..MR {
                    let av = rows[r][kk];
                    for j in 0..NR {
                        acc[r][j] += av * brow[j];
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out.row_mut(i + r)[col0..col0 + width].copy_from_slice(&acc_row[..width]);
            }
        }
        i += MR;
    }
    while i < m {
        let arow = a.row(i);
        for p in 0..b.panels() {
            let panel = b.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [0.0f32; NR];
            for (av, brow) in arow.iter().zip(panel.chunks_exact(NR)).take(k) {
                let av = *av;
                for j in 0..NR {
                    acc[j] += av * brow[j];
                }
            }
            out.row_mut(i)[col0..col0 + width].copy_from_slice(&acc[..width]);
        }
        i += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_i8(rows: usize, cols: usize, seed: i32) -> Mat<i8> {
        Mat::from_fn(rows, cols, |r, c| {
            ((r as i32 * 31 + c as i32 * 17 + seed) % 255 - 127) as i8
        })
    }

    fn mat_i16(rows: usize, cols: usize, seed: i32) -> Mat<i16> {
        Mat::from_fn(rows, cols, |r, c| {
            ((r as i32 * 131 + c as i32 * 37 + seed * 7) % 4001 - 2000) as i16
        })
    }

    #[test]
    fn pack_round_trips() {
        for (k, n) in [(1, 1), (3, 8), (12, 24), (5, 7), (17, 9), (300, 13)] {
            let w = mat_i8(k, n, 3);
            let p = PackedMat::pack(&w);
            assert_eq!(p.shape(), (k, n));
            assert_eq!(p.to_mat(), w);
        }
    }

    #[test]
    fn pack_transposed_matches_pack_of_transpose() {
        for (n, k) in [(4, 4), (7, 5), (27, 8), (1, 9)] {
            let src = mat_i16(n, k, 11);
            let a = PackedMat::pack_transposed(&src);
            let b = PackedMat::pack(&src.transpose());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn packed_get_matches_source() {
        let w = mat_i8(9, 11, 5);
        let p = PackedMat::pack(&w);
        for k in 0..9 {
            for j in 0..11 {
                assert_eq!(p.get(k, j), w[(k, j)]);
            }
        }
    }

    #[test]
    fn i16_i8_matches_reference_including_stats() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 2), (27, 12, 24), (5, 300, 7), (3, 257, 9)] {
            let a = mat_i16(m, k, 1);
            let w = mat_i8(k, n, 2);
            let bias: Vec<i32> = (0..n as i32).map(|j| j * 1000 - 500).collect();
            let p = PackedMat::pack(&w);
            for (b, shift) in [(None, 0u32), (Some(bias.as_slice()), 6)] {
                let (c_ref, s_ref) =
                    crate::qops::reference::matmul_i16_i8(&a, &w, b, shift).unwrap();
                let (c_new, s_new) = matmul_i16_i8_packed(&a, &p, b, shift).unwrap();
                assert_eq!(c_new, c_ref, "m={m} k={k} n={n} shift={shift}");
                assert_eq!(s_new, s_ref, "stats m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn i16_i16_matches_reference_including_stats() {
        for (m, k, n) in [(1, 1, 1), (27, 8, 27), (4, 65, 3), (2, 2, 17)] {
            let a = mat_i16(m, k, 3);
            let b = mat_i16(k, n, 4);
            let p = PackedMat::pack(&b);
            for shift in [0u32, 5] {
                let (c_ref, s_ref) = crate::qops::reference::matmul_i16_i16(&a, &b, shift).unwrap();
                let (c_new, s_new) = matmul_i16_i16_packed(&a, &p, shift).unwrap();
                assert_eq!(c_new, c_ref);
                assert_eq!(s_new, s_ref);
            }
        }
    }

    #[test]
    fn i16_i8_saturation_counted_like_reference() {
        let a = Mat::filled(1, 8, i16::MAX);
        let w = Mat::filled(8, 1, i8::MAX);
        let p = PackedMat::pack(&w);
        let (c, stats) = matmul_i16_i8_packed(&a, &p, None, 0).unwrap();
        assert_eq!(c[(0, 0)], i16::MAX);
        assert_eq!(stats.saturations, 1);
        assert!(stats.max_abs_acc > i16::MAX as i64);
    }

    #[test]
    fn kc_block_boundary_exact() {
        // K exactly at, below and above the i32 block depth.
        for k in [KC - 1, KC, KC + 1, 2 * KC + 3] {
            let a = Mat::filled(1, k, i16::MIN); // worst-case magnitude
            let w = Mat::filled(k, 1, i8::MIN);
            let p = PackedMat::pack(&w);
            let (c_ref, s_ref) = crate::qops::reference::matmul_i16_i8(&a, &w, None, 15).unwrap();
            let (c_new, s_new) = matmul_i16_i8_packed(&a, &p, None, 15).unwrap();
            assert_eq!(c_new, c_ref, "k={k}");
            assert_eq!(s_new, s_ref, "k={k}");
        }
    }

    #[test]
    fn f32_bit_identical_to_reference() {
        for (m, k, n) in [(1, 1, 1), (27, 12, 24), (9, 33, 7), (3, 100, 11)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.731).sin() * 3.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.377).cos() * 2.0);
            let p = PackedMat::pack(&b);
            let c_ref = crate::ops::reference::matrix_multiply(&a, &b).unwrap();
            let c_new = matrix_multiply_packed(&a, &p).unwrap();
            // Bit-identical, not approximately equal.
            for (x, y) in c_ref.as_slice().iter().zip(c_new.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_across_reused_buffers() {
        // One set of output/pack buffers reused across several shapes must
        // reproduce the allocating entry points exactly (stale contents
        // from a previous, larger shape must never leak through).
        let mut out16 = Mat::<i16>::default();
        let mut outf = Mat::<f32>::default();
        let mut packed8 = PackedMat::<i8>::default();
        let mut packed16 = PackedMat::<i16>::default();
        for (m, k, n) in [(9, 33, 17), (2, 3, 2), (27, 12, 24), (1, 1, 1)] {
            let a = mat_i16(m, k, 5);
            let w8 = mat_i8(k, n, 6);
            let b16 = mat_i16(k, n, 7);
            let af = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.31).sin());
            let bf = Mat::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.17).cos());

            packed8.pack_into(&w8);
            assert_eq!(packed8, PackedMat::pack(&w8));
            let (want, want_s) = matmul_i16_i8_packed(&a, &packed8, None, 4).unwrap();
            let got_s = matmul_i16_i8_packed_into(&a, &packed8, None, 4, &mut out16).unwrap();
            assert_eq!(out16, want);
            assert_eq!(got_s, want_s);

            packed16.pack_transposed_into(&b16.transpose());
            assert_eq!(packed16, PackedMat::pack(&b16));
            let (want, want_s) = matmul_i16_i16_packed(&a, &packed16, 3).unwrap();
            let got_s = matmul_i16_i16_packed_into(&a, &packed16, 3, &mut out16).unwrap();
            assert_eq!(out16, want);
            assert_eq!(got_s, want_s);

            let pf = PackedMat::pack(&bf);
            let want = matrix_multiply_packed(&af, &pf).unwrap();
            matrix_multiply_packed_into(&af, &pf, &mut outf).unwrap();
            assert_eq!(outf, want);
        }
    }

    #[test]
    fn shape_errors_propagate() {
        let a = Mat::<i16>::zeros(2, 3);
        let w = PackedMat::pack(&Mat::<i8>::zeros(4, 2));
        assert!(matmul_i16_i8_packed(&a, &w, None, 0).is_err());
        let w_ok = PackedMat::pack(&Mat::<i8>::zeros(3, 2));
        assert!(matmul_i16_i8_packed(&a, &w_ok, Some(&[0]), 0).is_err());
        let b = PackedMat::pack(&Mat::<i16>::zeros(4, 2));
        assert!(matmul_i16_i16_packed(&a, &b, 0).is_err());
        let f = PackedMat::pack(&Mat::<f32>::zeros(4, 2));
        assert!(matrix_multiply_packed(&Mat::<f32>::zeros(2, 3), &f).is_err());
    }
}
