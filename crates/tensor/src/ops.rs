//! Float (f32) kernels — the non-quantised flavour of the paper's Table VI
//! library. These are the reference semantics against which both the
//! quantised kernels ([`crate::qops`]) and the generated bare-metal RISC-V
//! programs (`kwt-baremetal`) are differentially tested.

use crate::math::gelu_exact;
use crate::{Mat, Result, TensorError};

/// Computes the mean and **population** variance of a vector
/// (paper: `computeMeanAndVariance()`, used by layer normalisation, eq. 4).
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
///
/// # Example
/// ```
/// let (m, v) = kwt_tensor::ops::compute_mean_and_variance(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// assert!((v - 2.0 / 3.0).abs() < 1e-6);
/// # Ok::<(), kwt_tensor::TensorError>(())
/// ```
pub fn compute_mean_and_variance(x: &[f32]) -> Result<(f32, f32)> {
    if x.is_empty() {
        return Err(TensorError::Empty {
            op: "compute_mean_and_variance",
        });
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    Ok((mean, var))
}

/// Normalises a vector in place and applies the learned scale and shift
/// (paper: `layerNorm()`, eqs. 4–5):
///
/// ```text
/// y_i = gamma_i * (x_i - mean) / sqrt(var + eps) + beta_i
/// ```
///
/// `eps` guards against zero variance; the paper's eq. (4) omits it but any
/// practical implementation (and Torch-KWT) includes one.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for empty input and
/// [`TensorError::ShapeMismatch`] when `gamma`/`beta` lengths differ from `x`.
pub fn layer_norm(x: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) -> Result<()> {
    if x.is_empty() {
        return Err(TensorError::Empty { op: "layer_norm" });
    }
    if gamma.len() != x.len() || beta.len() != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "layer_norm",
            lhs: (1, x.len()),
            rhs: (gamma.len(), beta.len()),
        });
    }
    let (mean, var) = compute_mean_and_variance(x)?;
    let inv_std = 1.0 / (var + eps).sqrt();
    for i in 0..x.len() {
        x[i] = gamma[i] * (x[i] - mean) * inv_std + beta[i];
    }
    Ok(())
}

/// Applies [`layer_norm`] independently to every row of a matrix.
pub fn layer_norm_rows(x: &mut Mat<f32>, gamma: &[f32], beta: &[f32], eps: f32) -> Result<()> {
    for r in 0..x.rows() {
        layer_norm(x.row_mut(r), gamma, beta, eps)?;
    }
    Ok(())
}

/// Dense matrix product `C = A * B` (paper: `matrixMultiply()`).
///
/// Packs `b` on the fly and runs the register-blocked microkernel of
/// [`crate::packed`]; outputs are bit-identical to the original streaming
/// kernel (kept as [`reference::matrix_multiply`]) because each output
/// element accumulates its products in the same ascending-`k` order.
/// Callers that reuse `b` across calls (weight matrices) should pack once
/// with [`crate::PackedMat::pack`] and use
/// [`crate::packed::matrix_multiply_packed`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.rows()`.
pub fn matrix_multiply(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matrix_multiply",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let packed = crate::PackedMat::pack(b);
    crate::packed::matrix_multiply_packed(a, &packed)
}

/// The original float kernels, kept as oracles for the packed fast paths.
pub mod reference {
    use crate::{Mat, Result, TensorError};

    /// The seed repository's streaming i-k-j product — the oracle for
    /// [`crate::packed::matrix_multiply_packed`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.rows()`.
    pub fn matrix_multiply(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>> {
        if a.cols() != b.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matrix_multiply",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Mat::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            let crow = c.row_mut(i);
            for (kk, &av) in arow.iter().enumerate().take(k) {
                let brow = b.row(kk);
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
        }
        Ok(c)
    }
}

/// In-place SoftMax over a vector, direct form of eq. (2):
/// `softmax(x)_i = exp(x_i) / sum_j exp(x_j)`.
///
/// Numerically fragile for large inputs — that is the point of the
/// normalised variant below, which the hardware uses. Kept for parity with
/// the paper's original C `Softmax()`.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for empty input.
pub fn softmax(x: &mut [f32]) -> Result<()> {
    if x.is_empty() {
        return Err(TensorError::Empty { op: "softmax" });
    }
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = v.exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
    Ok(())
}

/// In-place max-normalised SoftMax, eq. (10):
/// `softmax(x)_i = exp(x_i - max(x)) / sum_j exp(x_j - max(x))`.
///
/// Mathematically identical to [`softmax`] but with all exponents in
/// `(-inf, 0]`, which (a) never overflows and (b) constrains the fixed-point
/// LUT domain to `[0, 10)` in the accelerated kernel.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for empty input.
pub fn softmax_normalized(x: &mut [f32]) -> Result<()> {
    if x.is_empty() {
        return Err(TensorError::Empty {
            op: "softmax_normalized",
        });
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
    Ok(())
}

/// Applies exact GELU (eq. 7) element-wise in place
/// (paper: `gelu()`).
pub fn gelu(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = gelu_exact(*v);
    }
}

/// Affine map `Y = X * W + b` with the bias broadcast over rows
/// (paper: `linear()`, eq. 8).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.cols() != w.rows()` or
/// `b.len() != w.cols()`.
pub fn linear(x: &Mat<f32>, w: &Mat<f32>, b: &[f32]) -> Result<Mat<f32>> {
    if b.len() != w.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "linear",
            lhs: (1, b.len()),
            rhs: w.shape(),
        });
    }
    let mut y = matrix_multiply(x, w)?;
    for r in 0..y.rows() {
        let row = y.row_mut(r);
        for (j, bv) in b.iter().enumerate() {
            row[j] += bv;
        }
    }
    Ok(y)
}

/// [`linear`] over a pre-packed weight matrix — the amortised fast path
/// used by the model crates, which pack every weight once at load time.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.cols()` does not match the
/// packed inner dimension or `b.len() != w.cols()`.
pub fn linear_packed(x: &Mat<f32>, w: &crate::PackedMat<f32>, b: &[f32]) -> Result<Mat<f32>> {
    let mut y = Mat::default();
    linear_packed_into(x, w, b, &mut y)?;
    Ok(y)
}

/// [`linear_packed`] writing into a caller-provided output matrix (resized
/// in place; allocation-free at steady state) — the kernel behind the
/// model scratch arenas.
///
/// # Errors
///
/// Same contract as [`linear_packed`].
pub fn linear_packed_into(
    x: &Mat<f32>,
    w: &crate::PackedMat<f32>,
    b: &[f32],
    out: &mut Mat<f32>,
) -> Result<()> {
    if b.len() != w.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "linear",
            lhs: (1, b.len()),
            rhs: w.shape(),
        });
    }
    crate::packed::matrix_multiply_packed_into(x, w, out)?;
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for (j, bv) in b.iter().enumerate() {
            row[j] += bv;
        }
    }
    Ok(())
}

/// Splits the fused QKV projection output into per-head query, key and
/// value matrices (paper: `splitIntoQKV()`, eq. 3).
///
/// `x` has shape `S x (3 * heads * dim_head)` laid out `[Q | K | V]`, each
/// section holding `heads` contiguous blocks of `dim_head` columns. Returns
/// `(q, k, v)` where each is a `Vec` of `heads` matrices of shape
/// `S x dim_head`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if
/// `x.cols() != 3 * heads * dim_head`, and
/// [`TensorError::InvalidParameter`] if `heads == 0` or `dim_head == 0`.
#[allow(clippy::type_complexity)]
pub fn split_into_qkv(
    x: &Mat<f32>,
    heads: usize,
    dim_head: usize,
) -> Result<(Vec<Mat<f32>>, Vec<Mat<f32>>, Vec<Mat<f32>>)> {
    if heads == 0 || dim_head == 0 {
        return Err(TensorError::InvalidParameter {
            op: "split_into_qkv",
            what: format!("heads ({heads}) and dim_head ({dim_head}) must be positive"),
        });
    }
    if x.cols() != 3 * heads * dim_head {
        return Err(TensorError::ShapeMismatch {
            op: "split_into_qkv",
            lhs: x.shape(),
            rhs: (3 * heads, dim_head),
        });
    }
    let section = heads * dim_head;
    let mut q = Vec::with_capacity(heads);
    let mut k = Vec::with_capacity(heads);
    let mut v = Vec::with_capacity(heads);
    for h in 0..heads {
        q.push(x.columns(h * dim_head, dim_head));
        k.push(x.columns(section + h * dim_head, dim_head));
        v.push(x.columns(2 * section + h * dim_head, dim_head));
    }
    Ok((q, k, v))
}

/// Scaled dot-product attention for a single head, eq. (1):
/// `SA = softmax(Q K^T / sqrt(dim_head)) V`.
///
/// Uses the max-normalised softmax of eq. (10), matching both the float
/// reference in Torch-KWT and the accelerated fixed-point kernel.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `q`, `k` and `v` do not share
/// the shape `S x dim_head`.
pub fn scaled_dot_product_attention(q: &Mat<f32>, k: &Mat<f32>, v: &Mat<f32>) -> Result<Mat<f32>> {
    if q.shape() != k.shape() || k.shape() != v.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "scaled_dot_product_attention",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if q.cols() == 0 {
        return Err(TensorError::Empty {
            op: "scaled_dot_product_attention",
        });
    }
    let scale = 1.0 / (q.cols() as f32).sqrt();
    let mut scores = matrix_multiply(q, &k.transpose())?;
    for val in scores.as_mut_slice() {
        *val *= scale;
    }
    for r in 0..scores.rows() {
        softmax_normalized(scores.row_mut(r))?;
    }
    matrix_multiply(&scores, v)
}

/// Full multi-head self-attention on a fused QKV activation: splits into
/// heads, runs [`scaled_dot_product_attention`] per head and concatenates
/// the outputs to shape `S x (heads * dim_head)`.
///
/// # Errors
///
/// Propagates errors from [`split_into_qkv`] and
/// [`scaled_dot_product_attention`].
pub fn multi_head_attention(x_qkv: &Mat<f32>, heads: usize, dim_head: usize) -> Result<Mat<f32>> {
    let mut scores = Mat::default();
    let mut out = Mat::default();
    multi_head_attention_into(x_qkv, heads, dim_head, &mut scores, &mut out)?;
    Ok(out)
}

/// [`multi_head_attention`] over caller-provided score and output buffers
/// (both resized in place) — the allocation-free kernel behind the model
/// scratch arena. Reads the per-head `Q`/`K`/`V` blocks directly out of
/// the fused activation instead of materialising [`split_into_qkv`]'s
/// copies; every output element accumulates its products in the same
/// ascending order as the packed matmuls, so results are **bit-identical**
/// to [`multi_head_attention`]'s original split + per-head
/// [`scaled_dot_product_attention`] composition.
///
/// # Errors
///
/// Same contract as [`multi_head_attention`].
pub fn multi_head_attention_into(
    x_qkv: &Mat<f32>,
    heads: usize,
    dim_head: usize,
    scores: &mut Mat<f32>,
    out: &mut Mat<f32>,
) -> Result<()> {
    if heads == 0 || dim_head == 0 {
        return Err(TensorError::InvalidParameter {
            op: "split_into_qkv",
            what: format!("heads ({heads}) and dim_head ({dim_head}) must be positive"),
        });
    }
    if x_qkv.cols() != 3 * heads * dim_head {
        return Err(TensorError::ShapeMismatch {
            op: "split_into_qkv",
            lhs: x_qkv.shape(),
            rhs: (3 * heads, dim_head),
        });
    }
    let s = x_qkv.rows();
    let section = heads * dim_head;
    let scale = 1.0 / (dim_head as f32).sqrt();
    out.resize(s, section);
    scores.resize(s, s);
    for h in 0..heads {
        let qoff = h * dim_head;
        let koff = section + h * dim_head;
        let voff = 2 * section + h * dim_head;
        // scores = (Q Kᵀ) * 1/sqrt(dh), accumulating ascending over dh.
        for i in 0..s {
            for j in 0..s {
                let qrow = &x_qkv.row(i)[qoff..qoff + dim_head];
                let krow = &x_qkv.row(j)[koff..koff + dim_head];
                let mut acc = 0.0f32;
                for d in 0..dim_head {
                    acc += qrow[d] * krow[d];
                }
                scores[(i, j)] = acc * scale;
            }
        }
        for i in 0..s {
            softmax_normalized(scores.row_mut(i))?;
        }
        // out block = scores · V, accumulating ascending over the S keys.
        for i in 0..s {
            out.row_mut(i)[qoff..qoff + dim_head].fill(0.0);
        }
        for i in 0..s {
            for j in 0..s {
                let sij = scores[(i, j)];
                let vrow = &x_qkv.row(j)[voff..voff + dim_head];
                let orow = &mut out.row_mut(i)[qoff..qoff + dim_head];
                for d in 0..dim_head {
                    orow[d] += sij * vrow[d];
                }
            }
        }
    }
    Ok(())
}

/// Element-wise sum `a += b` (residual connection helper).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add_assign(a: &mut Mat<f32>, b: &Mat<f32>) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add_assign",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += *y;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn mean_variance_basic() {
        let (m, v) = compute_mean_and_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_close(m, 5.0, 1e-6);
        assert_close(v, 4.0, 1e-6);
    }

    #[test]
    fn mean_variance_constant_vector() {
        let (m, v) = compute_mean_and_variance(&[3.5; 17]).unwrap();
        assert_close(m, 3.5, 1e-6);
        assert_close(v, 0.0, 1e-9);
    }

    #[test]
    fn mean_variance_empty_errors() {
        assert!(matches!(
            compute_mean_and_variance(&[]),
            Err(TensorError::Empty { .. })
        ));
    }

    #[test]
    fn layer_norm_standardises() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let g = vec![1.0; 5];
        let b = vec![0.0; 5];
        layer_norm(&mut x, &g, &b, 0.0).unwrap();
        let (m, v) = compute_mean_and_variance(&x).unwrap();
        assert_close(m, 0.0, 1e-6);
        assert_close(v, 1.0, 1e-5);
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let mut x = vec![-1.0, 1.0];
        layer_norm(&mut x, &[2.0, 2.0], &[10.0, 20.0], 0.0).unwrap();
        // standardised input is [-1, 1]
        assert_close(x[0], 8.0, 1e-5);
        assert_close(x[1], 22.0, 1e-5);
    }

    #[test]
    fn layer_norm_shape_errors() {
        let mut x = vec![1.0, 2.0];
        assert!(layer_norm(&mut x, &[1.0], &[0.0, 0.0], 0.0).is_err());
        assert!(layer_norm(&mut x, &[1.0, 1.0], &[0.0], 0.0).is_err());
        let mut e: Vec<f32> = vec![];
        assert!(layer_norm(&mut e, &[], &[], 0.0).is_err());
    }

    #[test]
    fn layer_norm_rows_is_per_row() {
        let mut m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 30.0, 20.0, 10.0]).unwrap();
        layer_norm_rows(&mut m, &[1.0; 3], &[0.0; 3], 0.0).unwrap();
        // Both rows standardised independently: same magnitudes, mirrored.
        assert_close(m[(0, 0)], -m[(1, 0)], 1e-5);
        assert_close(m[(0, 2)], -m[(1, 2)], 1e-5);
    }

    #[test]
    fn matmul_identity() {
        let a = Mat::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Mat::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(matrix_multiply(&a, &id).unwrap(), a);
        assert_eq!(matrix_multiply(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matrix_multiply(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Mat::<f32>::zeros(2, 3);
        let b = Mat::<f32>::zeros(2, 3);
        assert!(matches!(
            matrix_multiply(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![0.1, 1.2, -3.0, 0.4];
        softmax(&mut x).unwrap();
        assert_close(x.iter().sum::<f32>(), 1.0, 1e-6);
        assert!(x.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_normalized_equals_plain() {
        let orig = vec![0.3, -0.7, 2.0, 0.0, 1.1];
        let mut a = orig.clone();
        let mut b = orig;
        softmax(&mut a).unwrap();
        softmax_normalized(&mut b).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_close(*x, *y, 1e-6);
        }
    }

    #[test]
    fn softmax_normalized_survives_large_inputs() {
        let mut x = vec![1000.0, 1001.0];
        softmax_normalized(&mut x).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        assert_close(x.iter().sum::<f32>(), 1.0, 1e-6);
        // plain form overflows to NaN here — that's why eq. (10) exists
        let mut y = vec![1000.0f32, 1001.0];
        softmax(&mut y).unwrap();
        assert!(y.iter().any(|v| !v.is_finite()));
    }

    #[test]
    fn softmax_empty_errors() {
        let mut e: Vec<f32> = vec![];
        assert!(softmax(&mut e).is_err());
        assert!(softmax_normalized(&mut e).is_err());
    }

    #[test]
    fn gelu_matches_scalar() {
        let mut x = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        let want: Vec<f32> = x.iter().map(|&v| gelu_exact(v)).collect();
        gelu(&mut x);
        assert_eq!(x, want);
    }

    #[test]
    fn linear_applies_bias() {
        let x = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let w = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = linear(&x, &w, &[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(y.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(y.row(1), &[14.0, 25.0, 36.0]);
    }

    #[test]
    fn linear_bias_shape_checked() {
        let x = Mat::<f32>::zeros(1, 2);
        let w = Mat::<f32>::zeros(2, 3);
        assert!(linear(&x, &w, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn split_qkv_layout() {
        // S=2, heads=2, dim_head=1 -> cols = 6, layout [Q0 Q1 | K0 K1 | V0 V1]
        let x = Mat::from_vec(
            2,
            6,
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, //
                7.0, 8.0, 9.0, 10.0, 11.0, 12.0,
            ],
        )
        .unwrap();
        let (q, k, v) = split_into_qkv(&x, 2, 1).unwrap();
        assert_eq!(q[0].as_slice(), &[1.0, 7.0]);
        assert_eq!(q[1].as_slice(), &[2.0, 8.0]);
        assert_eq!(k[0].as_slice(), &[3.0, 9.0]);
        assert_eq!(k[1].as_slice(), &[4.0, 10.0]);
        assert_eq!(v[0].as_slice(), &[5.0, 11.0]);
        assert_eq!(v[1].as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn split_qkv_validates() {
        let x = Mat::<f32>::zeros(2, 6);
        assert!(split_into_qkv(&x, 0, 1).is_err());
        assert!(split_into_qkv(&x, 1, 0).is_err());
        assert!(split_into_qkv(&x, 2, 2).is_err()); // needs 12 cols
    }

    #[test]
    fn attention_uniform_when_scores_equal() {
        // If Q K^T is constant, softmax rows are uniform and the output is
        // the mean of V's rows.
        let q = Mat::filled(3, 2, 0.0f32);
        let k = Mat::filled(3, 2, 1.0f32);
        let v = Mat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sa = scaled_dot_product_attention(&q, &k, &v).unwrap();
        for r in 0..3 {
            assert_close(sa[(r, 0)], 3.0, 1e-5);
            assert_close(sa[(r, 1)], 4.0, 1e-5);
        }
    }

    #[test]
    fn attention_selects_matching_key() {
        // One-hot queries with strongly separated keys ≈ row lookup of V.
        let big = 30.0;
        let q = Mat::from_vec(2, 2, vec![big, 0.0, 0.0, big]).unwrap();
        let k = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let v = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let sa = scaled_dot_product_attention(&q, &k, &v).unwrap();
        assert_close(sa[(0, 0)], 5.0, 1e-3);
        assert_close(sa[(1, 1)], 8.0, 1e-3);
    }

    #[test]
    fn attention_shape_checked() {
        let a = Mat::<f32>::zeros(2, 2);
        let b = Mat::<f32>::zeros(3, 2);
        assert!(scaled_dot_product_attention(&a, &b, &a).is_err());
        let e = Mat::<f32>::zeros(2, 0);
        assert!(scaled_dot_product_attention(&e, &e, &e).is_err());
    }

    #[test]
    fn multi_head_concatenates() {
        let x = Mat::from_fn(3, 6, |r, c| ((r + 1) * (c + 1)) as f32 * 0.1);
        let out = multi_head_attention(&x, 2, 1).unwrap();
        assert_eq!(out.shape(), (3, 2));
        // Head outputs must match running SDPA manually per head.
        let (q, k, v) = split_into_qkv(&x, 2, 1).unwrap();
        let h0 = scaled_dot_product_attention(&q[0], &k[0], &v[0]).unwrap();
        let h1 = scaled_dot_product_attention(&q[1], &k[1], &v[1]).unwrap();
        for r in 0..3 {
            assert_eq!(out[(r, 0)], h0[(r, 0)]);
            assert_eq!(out[(r, 1)], h1[(r, 0)]);
        }
    }

    #[test]
    fn add_assign_residual() {
        let mut a = Mat::filled(2, 2, 1.0f32);
        let b = Mat::filled(2, 2, 0.5f32);
        add_assign(&mut a, &b).unwrap();
        assert!(a.as_slice().iter().all(|&x| x == 1.5));
        let c = Mat::<f32>::zeros(2, 3);
        assert!(add_assign(&mut a, &c).is_err());
    }
}
