//! Host golden models of the bare-metal truncating soft-float ops.
//!
//! The `kwt-baremetal` crate generates an FPU-less soft-float library in
//! RV32 assembly (its `softfloat` module): round-toward-zero
//! (truncation) instead of round-to-nearest-even, denormal inputs and
//! underflowing results flush to signed zero, and NaNs behave like
//! infinities. The Xkwtdot `kfadd.t`/`kfsub.t`/`kfmul.t` instructions
//! execute **exactly** those semantics in one instruction, so a packed
//! kernel interleaves bit-identically with a scalar kernel that calls
//! the library routines.
//!
//! These functions are the single source of truth for that behaviour:
//! the simulator executes them directly, and the bare-metal crate's
//! differential tests assert the generated assembly matches them
//! bit-for-bit on random operands.

/// Truncating soft-float add (the generated `sf_add`).
pub fn add(a: u32, b: u32) -> u32 {
    let ta = a << 1; // magnitude, sign stripped
    let tb = b << 1;
    let ea = (ta >> 24) as i32;
    let eb = (tb >> 24) as i32;
    // zero/denormal operands: the other operand passes through
    if ea == 0 {
        return if eb == 0 { 0 } else { b };
    }
    if eb == 0 {
        return a;
    }
    // inf/NaN: x wins, else y
    if ea == 255 {
        return a;
    }
    if eb == 255 {
        return b;
    }
    // ensure |x| >= |y|
    let (x, y, mut ex, ey) = if ta < tb {
        (b, a, eb, ea)
    } else {
        (a, b, ea, eb)
    };
    // mantissas with implicit bit, pre-shifted left 3 (guard bits)
    let mx = ((x & 0x007F_FFFF) | 0x0080_0000) << 3;
    let my = ((y & 0x007F_FFFF) | 0x0080_0000) << 3;
    let d = (ex - ey) as u32;
    if d >= 27 {
        return x; // y negligible
    }
    let my = my >> d;
    let mut m;
    if (x ^ y) & 0x8000_0000 != 0 {
        // opposite-sign subtraction (|x| >= |y| so result >= 0)
        m = mx - my;
        if m == 0 {
            return 0; // exact cancellation -> +0
        }
        while m < (1 << 26) {
            m <<= 1;
            ex -= 1;
        }
    } else {
        m = mx + my;
        if m >= (1 << 27) {
            m >>= 1;
            ex += 1;
        }
    }
    let sign = x & 0x8000_0000;
    if ex <= 0 {
        return sign; // underflow flushes to signed zero
    }
    if ex >= 255 {
        return sign | 0x7F80_0000; // overflow to signed infinity
    }
    sign | ((ex as u32) << 23) | ((m >> 3) & 0x007F_FFFF)
}

/// Truncating soft-float subtract (the generated `sf_sub`: negate, add).
pub fn sub(a: u32, b: u32) -> u32 {
    add(a, b ^ 0x8000_0000)
}

/// Host golden model of the bare-metal `rsqrtf` (the math library's
/// `1/sqrt`): the magic-constant seed followed by three Newton
/// iterations, every float operation the truncating [`add`]/[`mul`] above
/// — the exact sequence the generated assembly executes, so results are
/// bit-identical to the device routine on every input (pinned by a
/// differential test in the bare-metal crate).
pub fn rsqrt(x: u32) -> u32 {
    let xhalf = mul(x, 0.5f32.to_bits());
    let mut y = 0x5F37_59DFu32.wrapping_sub(x >> 1);
    for _ in 0..3 {
        let t = mul(mul(y, y), xhalf);
        let s = add(1.5f32.to_bits(), t ^ 0x8000_0000);
        y = mul(s, y);
    }
    y
}

/// Truncating soft-float multiply (the generated `sf_mul`).
pub fn mul(a: u32, b: u32) -> u32 {
    let sgn = (a ^ b) & 0x8000_0000;
    let ea = (a << 1 >> 24) as i32;
    let eb = (b << 1 >> 24) as i32;
    // zero/denormal factors flush to signed zero (checked before inf,
    // so 0 * inf is signed zero — NaN-free arithmetic)
    if ea == 0 || eb == 0 {
        return sgn;
    }
    if ea == 255 || eb == 255 {
        return sgn | 0x7F80_0000;
    }
    let ma = ((a & 0x007F_FFFF) | 0x0080_0000) as u64;
    let mb = ((b & 0x007F_FFFF) | 0x0080_0000) as u64;
    let prod = ma * mb; // 48-bit product
    let mut e = ea + eb - 127;
    let m = if prod & (1 << 47) != 0 {
        e += 1;
        (prod >> 24) as u32
    } else {
        (prod >> 23) as u32
    };
    if e <= 0 {
        return sgn;
    }
    if e >= 255 {
        return sgn | 0x7F80_0000;
    }
    sgn | ((e as u32) << 23) | (m & 0x007F_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f32) -> u32 {
        x.to_bits()
    }

    #[test]
    fn exact_cases_match_ieee() {
        // Values whose sum/product is exactly representable truncate to
        // the same bits IEEE would produce.
        for (a, b) in [(1.5f32, 2.25f32), (-4.0, 0.5), (3.0, -3.0), (0.125, 8.0)] {
            assert_eq!(add(f(a), f(b)), f(a + b), "{a} + {b}");
            assert_eq!(sub(f(a), f(b)), f(a - b), "{a} - {b}");
            assert_eq!(mul(f(a), f(b)), f(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn truncation_rounds_toward_zero() {
        // 1 + 2^-24 is inexact: truncation keeps 1.0 exactly.
        let tiny = f32::from_bits(0x3380_0000); // 2^-24
        assert_eq!(add(f(1.0), f(tiny)), f(1.0));
        // IEEE nearest-even would round 1 + 1.5*2^-23 up; truncation
        // keeps the low bit clear.
        let v = add(f(1.0), f(1.5 * (2.0f32).powi(-23)));
        assert_eq!(v, 0x3F80_0001);
    }

    #[test]
    fn zeros_and_infinities() {
        assert_eq!(add(f(0.0), f(0.0)), 0);
        assert_eq!(add(f(-0.0), f(5.0)), f(5.0));
        assert_eq!(add(f(5.0), f(-5.0)), 0, "exact cancellation is +0");
        assert_eq!(mul(f(0.0), f(-3.0)), f(-0.0));
        let inf = f(f32::INFINITY);
        assert_eq!(add(inf, f(1.0)), inf);
        assert_eq!(mul(f(-2.0), inf), f(f32::NEG_INFINITY));
        // 0 * inf flushes to signed zero (zero checked first)
        assert_eq!(mul(f(0.0), inf), 0);
    }

    #[test]
    fn denormals_flush() {
        let denorm = 1u32; // smallest positive denormal
        assert_eq!(add(denorm, f(1.0)), f(1.0));
        assert_eq!(mul(denorm, f(2.0)), 0);
        // underflowing product flushes to signed zero
        let small = f(1.0e-30);
        assert_eq!(mul(small, f(-1.0e-30)), 0x8000_0000);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let big = f(3.0e38);
        assert_eq!(add(big, big), f(f32::INFINITY));
        assert_eq!(mul(big, f(-1.0e5)), f(f32::NEG_INFINITY));
    }
}
