//! Scalar special functions used by the transformer kernels.
//!
//! The standard library has no `erf`, so the Gauss error function is
//! implemented here with the Abramowitz & Stegun 7.1.26 rational
//! approximation evaluated in `f64` (absolute error < 1.5e-7, far below
//! `f32` resolution). GELU follows eq. (7) of the paper exactly:
//!
//! ```text
//! GELU(x) = x * 0.5 * (1 + erf(x / sqrt(2)))
//! ```

/// Gauss error function, evaluated in `f64` for accuracy, returned as `f32`.
///
/// Uses Abramowitz & Stegun formula 7.1.26 with `|error| < 1.5e-7`,
/// which is exact to within half a ULP for all `f32` inputs of interest.
///
/// # Example
/// ```
/// let e = kwt_tensor::math::erf(1.0);
/// assert!((e - 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f32) -> f32 {
    erf64(x as f64) as f32
}

/// `f64` Gauss error function (Abramowitz & Stegun 7.1.26).
pub fn erf64(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Exact GELU per eq. (7) of the paper: `x * Phi(x)` with the Gaussian CDF
/// expressed through [`erf`].
///
/// # Example
/// ```
/// use kwt_tensor::math::gelu_exact;
/// assert_eq!(gelu_exact(0.0), 0.0);
/// assert!((gelu_exact(1.0) - 0.8413447).abs() < 1e-5);
/// ```
pub fn gelu_exact(x: f32) -> f32 {
    let xf = x as f64;
    (xf * 0.5 * (1.0 + erf64(xf / std::f64::consts::SQRT_2))) as f32
}

/// The `tanh` GELU approximation popularised by BERT/GPT
/// (`0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))`).
///
/// Kept as an ablation reference point next to the paper's LUT
/// approximation; not used by the inference pipeline.
pub fn gelu_tanh(x: f32) -> f32 {
    let xf = x as f64;
    let c = (2.0 / std::f64::consts::PI).sqrt();
    (0.5 * xf * (1.0 + (c * (xf + 0.044715 * xf * xf * xf)).tanh())) as f32
}

/// Derivative of exact GELU: `Phi(x) + x * phi(x)` where `phi` is the
/// standard normal PDF. Used by the training crate's backward pass.
pub fn gelu_exact_derivative(x: f32) -> f32 {
    let xf = x as f64;
    let phi = (-(xf * xf) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cdf = 0.5 * (1.0 + erf64(xf / std::f64::consts::SQRT_2));
    (cdf + xf * phi) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference erf values from standard tables.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.5, 0.5204998778),
        (1.0, 0.8427007929),
        (1.5, 0.9661051465),
        (2.0, 0.9953222650),
        (3.0, 0.9999779095),
    ];

    #[test]
    fn erf_matches_tables() {
        for &(x, want) in ERF_TABLE {
            assert!(
                (erf64(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf64(x)
            );
            assert!(
                (erf64(-x) + want).abs() < 2e-7,
                "erf is odd: erf(-{x}) = {}",
                erf64(-x)
            );
        }
    }

    #[test]
    fn erf_saturates() {
        assert!((erf(6.0) - 1.0).abs() < 1e-7);
        assert!((erf(-6.0) + 1.0).abs() < 1e-7);
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_exact(0.0), 0.0);
        // GELU(1) = 1 * Phi(1) = 0.841344746...
        assert!((gelu_exact(1.0) - 0.8413447).abs() < 1e-5);
        // GELU(-1) = -1 * Phi(-1) = -0.158655...
        assert!((gelu_exact(-1.0) + 0.1586553).abs() < 1e-5);
    }

    #[test]
    fn gelu_asymptotes() {
        // For large |x| GELU approaches x (right) and 0 (left) — the fact the
        // paper's piecewise clip exploits (thresholds 1.595 / -1.857).
        assert!((gelu_exact(5.0) - 5.0).abs() < 1e-4);
        assert!(gelu_exact(-5.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_tanh_close_to_exact() {
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            assert!(
                (gelu_tanh(x) - gelu_exact(x)).abs() < 4e-3,
                "tanh approx far from exact at {x}"
            );
        }
    }

    #[test]
    fn gelu_derivative_matches_finite_difference() {
        let h = 1e-3f64;
        for i in -30..=30 {
            let x = i as f64 * 0.13;
            let num =
                (gelu_exact((x + h) as f32) as f64 - gelu_exact((x - h) as f32) as f64) / (2.0 * h);
            let ana = gelu_exact_derivative(x as f32) as f64;
            assert!(
                (num - ana).abs() < 1e-3,
                "dGELU mismatch at {x}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn gelu_is_monotone_above_minimum() {
        // GELU has a single minimum near x = -0.7518; monotone either side.
        let mut prev = gelu_exact(-0.75);
        for i in 1..100 {
            let x = -0.75 + i as f32 * 0.05;
            let y = gelu_exact(x);
            assert!(y >= prev - 1e-6, "not increasing at {x}");
            prev = y;
        }
    }
}
