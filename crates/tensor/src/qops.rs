//! Quantised integer kernels — the INT8-weight / INT16-residual flavour of
//! the paper's library (§IV).
//!
//! The scheme is *post-training static quantisation with power-of-two
//! scales* (eq. 9): a float value `x` is stored as `floor(x * 2^y)` where
//! the exponent `y` differs between weights and activations (Table V shows
//! why: weights live in `[-1, 1]`, MFCC inputs reach hundreds). Because
//! every scale is a power of two, every rescaling in the integer pipeline
//! is a bit shift — the whole point of the scheme on a core with a
//! 37-cycle divider.
//!
//! Conventions used throughout this crate and the downstream model /
//! bare-metal crates:
//!
//! * **weights**: `i8`, scale `2^yw`
//! * **activations / residuals**: `i16`, scale `2^ya`
//! * **accumulators**: `i32` (weights path) or `i64` (activation-activation
//!   path), with saturation on narrowing
//! * an activation × weight product sits at scale `2^(ya+yw)`; shifting
//!   right by `yw` returns it to the activation scale.
//!
//! All kernels report [`QuantStats`] so experiments can attribute accuracy
//! collapse (Table V, row 64/64) to saturation/overflow rather than
//! rounding.

use crate::{Mat, Result, TensorError};

/// Saturation / range diagnostics accumulated by the integer kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantStats {
    /// Number of values clamped while narrowing to the output type.
    pub saturations: usize,
    /// Largest absolute accumulator value observed (pre-shift).
    pub max_abs_acc: i64,
}

impl QuantStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: QuantStats) {
        self.saturations += other.saturations;
        self.max_abs_acc = self.max_abs_acc.max(other.max_abs_acc);
    }
}

#[inline]
pub(crate) fn sat_i16(v: i64, stats: &mut QuantStats) -> i16 {
    if v > i16::MAX as i64 {
        stats.saturations += 1;
        i16::MAX
    } else if v < i16::MIN as i64 {
        stats.saturations += 1;
        i16::MIN
    } else {
        v as i16
    }
}

#[inline]
fn sat_i8(v: i64, stats: &mut QuantStats) -> i8 {
    if v > i8::MAX as i64 {
        stats.saturations += 1;
        i8::MAX
    } else if v < i8::MIN as i64 {
        stats.saturations += 1;
        i8::MIN
    } else {
        v as i8
    }
}

/// Quantises floats to `i8` at scale `2^y` using the paper's
/// floor rule (eq. 9): `W_int = floor(W_float * 2^y)`, saturated.
///
/// Returns the quantised matrix and saturation statistics.
pub fn quantize_i8(x: &Mat<f32>, y: u32) -> (Mat<i8>, QuantStats) {
    let scale = (1i64 << y) as f32;
    let mut stats = QuantStats::default();
    let out = x.map(|v| sat_i8((v * scale).floor() as i64, &mut stats));
    (out, stats)
}

/// Quantises floats to `i16` at scale `2^y` (floor rule, saturated).
pub fn quantize_i16(x: &Mat<f32>, y: u32) -> (Mat<i16>, QuantStats) {
    let mut out = Mat::default();
    let stats = quantize_i16_into(x, y, &mut out);
    (out, stats)
}

/// [`quantize_i16`] writing into a caller-provided matrix (resized in
/// place; allocation-free at steady state).
pub fn quantize_i16_into(x: &Mat<f32>, y: u32, out: &mut Mat<i16>) -> QuantStats {
    let scale = (1i64 << y) as f32;
    let mut stats = QuantStats::default();
    out.resize(x.rows(), x.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = sat_i16((v * scale).floor() as i64, &mut stats);
    }
    stats
}

/// Quantises a float slice to `i16` in place-free form (floor, saturated).
pub fn quantize_slice_i16(x: &[f32], y: u32) -> (Vec<i16>, QuantStats) {
    let scale = (1i64 << y) as f32;
    let mut stats = QuantStats::default();
    let out = x
        .iter()
        .map(|&v| sat_i16((v * scale).floor() as i64, &mut stats))
        .collect();
    (out, stats)
}

/// Dequantises an `i16` matrix back to floats: `x / 2^y`.
pub fn dequantize_i16(x: &Mat<i16>, y: u32) -> Mat<f32> {
    let mut out = Mat::default();
    dequantize_i16_into(x, y, &mut out);
    out
}

/// [`dequantize_i16`] writing into a caller-provided matrix (resized in
/// place; allocation-free at steady state).
pub fn dequantize_i16_into(x: &Mat<i16>, y: u32, out: &mut Mat<f32>) {
    let inv = 1.0 / (1i64 << y) as f32;
    out.resize(x.rows(), x.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = v as f32 * inv;
    }
}

/// Dequantises an `i8` matrix back to floats: `x / 2^y`.
pub fn dequantize_i8(x: &Mat<i8>, y: u32) -> Mat<f32> {
    let inv = 1.0 / (1i64 << y) as f32;
    x.map(|v| v as f32 * inv)
}

/// Quantised affine map: `Y = (A * W + bias) >> shift`, saturated to `i16`.
///
/// * `a` — activations, `i16` at scale `2^ya`, shape `S x K`
/// * `w` — weights, `i8` at scale `2^yw`, shape `K x N`
/// * `bias` — optional, `i32` at the **combined** scale `2^(ya+yw)`
/// * `shift` — normally `yw`, returning the result to the activation scale
///
/// Accumulation is exact (equivalent to full `i64`); only the final
/// narrowing saturates, and the shift is an arithmetic (floor) shift
/// exactly as on the RV32 target.
///
/// This entry point packs the weight operand on the fly and runs the
/// cache-blocked microkernel of [`crate::packed`]; callers that reuse a
/// weight matrix should pack once with [`crate::PackedMat::pack`] and call
/// [`crate::packed::matmul_i16_i8_packed`] directly. The original naive
/// kernel survives as [`reference::matmul_i16_i8`], the oracle the packed
/// path is equivalence-tested against.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inner-dimension or bias-length
/// mismatch.
pub fn matmul_i16_i8(
    a: &Mat<i16>,
    w: &Mat<i8>,
    bias: Option<&[i32]>,
    shift: u32,
) -> Result<(Mat<i16>, QuantStats)> {
    if a.cols() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_i16_i8",
            lhs: a.shape(),
            rhs: w.shape(),
        });
    }
    let packed = crate::PackedMat::pack(w);
    crate::packed::matmul_i16_i8_packed(a, &packed, bias, shift)
}

/// Quantised activation-activation product (used for `Q K^T` and
/// `scores x V`): `Y = (A * B) >> shift`, saturated to `i16`.
///
/// Both operands are `i16`; accumulation is exact (equivalent to full
/// `i64`) — saturation happens only at the output, mirroring a careful
/// hardware implementation.
///
/// Packs `b` on the fly into the blocked layout of [`crate::packed`]; the
/// naive kernel survives as [`reference::matmul_i16_i16`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.rows()`.
pub fn matmul_i16_i16(a: &Mat<i16>, b: &Mat<i16>, shift: u32) -> Result<(Mat<i16>, QuantStats)> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_i16_i16",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let packed = crate::PackedMat::pack(b);
    crate::packed::matmul_i16_i16_packed(a, &packed, shift)
}

/// The original textbook i-j-k kernels, kept verbatim as the oracles the
/// packed/blocked fast paths (in [`crate::packed`]) are equivalence-tested
/// against. Not used on any hot path.
pub mod reference {
    use super::{sat_i16, QuantStats};
    use crate::{Mat, Result, TensorError};

    /// Naive `Y = (A * W + bias) >> shift` with unconditional `i64`
    /// accumulation — the oracle for
    /// [`crate::packed::matmul_i16_i8_packed`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on inner-dimension or
    /// bias-length mismatch.
    pub fn matmul_i16_i8(
        a: &Mat<i16>,
        w: &Mat<i8>,
        bias: Option<&[i32]>,
        shift: u32,
    ) -> Result<(Mat<i16>, QuantStats)> {
        if a.cols() != w.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_i16_i8",
                lhs: a.shape(),
                rhs: w.shape(),
            });
        }
        if let Some(b) = bias {
            if b.len() != w.cols() {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul_i16_i8 (bias)",
                    lhs: (1, b.len()),
                    rhs: w.shape(),
                });
            }
        }
        let (m, k, n) = (a.rows(), a.cols(), w.cols());
        let mut stats = QuantStats::default();
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            for j in 0..n {
                let mut acc: i64 = bias.map_or(0, |b| b[j] as i64);
                for kk in 0..k {
                    acc += arow[kk] as i64 * w[(kk, j)] as i64;
                }
                stats.max_abs_acc = stats.max_abs_acc.max(acc.abs());
                out[(i, j)] = sat_i16(acc >> shift, &mut stats);
            }
        }
        Ok((out, stats))
    }

    /// Naive `Y = (A * B) >> shift` with unconditional `i64` accumulation
    /// — the oracle for [`crate::packed::matmul_i16_i16_packed`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.rows()`.
    pub fn matmul_i16_i16(
        a: &Mat<i16>,
        b: &Mat<i16>,
        shift: u32,
    ) -> Result<(Mat<i16>, QuantStats)> {
        if a.cols() != b.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_i16_i16",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut stats = QuantStats::default();
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            for j in 0..n {
                let mut acc: i64 = 0;
                for kk in 0..k {
                    acc += arow[kk] as i64 * b[(kk, j)] as i64;
                }
                stats.max_abs_acc = stats.max_abs_acc.max(acc.abs());
                out[(i, j)] = sat_i16(acc >> shift, &mut stats);
            }
        }
        Ok((out, stats))
    }
}

/// Saturating element-wise residual add `a += b` on `i16` matrices.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add_assign_sat(a: &mut Mat<i16>, b: &Mat<i16>) -> Result<QuantStats> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add_assign_sat",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut stats = QuantStats::default();
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x = sat_i16(*x as i64 + *y as i64, &mut stats);
    }
    Ok(stats)
}

// ---------------------------------------------------------------------
// Fully-INT8 (A8W8) kernels: i8 activations at signed power-of-two
// exponents. These scalar routines are the host oracle of the Xkwtdot
// `kdot4.i8` device kernels, so they reproduce the device arithmetic
// exactly: wrapping i32 accumulation, arithmetic right shift, clamp to
// the i8 range (the device's `ksat.i16` + `kclip 7` epilogue).
// ---------------------------------------------------------------------

/// Quantises floats to `i8` at scale `2^y` where the exponent may be
/// **negative** (scales below one absorb large-magnitude tensors such as
/// raw MFCC inputs): `floor(x * 2^y)` saturated to the i8 range.
pub fn quantize_i8_scaled_into(x: &Mat<f32>, y: i32, out: &mut Mat<i8>) -> QuantStats {
    let scale = (y as f64).exp2() as f32;
    let mut stats = QuantStats::default();
    out.resize(x.rows(), x.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = sat_i8((v * scale).floor() as i64, &mut stats);
    }
    stats
}

/// [`quantize_i8_scaled_into`] over a slice, returning a fresh vector.
pub fn quantize_slice_i8_scaled(x: &[f32], y: i32) -> (Vec<i8>, QuantStats) {
    let scale = (y as f64).exp2() as f32;
    let mut stats = QuantStats::default();
    let out = x
        .iter()
        .map(|&v| sat_i8((v * scale).floor() as i64, &mut stats))
        .collect();
    (out, stats)
}

/// Dequantises an `i8` matrix at a signed exponent: `x * 2^-y`.
///
/// Exact for every i8 input (the product is a small integer times a
/// power of two), so host and device agree bit-for-bit.
pub fn dequantize_i8_scaled_into(x: &Mat<i8>, y: i32, out: &mut Mat<f32>) {
    let inv = (-(y as f64)).exp2() as f32;
    out.resize(x.rows(), x.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = v as f32 * inv;
    }
}

/// Saturating element-wise residual add `a += b` on `i8` matrices — the
/// host model of the device's `add` + `kclip 7` loop.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add_assign_sat_i8(a: &mut Mat<i8>, b: &Mat<i8>) -> Result<QuantStats> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add_assign_sat_i8",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut stats = QuantStats::default();
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x = sat_i8(*x as i64 + *y as i64, &mut stats);
    }
    Ok(stats)
}

/// Fully-INT8 affine map `Y = (A * W + bias) >> shift`, saturated to `i8`.
///
/// * `a` — activations, `i8`, shape `M x K`
/// * `w` — weights, `i8`, shape `K x N`
/// * `bias` — optional `i32` at the combined input×weight scale
/// * `shift` — arithmetic right shift returning the product to the output
///   activation scale
///
/// Accumulation is **wrapping `i32`**, exactly the device's
/// `kdot4.i8` register accumulator (at KWT scales the accumulator never
/// wraps — `K·127² « 2³¹` — but the oracle must define the same
/// arithmetic for adversarial shapes too). The epilogue clamps to the i8
/// range like the device's `ksat.i16` + `kclip 7` pair.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inner-dimension or
/// bias-length mismatch.
pub fn matmul_i8_i8(
    a: &Mat<i8>,
    w: &Mat<i8>,
    bias: Option<&[i32]>,
    shift: u32,
) -> Result<(Mat<i8>, QuantStats)> {
    let mut out = Mat::default();
    let stats = matmul_i8_i8_into(a, w, bias, shift, &mut out)?;
    Ok((out, stats))
}

/// [`matmul_i8_i8`] writing into a caller-provided matrix (resized in
/// place; allocation-free at steady state).
///
/// # Errors
///
/// Same contract as [`matmul_i8_i8`].
pub fn matmul_i8_i8_into(
    a: &Mat<i8>,
    w: &Mat<i8>,
    bias: Option<&[i32]>,
    shift: u32,
    out: &mut Mat<i8>,
) -> Result<QuantStats> {
    if a.cols() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_i8_i8",
            lhs: a.shape(),
            rhs: w.shape(),
        });
    }
    if let Some(b) = bias {
        if b.len() != w.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_i8_i8 (bias)",
                lhs: (1, b.len()),
                rhs: w.shape(),
            });
        }
    }
    let (m, k, n) = (a.rows(), a.cols(), w.cols());
    let mut stats = QuantStats::default();
    out.resize(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc: i32 = bias.map_or(0, |b| b[j]);
            for kk in 0..k {
                acc = acc.wrapping_add(arow[kk] as i32 * w[(kk, j)] as i32);
            }
            stats.max_abs_acc = stats.max_abs_acc.max((acc as i64).abs());
            out[(i, j)] = sat_i8((acc >> shift) as i64, &mut stats);
        }
    }
    Ok(stats)
}

/// Splits a fused quantised QKV activation into per-head `(q, k, v)`
/// matrices, mirroring [`crate::ops::split_into_qkv`].
///
/// # Errors
///
/// Same contract as the float version.
#[allow(clippy::type_complexity)]
pub fn split_into_qkv_i16(
    x: &Mat<i16>,
    heads: usize,
    dim_head: usize,
) -> Result<(Vec<Mat<i16>>, Vec<Mat<i16>>, Vec<Mat<i16>>)> {
    if heads == 0 || dim_head == 0 {
        return Err(TensorError::InvalidParameter {
            op: "split_into_qkv_i16",
            what: format!("heads ({heads}) and dim_head ({dim_head}) must be positive"),
        });
    }
    if x.cols() != 3 * heads * dim_head {
        return Err(TensorError::ShapeMismatch {
            op: "split_into_qkv_i16",
            lhs: x.shape(),
            rhs: (3 * heads, dim_head),
        });
    }
    let section = heads * dim_head;
    let mut q = Vec::with_capacity(heads);
    let mut k = Vec::with_capacity(heads);
    let mut v = Vec::with_capacity(heads);
    for h in 0..heads {
        q.push(x.columns(h * dim_head, dim_head));
        k.push(x.columns(section + h * dim_head, dim_head));
        v.push(x.columns(2 * section + h * dim_head, dim_head));
    }
    Ok((q, k, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn quantize_floor_rule() {
        let m = Mat::from_vec(1, 4, vec![0.49, -0.49, 0.51, -0.51]).unwrap();
        let (q, stats) = quantize_i8(&m, 3); // scale 8
                                             // floor(0.49*8)=3, floor(-0.49*8)=floor(-3.92)=-4
        assert_eq!(q.as_slice(), &[3, -4, 4, -5]);
        assert_eq!(stats.saturations, 0);
    }

    #[test]
    fn quantize_saturates_and_counts() {
        let m = Mat::from_vec(1, 3, vec![100.0, -100.0, 0.5]).unwrap();
        let (q, stats) = quantize_i8(&m, 3);
        assert_eq!(q.as_slice(), &[127, -128, 4]);
        assert_eq!(stats.saturations, 2);

        let (q16, s16) = quantize_i16(&m, 12); // 100*4096 overflows i16
        assert_eq!(q16.as_slice()[0], i16::MAX);
        assert_eq!(q16.as_slice()[1], i16::MIN);
        assert_eq!(s16.saturations, 2);
    }

    #[test]
    fn dequantize_round_trip_error_bounded() {
        let m = Mat::from_fn(4, 4, |r, c| (r as f32 - 1.5) * 0.13 + c as f32 * 0.01);
        let y = 6;
        let (q, _) = quantize_i16(&m, y);
        let back = dequantize_i16(&q, y);
        // floor quantisation: error in [0, 2^-y)
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            let err = a - b;
            assert!((0.0..1.0 / 64.0 + 1e-6).contains(&err), "err {err}");
        }
    }

    #[test]
    fn matmul_q_matches_float_within_quant_error() {
        let a_f = Mat::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let w_f = Mat::from_fn(4, 2, |r, c| ((r * 2 + c) as f32 * 0.21).cos() * 0.5);
        let ya = 8;
        let yw = 6;
        let (a_q, _) = quantize_i16(&a_f, ya);
        let (w_q, _) = quantize_i8(&w_f, yw);
        let (c_q, stats) = matmul_i16_i8(&a_q, &w_q, None, yw).unwrap();
        let c_f = ops::matrix_multiply(&a_f, &w_f).unwrap();
        let c_deq = dequantize_i16(&c_q, ya);
        for (x, y) in c_f.as_slice().iter().zip(c_deq.as_slice()) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
        assert_eq!(stats.saturations, 0);
    }

    #[test]
    fn matmul_q_bias_at_combined_scale() {
        // 1x1 case: a=2 (scale 1), w=3 (scale 1), bias=5 at combined scale,
        // shift 0 -> 2*3+5 = 11
        let a = Mat::from_vec(1, 1, vec![2i16]).unwrap();
        let w = Mat::from_vec(1, 1, vec![3i8]).unwrap();
        let (c, _) = matmul_i16_i8(&a, &w, Some(&[5]), 0).unwrap();
        assert_eq!(c[(0, 0)], 11);
    }

    #[test]
    fn matmul_q_shift_is_arithmetic_floor() {
        let a = Mat::from_vec(1, 1, vec![-3i16]).unwrap();
        let w = Mat::from_vec(1, 1, vec![1i8]).unwrap();
        let (c, _) = matmul_i16_i8(&a, &w, None, 1).unwrap();
        // -3 >> 1 = -2 (floor), not -1 (truncate)
        assert_eq!(c[(0, 0)], -2);
    }

    #[test]
    fn matmul_q_saturation_detected() {
        let a = Mat::filled(1, 8, i16::MAX);
        let w = Mat::filled(8, 1, i8::MAX);
        let (c, stats) = matmul_i16_i8(&a, &w, None, 0).unwrap();
        assert_eq!(c[(0, 0)], i16::MAX);
        assert_eq!(stats.saturations, 1);
        assert!(stats.max_abs_acc > i16::MAX as i64);
    }

    #[test]
    fn matmul_q_shape_errors() {
        let a = Mat::<i16>::zeros(2, 3);
        let w = Mat::<i8>::zeros(2, 3);
        assert!(matmul_i16_i8(&a, &w, None, 0).is_err());
        let w_ok = Mat::<i8>::zeros(3, 2);
        assert!(matmul_i16_i8(&a, &w_ok, Some(&[0]), 0).is_err());
    }

    #[test]
    fn matmul_i16_i16_matches_exact() {
        let a = Mat::from_vec(2, 2, vec![100i16, -200, 300, 400]).unwrap();
        let b = Mat::from_vec(2, 2, vec![5i16, 6, 7, 8]).unwrap();
        let (c, stats) = matmul_i16_i16(&a, &b, 0).unwrap();
        assert_eq!(
            c.as_slice(),
            &[
                100 * 5 - 200 * 7,
                100 * 6 - 200 * 8,
                300 * 5 + 400 * 7,
                300 * 6 + 400 * 8
            ]
        );
        assert_eq!(stats.saturations, 0);
    }

    #[test]
    fn matmul_i16_i16_shifts() {
        let a = Mat::from_vec(1, 1, vec![1000i16]).unwrap();
        let b = Mat::from_vec(1, 1, vec![1000i16]).unwrap();
        let (c, _) = matmul_i16_i16(&a, &b, 5).unwrap();
        assert_eq!(c[(0, 0)], (1_000_000i64 >> 5) as i16);
    }

    #[test]
    fn add_assign_saturates() {
        let mut a = Mat::from_vec(1, 2, vec![i16::MAX, 5]).unwrap();
        let b = Mat::from_vec(1, 2, vec![10i16, 7]).unwrap();
        let stats = add_assign_sat(&mut a, &b).unwrap();
        assert_eq!(a.as_slice(), &[i16::MAX, 12]);
        assert_eq!(stats.saturations, 1);
    }

    #[test]
    fn split_qkv_i16_matches_float_layout() {
        let x = Mat::from_fn(2, 6, |r, c| (r * 6 + c) as i16);
        let (q, k, v) = split_into_qkv_i16(&x, 1, 2).unwrap();
        assert_eq!(q[0].as_slice(), &[0, 1, 6, 7]);
        assert_eq!(k[0].as_slice(), &[2, 3, 8, 9]);
        assert_eq!(v[0].as_slice(), &[4, 5, 10, 11]);
        assert!(split_into_qkv_i16(&x, 2, 2).is_err());
        assert!(split_into_qkv_i16(&x, 0, 2).is_err());
    }

    #[test]
    fn stats_merge() {
        let mut a = QuantStats {
            saturations: 2,
            max_abs_acc: 100,
        };
        a.merge(QuantStats {
            saturations: 3,
            max_abs_acc: 50,
        });
        assert_eq!(a.saturations, 5);
        assert_eq!(a.max_abs_acc, 100);
    }
}
