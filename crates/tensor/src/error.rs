use std::fmt;

/// Error type returned by every fallible operation in this crate.
///
/// Errors are raised eagerly: the kernels validate operand shapes before
/// touching any data, so a returned matrix is always fully computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape (rows, cols) of the left-hand operand.
        lhs: (usize, usize),
        /// Shape (rows, cols) of the right-hand operand.
        rhs: (usize, usize),
    },
    /// An operand that must be non-empty was empty.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A constructor was given a buffer whose length does not match
    /// `rows * cols`.
    BadBufferLength {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// A parameter value is outside its valid domain.
    InvalidParameter {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated constraint.
        what: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::Empty { op } => write!(f, "empty input to {op}"),
            TensorError::BadBufferLength { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot back a {rows}x{cols} matrix"
            ),
            TensorError::InvalidParameter { op, what } => {
                write!(f, "invalid parameter in {op}: {what}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matrix_multiply",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matrix_multiply: lhs 2x3 vs rhs 4x5"
        );
    }

    #[test]
    fn display_empty() {
        let e = TensorError::Empty { op: "softmax" };
        assert_eq!(e.to_string(), "empty input to softmax");
    }

    #[test]
    fn display_bad_buffer() {
        let e = TensorError::BadBufferLength {
            rows: 2,
            cols: 2,
            len: 3,
        };
        assert_eq!(e.to_string(), "buffer of length 3 cannot back a 2x2 matrix");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
