//! Fixed-point helpers for the block-vectorised MFCC front end: Q15
//! weight quantisation, integer base-2 logarithms over a mantissa LUT,
//! and panel-packed Q15 GEMM microkernels with exact `i64` accumulation.
//!
//! The audio crate's fixed-point pipeline multiplies block-scaled integer
//! spectra by a pre-packed Q15 mel filter bank, takes logarithms of the
//! resulting band energies entirely in the integer domain
//! ([`log2_q24`] — count-leading-zeros plus a 257-entry interpolated
//! mantissa table, no float transcendentals), and applies a pre-packed
//! Q15 DCT-II matrix. Every kernel here accumulates in `i64` without
//! saturation: the caller owns the (power-of-two) output scaling, so all
//! arithmetic is exact and therefore **bit-identical for any row
//! blocking** — the property that makes streaming (one frame at a time)
//! and batch (whole-clip frame blocks) extraction agree bit-for-bit.

use crate::packed::{PackedMat, NR};
use crate::{Mat, Result, TensorError};

/// Fractional bits of the Q15 weight format.
pub const Q15_BITS: u32 = 15;

/// `log2` output format: Q8.24 (24 fractional bits).
pub const LOG2_FRAC_BITS: u32 = 24;

/// `ln(2)` in Q24 — scale factor from [`log2_q24`] to natural logs.
pub const LN2_Q24: i64 = 11_629_080; // round(ln(2) * 2^24)

/// `2^exp` as an exact `f64`, built straight from the IEEE-754 bit
/// pattern — no `exp2` libm call in the per-band hot loops. `exp` must
/// lie in the normal range `[-1022, 1023]`.
///
/// # Panics
///
/// Panics (debug) outside the normal exponent range.
pub fn pow2_f64(exp: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&exp), "pow2_f64 exponent {exp}");
    f64::from_bits(((exp + 1023) as u64) << 52)
}

/// Quantises a weight in `[-1, 1]` to Q15, saturating at the `i16` rim
/// (`+1.0` maps to `32767`).
pub fn quantize_q15(w: f64) -> i16 {
    let v = (w * (1i64 << Q15_BITS) as f64).round();
    v.clamp(i16::MIN as f64, i16::MAX as f64) as i16
}

/// Quantises a row-major weight matrix to Q15.
pub fn quantize_mat_q15(w: &Mat<f64>) -> Mat<i16> {
    Mat::from_fn(w.rows(), w.cols(), |r, c| quantize_q15(w[(r, c)]))
}

/// Number of mantissa intervals of the [`log2_q24`] table.
const LOG2_LUT_SEGMENTS: usize = 256;

/// `round(log2(1 + i/256) * 2^24)` for `i = 0 ..= 256`, generated once at
/// first use (257 entries so segment `i` interpolates toward entry
/// `i + 1`).
fn log2_lut() -> &'static [i64; LOG2_LUT_SEGMENTS + 1] {
    use std::sync::OnceLock;
    static LUT: OnceLock<[i64; LOG2_LUT_SEGMENTS + 1]> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut t = [0i64; LOG2_LUT_SEGMENTS + 1];
        for (i, slot) in t.iter_mut().enumerate() {
            let x = 1.0 + i as f64 / LOG2_LUT_SEGMENTS as f64;
            *slot = (x.log2() * (1i64 << LOG2_FRAC_BITS) as f64).round() as i64;
        }
        t
    })
}

/// Integer base-2 logarithm of a positive value, in Q8.24.
///
/// The value is normalised by its leading-bit position; the mantissa's
/// top 8 bits index the `log2_lut` table and the next 16 bits linearly
/// interpolate between adjacent entries, giving an absolute error below
/// `3e-6` — no floating-point transcendental is evaluated. `v == 0`
/// returns `i64::MIN / 2` (a sentinel far below any representable log;
/// callers floor their inputs so zero never reaches the log in practice).
pub fn log2_q24(v: u64) -> i64 {
    if v == 0 {
        return i64::MIN / 2;
    }
    let n = 63 - v.leading_zeros() as i64; // leading bit position
                                           // 24-bit mantissa fraction of v / 2^n - 1, in [0, 2^24).
    let frac: u64 = if n >= LOG2_FRAC_BITS as i64 {
        (v >> (n - LOG2_FRAC_BITS as i64)) & ((1u64 << LOG2_FRAC_BITS) - 1)
    } else {
        (v << (LOG2_FRAC_BITS as i64 - n)) & ((1u64 << LOG2_FRAC_BITS) - 1)
    };
    let lut = log2_lut();
    let idx = (frac >> 16) as usize; // top 8 bits: segment
    let rem = (frac & 0xFFFF) as i64; // low 16 bits: position inside it
    let lo = lut[idx];
    let hi = lut[idx + 1];
    let interp = lo + (((hi - lo) * rem + (1 << 15)) >> 16);
    (n << LOG2_FRAC_BITS) + interp
}

/// Natural logarithm of `v * 2^-scale_pow2` in Q9 (`i64`), computed from
/// [`log2_q24`] with a Q24 `ln(2)` multiply — exact integer arithmetic
/// end to end.
///
/// `v == 0` saturates far negative (see [`log2_q24`]); callers clamp the
/// result into their storage format.
pub fn ln_q9_scaled(v: u64, scale_pow2: i64) -> i64 {
    let log2 = log2_q24(v).saturating_sub(scale_pow2 << LOG2_FRAC_BITS);
    // (Q24 * Q24) >> 39 = Q9, rounded half-up.
    (log2.saturating_mul(LN2_Q24) + (1 << 38)) >> 39
}

/// A mel filter bank pre-packed for the fixed-point front end: Q15
/// weights stored **banded** — each triangular filter keeps only its
/// `[start, end)` nonzero bin span, flattened into one contiguous
/// weight array.
///
/// Applying the bank to a spectrum row therefore costs `Σ span_m`
/// multiply-adds (≈ `2 × n_bins` for triangular banks, every filter
/// overlapping its neighbour) instead of the dense GEMM's
/// `n_mels × n_bins` — a ~20× cut for the paper geometries — while
/// producing **bit-identical** band energies: the skipped weights
/// quantise to exact Q15 zeros, whose products contribute nothing to an
/// integer accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MelBankQ15 {
    n_bins: usize,
    /// Per-filter `(start_bin, weight_offset)`; `starts.len() == n_mels + 1`
    /// with a trailing sentinel, so filter `m` spans
    /// `starts[m].0 .. starts[m].0 + (starts[m + 1].1 - starts[m].1)`.
    starts: Vec<(u32, u32)>,
    weights: Vec<i16>,
}

impl MelBankQ15 {
    /// Packs a dense `n_mels x n_bins` filter bank (row-major `f64`
    /// weights in `[0, 1]`), quantising to Q15 and recording each row's
    /// nonzero span *after* quantisation (sub-Q15 tails are exact zeros
    /// either way).
    pub fn pack(n_mels: usize, n_bins: usize, weight_of: impl Fn(usize, usize) -> f64) -> Self {
        let mut starts = Vec::with_capacity(n_mels + 1);
        let mut weights = Vec::new();
        for m in 0..n_mels {
            let row: Vec<i16> = (0..n_bins).map(|k| quantize_q15(weight_of(m, k))).collect();
            let start = row.iter().position(|&w| w != 0).unwrap_or(n_bins);
            let end = row.iter().rposition(|&w| w != 0).map_or(start, |e| e + 1);
            starts.push((start as u32, weights.len() as u32));
            weights.extend_from_slice(&row[start..end]);
        }
        starts.push((n_bins as u32, weights.len() as u32));
        MelBankQ15 {
            n_bins,
            starts,
            weights,
        }
    }

    /// Number of mel channels.
    pub fn n_mels(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of spectrum bins per row.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Total packed (nonzero) weights — the per-row multiply count.
    pub fn packed_weights(&self) -> usize {
        self.weights.len()
    }

    /// Band energies of one spectrum row: `out[m] = Σ_k spec[k] · w_q[m][k]`
    /// over the banded span, exact `i64` accumulation (the caller owns
    /// the power-of-two scale). Bit-identical to the dense Q15 product.
    ///
    /// # Panics
    ///
    /// Panics unless `spec.len() == n_bins` and `out.len() == n_mels`.
    pub fn accumulate_row(&self, spec: &[i32], out: &mut [i64]) {
        assert_eq!(spec.len(), self.n_bins, "spectrum row length");
        assert_eq!(out.len(), self.n_mels(), "band row length");
        for (m, o) in out.iter_mut().enumerate() {
            let (start, w0) = self.starts[m];
            let w1 = self.starts[m + 1].1;
            let ws = &self.weights[w0 as usize..w1 as usize];
            let sp = &spec[start as usize..start as usize + ws.len()];
            let mut acc = 0i64;
            for (&s, &w) in sp.iter().zip(ws) {
                acc += s as i64 * w as i64;
            }
            *o = acc;
        }
    }

    /// [`accumulate_row`](Self::accumulate_row) over a frame block:
    /// `out` is resized to `a.rows() x n_mels`. Rows are independent, so
    /// block output is bit-identical to row-at-a-time output.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == n_bins`.
    pub fn apply_block_into(&self, a: &Mat<i32>, out: &mut Mat<i64>) -> Result<()> {
        if a.cols() != self.n_bins {
            return Err(TensorError::ShapeMismatch {
                op: "mel_bank_q15",
                lhs: a.shape(),
                rhs: (self.n_bins, self.n_mels()),
            });
        }
        out.resize(a.rows(), self.n_mels());
        for i in 0..a.rows() {
            self.accumulate_row(a.row(i), out.row_mut(i));
        }
        Ok(())
    }
}

fn check_inner(op: &'static str, a_shape: (usize, usize), w: (usize, usize)) -> Result<()> {
    if a_shape.1 != w.0 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a_shape,
            rhs: w,
        });
    }
    Ok(())
}

/// Panel-packed GEMM `C = A · W` with `i32` activations, Q15 (`i16`)
/// weights and exact `i64` accumulation — the mel filter bank product of
/// the fixed-point MFCC front end (`A` holds block-scaled spectra, `W`
/// the pre-packed filter bank).
///
/// Products are `i32 x i16 <= 2^45`; up to `2^18` of them fit the `i64`
/// accumulator, far beyond any FFT bin count. No shifting or saturation
/// happens here — the caller owns the output scale — so results are
/// independent of panel/row traversal order (integer addition is
/// associative) and bit-identical for any `M`, including `M == 1`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols()` matches the
/// packed operand's inner dimension.
pub fn matmul_i32_q15_i64_packed_into(
    a: &Mat<i32>,
    w: &PackedMat<i16>,
    out: &mut Mat<i64>,
) -> Result<()> {
    check_inner("matmul_i32_q15_i64", a.shape(), w.shape())?;
    let (m, _k, n) = (a.rows(), a.cols(), w.cols());
    out.resize(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for p in 0..w.panels() {
            let panel = w.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [0i64; NR];
            for (av, wrow) in arow.iter().zip(panel.chunks_exact(NR)) {
                let av = *av as i64;
                for j in 0..NR {
                    acc[j] += av * wrow[j] as i64;
                }
            }
            orow[col0..col0 + width].copy_from_slice(&acc[..width]);
        }
    }
    Ok(())
}

/// Panel-packed GEMM `C = A · W` with `i16` activations, Q15 (`i16`)
/// weights and exact `i64` accumulation — the DCT-II product of the
/// fixed-point MFCC front end (`A` holds Q9 log-mel rows, `W` the
/// pre-packed DCT matrix).
///
/// Same exactness/bit-identity contract as
/// [`matmul_i32_q15_i64_packed_into`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols()` matches the
/// packed operand's inner dimension.
pub fn matmul_i16_q15_i64_packed_into(
    a: &Mat<i16>,
    w: &PackedMat<i16>,
    out: &mut Mat<i64>,
) -> Result<()> {
    check_inner("matmul_i16_q15_i64", a.shape(), w.shape())?;
    let (m, _k, n) = (a.rows(), a.cols(), w.cols());
    out.resize(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for p in 0..w.panels() {
            let panel = w.panel(p);
            let col0 = p * NR;
            let width = (n - col0).min(NR);
            let mut acc = [0i64; NR];
            for (av, wrow) in arow.iter().zip(panel.chunks_exact(NR)) {
                let av = *av as i32;
                for j in 0..NR {
                    acc[j] += (av * wrow[j] as i32) as i64;
                }
            }
            orow[col0..col0 + width].copy_from_slice(&acc[..width]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q15_quantisation_rounds_and_saturates() {
        assert_eq!(quantize_q15(0.0), 0);
        assert_eq!(quantize_q15(0.5), 16_384);
        assert_eq!(quantize_q15(1.0), i16::MAX); // 32768 saturates
        assert_eq!(quantize_q15(-1.0), -32_768);
        assert_eq!(quantize_q15(1.0 / 32_768.0), 1);
        assert_eq!(quantize_q15(2.0), i16::MAX);
        assert_eq!(quantize_q15(-2.0), i16::MIN);
    }

    #[test]
    fn log2_q24_tracks_f64_log2() {
        let scale = (1i64 << LOG2_FRAC_BITS) as f64;
        for v in [
            1u64,
            2,
            3,
            7,
            255,
            256,
            1000,
            65_535,
            1 << 24,
            (1 << 24) + 12_345,
            u32::MAX as u64,
            1 << 52,
            u64::MAX,
        ] {
            let got = log2_q24(v) as f64 / scale;
            let want = (v as f64).log2();
            assert!(
                (got - want).abs() < 1e-5,
                "log2({v}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn log2_q24_is_monotone_over_small_values() {
        let mut prev = log2_q24(1);
        for v in 2..5_000u64 {
            let cur = log2_q24(v);
            assert!(cur >= prev, "log2 not monotone at {v}");
            prev = cur;
        }
    }

    #[test]
    fn log2_q24_zero_is_a_deep_sentinel() {
        assert!(log2_q24(0) < log2_q24(1) - (1 << 40));
    }

    #[test]
    fn ln_q9_matches_f64_ln_across_scales() {
        for (v, sp) in [
            (1u64, 0i64),
            (12_345, 10),
            (1 << 40, 45),
            (987_654_321, -8),
            (3, 33),
        ] {
            let got = ln_q9_scaled(v, sp) as f64 / 512.0;
            let want = (v as f64 * (-(sp as f64)).exp2()).ln();
            assert!(
                (got - want).abs() < 3e-3,
                "ln({v} * 2^-{sp}): got {got}, want {want}"
            );
        }
    }

    fn mat_i32(rows: usize, cols: usize, seed: i64) -> Mat<i32> {
        Mat::from_fn(rows, cols, |r, c| {
            (((r as i64 * 2_654_435_761 + c as i64 * 40_503 + seed * 7_919) % 0x3FFF_FFFF)
                - 0x1FFF_FFFF) as i32
        })
    }

    fn mat_i16(rows: usize, cols: usize, seed: i64) -> Mat<i16> {
        Mat::from_fn(rows, cols, |r, c| {
            (((r as i64 * 131 + c as i64 * 37 + seed * 7) % 65_535) - 32_767) as i16
        })
    }

    #[test]
    fn i32_q15_matches_naive_i64() {
        for (m, k, n) in [(1, 1, 1), (3, 257, 10), (7, 129, 40), (26, 513, 40)] {
            let a = mat_i32(m, k, 1);
            let w = mat_i16(k, n, 2);
            let p = PackedMat::pack(&w);
            let mut got = Mat::default();
            matmul_i32_q15_i64_packed_into(&a, &p, &mut got).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let want: i64 = (0..k).map(|kk| a[(i, kk)] as i64 * w[(kk, j)] as i64).sum();
                    assert_eq!(got[(i, j)], want, "({i},{j}) m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn i16_q15_matches_naive_i64() {
        for (m, k, n) in [(1, 1, 1), (2, 40, 16), (26, 40, 40), (5, 63, 9)] {
            let a = mat_i16(m, k, 3);
            let w = mat_i16(k, n, 4);
            let p = PackedMat::pack(&w);
            let mut got = Mat::default();
            matmul_i16_q15_i64_packed_into(&a, &p, &mut got).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let want: i64 = (0..k).map(|kk| a[(i, kk)] as i64 * w[(kk, j)] as i64).sum();
                    assert_eq!(got[(i, j)], want, "({i},{j}) m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn single_row_blocks_match_full_blocks() {
        // The property the streaming front end relies on: processing rows
        // one at a time equals processing them as one block, bit-for-bit.
        let a32 = mat_i32(9, 65, 5);
        let a16 = mat_i16(9, 65, 6);
        let w = mat_i16(65, 12, 7);
        let p = PackedMat::pack(&w);
        let (mut full32, mut full16) = (Mat::default(), Mat::default());
        matmul_i32_q15_i64_packed_into(&a32, &p, &mut full32).unwrap();
        matmul_i16_q15_i64_packed_into(&a16, &p, &mut full16).unwrap();
        let mut one = Mat::default();
        for i in 0..9 {
            let row32 = Mat::from_fn(1, 65, |_, c| a32[(i, c)]);
            matmul_i32_q15_i64_packed_into(&row32, &p, &mut one).unwrap();
            assert_eq!(one.row(0), full32.row(i));
            let row16 = Mat::from_fn(1, 65, |_, c| a16[(i, c)]);
            matmul_i16_q15_i64_packed_into(&row16, &p, &mut one).unwrap();
            assert_eq!(one.row(0), full16.row(i));
        }
    }

    #[test]
    fn banded_mel_bank_bit_identical_to_dense_gemm() {
        // Triangular-ish rows with leading/trailing zeros; the banded
        // bank must reproduce the dense Q15 product exactly, including
        // an all-zero filter.
        let (n_mels, n_bins) = (10usize, 65usize);
        let weight = |m: usize, k: usize| -> f64 {
            if m == 7 {
                return 0.0; // degenerate empty filter
            }
            let center = 4.0 + m as f64 * 6.0;
            let spread = 5.0;
            (1.0 - ((k as f64 - center).abs() / spread)).max(0.0)
        };
        let bank = MelBankQ15::pack(n_mels, n_bins, weight);
        assert!(bank.packed_weights() < n_mels * n_bins / 3);
        let dense = PackedMat::pack(&Mat::from_fn(n_bins, n_mels, |k, m| {
            quantize_q15(weight(m, k))
        }));
        let a = mat_i32(6, n_bins, 9);
        let mut want = Mat::default();
        matmul_i32_q15_i64_packed_into(&a, &dense, &mut want).unwrap();
        let mut got = Mat::default();
        bank.apply_block_into(&a, &mut got).unwrap();
        assert_eq!(got, want);
        // row-at-a-time equals block
        let mut row_out = vec![0i64; n_mels];
        for i in 0..a.rows() {
            bank.accumulate_row(a.row(i), &mut row_out);
            assert_eq!(&row_out[..], got.row(i));
        }
        // shape error
        assert!(bank.apply_block_into(&Mat::zeros(2, 3), &mut got).is_err());
    }

    #[test]
    fn shape_errors_propagate() {
        let p = PackedMat::pack(&Mat::<i16>::zeros(4, 2));
        let mut out = Mat::default();
        assert!(matmul_i32_q15_i64_packed_into(&Mat::zeros(2, 3), &p, &mut out).is_err());
        assert!(matmul_i16_q15_i64_packed_into(&Mat::zeros(2, 3), &p, &mut out).is_err());
    }
}
