//! # kwt-tensor
//!
//! Shape-checked tensor kernels mirroring the bare-metal C tensor library of
//! *KWT-Tiny: RISC-V Accelerated, Embedded Keyword Spotting Transformer*
//! (SOCC 2024), Table VI.
//!
//! The paper proposes a minimal library of eight operations from which the
//! whole Keyword Transformer inference pipeline is assembled:
//!
//! | Paper method                  | Rust equivalent                                  |
//! |-------------------------------|--------------------------------------------------|
//! | `computeMeanAndVariance()`    | [`ops::compute_mean_and_variance`]               |
//! | `layerNorm()`                 | [`ops::layer_norm`]                              |
//! | `matrixMultiply()`            | [`ops::matrix_multiply`]                         |
//! | `Softmax()`                   | [`ops::softmax`] / [`ops::softmax_normalized`]   |
//! | `gelu()`                      | [`ops::gelu`]                                    |
//! | `linear()`                    | [`ops::linear`]                                  |
//! | `splitIntoQKV()`              | [`ops::split_into_qkv`]                          |
//! | `scaledDotProductAttention()` | [`ops::scaled_dot_product_attention`]            |
//!
//! Every operation exists in a 32-bit float flavour ([`ops`]) used by the
//! non-quantised model, and — where the paper quantises — in an
//! INT8-weight / INT16-residual flavour ([`qops`]) with i32 accumulators and
//! power-of-two rescaling, exactly the arithmetic the paper runs on the
//! FPU-less Ibex core.
//!
//! # Fast paths
//!
//! The matrix products run through the panel-packed, cache-blocked
//! microkernels of [`packed`]: weight operands are transposed and packed
//! into [`PackedMat`] (once per model load in the downstream crates, or on
//! the fly by the drop-in entry points), giving contiguous inner loops and
//! register-resident accumulators. Results — including the
//! [`qops::QuantStats`] overflow diagnostics — are **bit-identical** to
//! the original textbook kernels, which survive as
//! [`ops::reference`] / [`qops::reference`] and serve as the oracles for
//! the equivalence tests in `tests/properties.rs`.
//!
//! # Example
//!
//! ```
//! use kwt_tensor::{Mat, ops};
//!
//! # fn main() -> Result<(), kwt_tensor::TensorError> {
//! let a = Mat::from_vec(2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Mat::from_vec(3, 2, vec![1.0f32, 0.0, 0.0, 1.0, 1.0, 1.0])?;
//! let c = ops::matrix_multiply(&a, &b)?;
//! assert_eq!(c.shape(), (2, 2));
//! assert_eq!(c[(0, 0)], 4.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fixedpoint;
mod mat;
pub mod math;
pub mod ops;
pub mod packed;
pub mod qops;
pub mod softfp;

pub use error::TensorError;
pub use mat::Mat;
pub use packed::PackedMat;

/// Convenience alias for results returned by fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
