//! Quick sanity run: train KWT-Tiny on the synthetic binary task and print
//! accuracies plus activation magnitudes (used to calibrate the
//! quantisation experiments).

use kwt_dataset::{GscConfig, Split, SyntheticGsc};
use kwt_model::{KwtConfig, KwtParams};
use kwt_train::{evaluate, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = std::time::Instant::now();
    let ds = SyntheticGsc::new(GscConfig {
        samples_per_class: [1200, 200, 300],
        synth: kwt_dataset::SynthParams {
            formant_jitter: 0.30,
            pitch_jitter: 0.35,
            snr_db: (-22.0, -6.0),
            ..kwt_dataset::SynthParams::default()
        },
        ..GscConfig::default()
    });
    let fe = kwt_audio::kwt_tiny_frontend()?;
    let train = ds.materialize(Split::Train, &fe)?;
    let val = ds.materialize(Split::Val, &fe)?;
    let test = ds.materialize(Split::Test, &fe)?;
    let (mean, std) = train.feature_stats();
    eprintln!(
        "data ready in {:.1}s  feature mean {mean:.2} std {std:.2}",
        t0.elapsed().as_secs_f32()
    );
    let max_abs = train
        .x
        .iter()
        .flat_map(|m| m.as_slice())
        .fold(0.0f32, |a, &v| a.max(v.abs()));
    eprintln!("max |mfcc| = {max_abs:.1}");

    let params = KwtParams::init(KwtConfig::kwt_tiny(), 42)?;
    let mut trainer = Trainer::new(
        params,
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&train, &val)?;
    let (test_acc, _) = evaluate(trainer.params(), &test)?;
    eprintln!(
        "best val {:.1}%  test {:.1}%  total {:.1}s",
        report.best_val_accuracy * 100.0,
        test_acc * 100.0,
        t0.elapsed().as_secs_f32()
    );
    Ok(())
}
