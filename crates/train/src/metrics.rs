//! Classification metrics.

/// Fraction of predictions equal to their labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty prediction set");
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

/// `num_classes x num_classes` confusion matrix;
/// `matrix[true][predicted]` counts occurrences.
///
/// # Panics
///
/// Panics if the slices differ in length or any index is out of range.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(
            p < num_classes && l < num_classes,
            "class index out of range"
        );
        m[l][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn accuracy_empty_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m[0][0], 1); // true 0 predicted 0
        assert_eq!(m[0][1], 1); // true 0 predicted 1
        assert_eq!(m[1][0], 1);
        assert_eq!(m[1][1], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_range_checked() {
        let _ = confusion_matrix(&[2], &[0], 2);
    }
}
