//! Adam optimiser over flat parameter vectors.

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam state: first/second moment estimates and the step counter.
///
/// Operates on flat `Vec<f32>` views of the model
/// ([`kwt_model::KwtParams::flatten`]) so it is architecture-agnostic.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates the optimiser for `n` parameters.
    pub fn new(n: usize, config: AdamConfig) -> Self {
        Adam {
            config,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Applies one update with learning rate `lr` (callers pass the
    /// scheduled rate; `config.lr` is the nominal peak).
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` lengths differ from the optimiser's.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let c = &self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            let mut update = lr * mhat / (vhat.sqrt() + c.eps);
            if c.weight_decay > 0.0 {
                update += lr * c.weight_decay * params[i];
            }
            params[i] -= update;
        }
    }
}

/// Cosine learning-rate schedule with linear warmup.
///
/// Returns the learning rate for `step` out of `total_steps`, peaking at
/// `peak_lr` after `warmup` steps and decaying to `peak_lr * floor_frac`.
pub fn cosine_lr(step: u64, total_steps: u64, warmup: u64, peak_lr: f32, floor_frac: f32) -> f32 {
    if total_steps == 0 {
        return peak_lr;
    }
    if step < warmup && warmup > 0 {
        return peak_lr * (step + 1) as f32 / warmup as f32;
    }
    let span = (total_steps.saturating_sub(warmup)).max(1) as f32;
    let progress = (step.saturating_sub(warmup)) as f32 / span;
    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress.min(1.0)).cos());
    peak_lr * (floor_frac + (1.0 - floor_frac) * cos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_a_quadratic() {
        // f(x) = sum (x_i - target_i)^2
        let target = [3.0f32, -2.0, 0.5];
        let mut x = vec![0.0f32; 3];
        let mut opt = Adam::new(3, AdamConfig::default());
        for _ in 0..4000 {
            let grads: Vec<f32> = x
                .iter()
                .zip(&target)
                .map(|(xi, t)| 2.0 * (xi - t))
                .collect();
            opt.step(&mut x, &grads, 0.01);
        }
        for (xi, t) in x.iter().zip(&target) {
            assert!((xi - t).abs() < 1e-2, "{xi} vs {t}");
        }
        assert_eq!(opt.steps(), 4000);
    }

    #[test]
    fn adam_is_scale_adaptive() {
        // Gradients differing by 1e6 in scale still make progress on both
        // coordinates (this is why raw-scale MFCC inputs are trainable).
        let mut x = vec![1.0f32, 1.0];
        let mut opt = Adam::new(2, AdamConfig::default());
        for _ in 0..200 {
            let grads = vec![2e6 * x[0], 2e-3 * x[1]];
            opt.step(&mut x, &grads, 0.01);
        }
        assert!(x[0].abs() < 0.5);
        assert!(x[1] < 1.0);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut with = vec![1.0f32];
        let mut without = vec![1.0f32];
        let mut o1 = Adam::new(
            1,
            AdamConfig {
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
        );
        let mut o2 = Adam::new(1, AdamConfig::default());
        for _ in 0..50 {
            o1.step(&mut with, &[0.0], 0.01);
            o2.step(&mut without, &[0.0], 0.01);
        }
        assert!(with[0] < without[0]);
        assert_eq!(without[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Adam::new(2, AdamConfig::default());
        let mut p = vec![0.0f32; 3];
        opt.step(&mut p, &[0.0; 3], 0.1);
    }

    #[test]
    fn cosine_schedule_shape() {
        let peak = 1.0;
        // warmup ramps
        assert!(cosine_lr(0, 100, 10, peak, 0.0) < cosine_lr(5, 100, 10, peak, 0.0));
        // peak reached right after warmup
        let at_peak = cosine_lr(10, 100, 10, peak, 0.0);
        assert!((at_peak - peak).abs() < 1e-3);
        // decays monotonically afterwards
        assert!(cosine_lr(50, 100, 10, peak, 0.0) > cosine_lr(90, 100, 10, peak, 0.0));
        // floor respected
        let end = cosine_lr(100, 100, 10, peak, 0.1);
        assert!(end >= 0.1 * peak - 1e-6);
        // degenerate cases
        assert_eq!(cosine_lr(0, 0, 0, peak, 0.0), peak);
    }
}
