//! Softmax cross-entropy loss with its gradient.

/// Computes softmax cross-entropy loss for one example and the gradient of
/// the loss with respect to the logits.
///
/// Uses the max-normalised softmax (paper eq. 10) for stability. The
/// gradient has the classic closed form `p - onehot(label)`.
///
/// # Panics
///
/// Panics if `logits` is empty or `label` is out of range.
pub fn softmax_cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    assert!(!logits.is_empty(), "empty logits");
    assert!(
        label < logits.len(),
        "label {label} out of range for {} classes",
        logits.len()
    );
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let log_sum = sum.ln();
    let loss = log_sum - (logits[label] - max);
    let grad = exps
        .iter()
        .enumerate()
        .map(|(i, &e)| e / sum - if i == label { 1.0 } else { 0.0 })
        .collect();
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_n() {
        let (loss, grad) = softmax_cross_entropy(&[0.0, 0.0, 0.0, 0.0], 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        assert!((grad[2] - (0.25 - 1.0)).abs() < 1e-6);
        assert!((grad[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-6);
        let (loss_wrong, _) = softmax_cross_entropy(&[10.0, -10.0], 1);
        assert!(loss_wrong > 10.0);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[0.3, -1.2, 2.0], 1);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = [0.5f32, -0.3, 1.7, 0.0];
        let label = 3;
        let (_, grad) = softmax_cross_entropy(&logits, label);
        let h = 1e-3;
        for i in 0..4 {
            let mut plus = logits;
            plus[i] += h;
            let mut minus = logits;
            minus[i] -= h;
            let (lp, _) = softmax_cross_entropy(&plus, label);
            let (lm, _) = softmax_cross_entropy(&minus, label);
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (num - grad[i]).abs() < 1e-3,
                "logit {i}: numeric {num} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn large_logits_are_stable() {
        let (loss, grad) = softmax_cross_entropy(&[1000.0, 999.0], 0);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = softmax_cross_entropy(&[0.0, 1.0], 2);
    }
}
