//! Forward pass with activation caching, and the hand-derived backward
//! pass for the full KWT architecture.
//!
//! The layer set mirrors `kwt_model::forward` exactly (post-norm blocks,
//! fused QKV, class-token readout). Each cached tensor is the minimum
//! needed by the corresponding backward rule:
//!
//! * linear `Y = X W + b`: cache `X`; `dX = dY Wᵀ`, `dW = Xᵀ dY`,
//!   `db = colsum(dY)`
//! * layer norm: cache the normalised `x̂`, `1/σ`; the standard three-term
//!   row rule
//! * softmax rows: cache probabilities `p`; `ds = p ⊙ (dp − ⟨dp, p⟩)`
//! * GELU: cache pre-activation; `dL/dx = dL/dy · (Φ(x) + x φ(x))`

use kwt_model::{KwtParams, ModelError, Result};
use kwt_tensor::math::{gelu_exact, gelu_exact_derivative};
use kwt_tensor::{ops, Mat};

/// Per-row layer-norm cache: normalised values and inverse std-dev.
#[derive(Debug, Clone)]
struct LnCache {
    /// Normalised activations `x̂` (before gamma/beta), `S x dim`.
    xhat: Mat<f32>,
    /// `1 / sqrt(var + eps)` per row.
    inv_std: Vec<f32>,
}

/// Cache for one transformer block.
#[derive(Debug, Clone)]
struct LayerCache {
    /// Block input (`S x dim`).
    x_in: Mat<f32>,
    /// Per-head attention probabilities (`S x S` each).
    probs: Vec<Mat<f32>>,
    /// Per-head V matrices (`S x dh`).
    v: Vec<Mat<f32>>,
    /// Per-head Q matrices (`S x dh`).
    q: Vec<Mat<f32>>,
    /// Per-head K matrices (`S x dh`).
    k: Vec<Mat<f32>>,
    /// Concatenated head outputs (`S x h·dh`).
    sa: Mat<f32>,
    /// LN1 cache.
    ln1: LnCache,
    /// LN1 output == MLP input (`S x dim`).
    x_mid: Mat<f32>,
    /// MLP pre-GELU hidden (`S x mlp`).
    hidden_pre: Mat<f32>,
    /// MLP post-GELU hidden (`S x mlp`).
    hidden_post: Mat<f32>,
    /// LN2 cache.
    ln2: LnCache,
}

/// Everything the backward pass needs from one forward evaluation.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// The MFCC input (`T x F`).
    input: Mat<f32>,
    /// Per-block caches.
    layers: Vec<LayerCache>,
    /// Final class-token row (`1 x dim`), input of the head.
    cls_out: Mat<f32>,
    /// Logits.
    logits: Vec<f32>,
}

impl ForwardCache {
    /// The logits this cache was produced with.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }
}

/// Layer-norm forward on each row, returning the cache needed backward.
fn layer_norm_rows_cached(
    x: &Mat<f32>,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<(Mat<f32>, LnCache)> {
    let mut out = Mat::zeros(x.rows(), x.cols());
    let mut xhat = Mat::zeros(x.rows(), x.cols());
    let mut inv_std = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = x.row(r);
        let (mean, var) = ops::compute_mean_and_variance(row)?;
        let is = 1.0 / (var + eps).sqrt();
        inv_std.push(is);
        for c in 0..x.cols() {
            let xh = (row[c] - mean) * is;
            xhat[(r, c)] = xh;
            out[(r, c)] = gamma[c] * xh + beta[c];
        }
    }
    Ok((out, LnCache { xhat, inv_std }))
}

/// Backward through a per-row layer norm.
///
/// Returns `dx` and accumulates into `dgamma`, `dbeta`.
fn layer_norm_rows_backward(
    dy: &Mat<f32>,
    cache: &LnCache,
    gamma: &[f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) -> Mat<f32> {
    let (rows, cols) = dy.shape();
    let mut dx = Mat::zeros(rows, cols);
    let n = cols as f32;
    for r in 0..rows {
        let mut mean_g = 0.0f32;
        let mut mean_gx = 0.0f32;
        for c in 0..cols {
            let g = dy[(r, c)] * gamma[c];
            mean_g += g;
            mean_gx += g * cache.xhat[(r, c)];
            dgamma[c] += dy[(r, c)] * cache.xhat[(r, c)];
            dbeta[c] += dy[(r, c)];
        }
        mean_g /= n;
        mean_gx /= n;
        let is = cache.inv_std[r];
        for c in 0..cols {
            let g = dy[(r, c)] * gamma[c];
            dx[(r, c)] = is * (g - mean_g - cache.xhat[(r, c)] * mean_gx);
        }
    }
    dx
}

/// Backward through `Y = X W + b`.
///
/// Returns `dX`, accumulating into `dw` and `db`.
fn linear_backward(
    x: &Mat<f32>,
    w: &Mat<f32>,
    dy: &Mat<f32>,
    dw: &mut Mat<f32>,
    db: &mut [f32],
) -> Result<Mat<f32>> {
    let dw_add = ops::matrix_multiply(&x.transpose(), dy)?;
    ops::add_assign(dw, &dw_add)?;
    for r in 0..dy.rows() {
        for c in 0..dy.cols() {
            db[c] += dy[(r, c)];
        }
    }
    Ok(ops::matrix_multiply(dy, &w.transpose())?)
}

/// Softmax row backward: `ds = p ⊙ (dp − ⟨dp,p⟩)`, row by row.
fn softmax_rows_backward(probs: &Mat<f32>, dprobs: &Mat<f32>) -> Mat<f32> {
    let (rows, cols) = probs.shape();
    let mut ds = Mat::zeros(rows, cols);
    for r in 0..rows {
        let mut dot = 0.0f32;
        for c in 0..cols {
            dot += dprobs[(r, c)] * probs[(r, c)];
        }
        for c in 0..cols {
            ds[(r, c)] = probs[(r, c)] * (dprobs[(r, c)] - dot);
        }
    }
    ds
}

/// Forward pass identical in semantics to [`kwt_model::forward`], but
/// returning a [`ForwardCache`] for [`backward`].
///
/// # Errors
///
/// Same contract as [`kwt_model::forward`].
pub fn forward_cached(params: &KwtParams, mfcc: &Mat<f32>) -> Result<ForwardCache> {
    let c = &params.config;
    if mfcc.shape() != (c.input_time, c.input_freq) {
        return Err(ModelError::InputShape {
            expected: (c.input_time, c.input_freq),
            got: mfcc.shape(),
        });
    }

    let tokens = ops::linear(mfcc, &params.w_proj, &params.b_proj)?;
    let cls_row = Mat::from_vec(1, c.dim, params.class_token.clone())
        .expect("class token length enforced by construction");
    let mut x = cls_row.vstack(&tokens)?;
    ops::add_assign(&mut x, &params.pos_emb)?;

    let scale = 1.0 / (c.dim_head as f32).sqrt();
    let mut layer_caches = Vec::with_capacity(c.depth);
    for layer in &params.layers {
        let x_in = x.clone();
        let qkv = ops::linear(&x, &layer.w_qkv, &layer.b_qkv)?;
        let (qs, ks, vs) = ops::split_into_qkv(&qkv, c.heads, c.dim_head)?;
        let mut probs_all = Vec::with_capacity(c.heads);
        let mut sa: Option<Mat<f32>> = None;
        for h in 0..c.heads {
            let mut scores = ops::matrix_multiply(&qs[h], &ks[h].transpose())?;
            for val in scores.as_mut_slice() {
                *val *= scale;
            }
            for r in 0..scores.rows() {
                ops::softmax_normalized(scores.row_mut(r))?;
            }
            let head_out = ops::matrix_multiply(&scores, &vs[h])?;
            probs_all.push(scores);
            sa = Some(match sa {
                None => head_out,
                Some(acc) => acc.hstack(&head_out)?,
            });
        }
        let sa = sa.expect("heads >= 1");
        let attn_out = ops::linear(&sa, &layer.w_out, &layer.b_out)?;
        let mut r1 = x_in.clone();
        ops::add_assign(&mut r1, &attn_out)?;
        let (x_mid, ln1) =
            layer_norm_rows_cached(&r1, &layer.ln1_gamma, &layer.ln1_beta, c.ln_eps)?;

        let hidden_pre = ops::linear(&x_mid, &layer.w_mlp1, &layer.b_mlp1)?;
        let hidden_post = hidden_pre.map(gelu_exact);
        let mlp_out = ops::linear(&hidden_post, &layer.w_mlp2, &layer.b_mlp2)?;
        let mut r2 = x_mid.clone();
        ops::add_assign(&mut r2, &mlp_out)?;
        let (x_next, ln2) =
            layer_norm_rows_cached(&r2, &layer.ln2_gamma, &layer.ln2_beta, c.ln_eps)?;

        layer_caches.push(LayerCache {
            x_in,
            probs: probs_all,
            v: vs,
            q: qs,
            k: ks,
            sa,
            ln1,
            x_mid,
            hidden_pre,
            hidden_post,
            ln2,
        });
        x = x_next;
    }

    let cls_out = Mat::from_vec(1, c.dim, x.row(0).to_vec()).expect("row has dim elements");
    let logits = ops::linear(&cls_out, &params.w_head, &params.b_head)?;
    Ok(ForwardCache {
        input: mfcc.clone(),
        layers: layer_caches,
        cls_out,
        logits: logits.into_vec(),
    })
}

/// Backward pass: given `dlogits` (from [`crate::softmax_cross_entropy`]),
/// accumulates parameter gradients into `grads`, a
/// [`KwtParams::zeros`]-shaped accumulator for the same config.
///
/// # Errors
///
/// Propagates kernel shape errors (impossible for caches produced by
/// [`forward_cached`] against the same `params`).
pub fn backward(
    params: &KwtParams,
    cache: &ForwardCache,
    dlogits: &[f32],
    grads: &mut KwtParams,
) -> Result<()> {
    let c = &params.config;
    let seqlen = c.seqlen();
    let scale = 1.0 / (c.dim_head as f32).sqrt();

    // Head: logits = cls_out W_head + b_head.
    let dlogits_m = Mat::from_vec(1, c.num_classes, dlogits.to_vec()).map_err(ModelError::from)?;
    let dcls = linear_backward(
        &cache.cls_out,
        &params.w_head,
        &dlogits_m,
        &mut grads.w_head,
        &mut grads.b_head,
    )?;

    // Only the class-token row receives gradient from the head.
    let mut dx = Mat::zeros(seqlen, c.dim);
    for col in 0..c.dim {
        dx[(0, col)] = dcls[(0, col)];
    }

    // Blocks in reverse.
    for idx in (0..c.depth).rev() {
        let layer = &params.layers[idx];
        let lc = &cache.layers[idx];
        let gl = &mut grads.layers[idx];

        // LN2 backward: dx -> dr2.
        let dr2 = layer_norm_rows_backward(
            &dx,
            &lc.ln2,
            &layer.ln2_gamma,
            &mut gl.ln2_gamma,
            &mut gl.ln2_beta,
        );

        // r2 = x_mid + mlp_out.
        let dmlp_out = &dr2;
        let mut dx_mid = dr2.clone();

        // mlp_out = hidden_post W2 + b2.
        let dhidden_post = linear_backward(
            &lc.hidden_post,
            &layer.w_mlp2,
            dmlp_out,
            &mut gl.w_mlp2,
            &mut gl.b_mlp2,
        )?;

        // GELU backward.
        let mut dhidden_pre = Mat::zeros(dhidden_post.rows(), dhidden_post.cols());
        for r in 0..dhidden_post.rows() {
            for cc in 0..dhidden_post.cols() {
                dhidden_pre[(r, cc)] =
                    dhidden_post[(r, cc)] * gelu_exact_derivative(lc.hidden_pre[(r, cc)]);
            }
        }

        // hidden_pre = x_mid W1 + b1.
        let dx_mid_mlp = linear_backward(
            &lc.x_mid,
            &layer.w_mlp1,
            &dhidden_pre,
            &mut gl.w_mlp1,
            &mut gl.b_mlp1,
        )?;
        ops::add_assign(&mut dx_mid, &dx_mid_mlp)?;

        // LN1 backward: dx_mid -> dr1.
        let dr1 = layer_norm_rows_backward(
            &dx_mid,
            &lc.ln1,
            &layer.ln1_gamma,
            &mut gl.ln1_gamma,
            &mut gl.ln1_beta,
        );

        // r1 = x_in + attn_out.
        let dattn_out = &dr1;
        let mut dx_in = dr1.clone();

        // attn_out = sa W_out + b_out.
        let dsa = linear_backward(
            &lc.sa,
            &layer.w_out,
            dattn_out,
            &mut gl.w_out,
            &mut gl.b_out,
        )?;

        // Attention backward per head; assemble dqkv.
        let inner = c.heads * c.dim_head;
        let mut dqkv = Mat::zeros(seqlen, 3 * inner);
        for h in 0..c.heads {
            let dsa_h = dsa.columns(h * c.dim_head, c.dim_head);
            // sa_h = probs @ v
            let dprobs = ops::matrix_multiply(&dsa_h, &lc.v[h].transpose())?;
            let dv = ops::matrix_multiply(&lc.probs[h].transpose(), &dsa_h)?;
            let dscores = softmax_rows_backward(&lc.probs[h], &dprobs);
            // scores = scale * q k^T
            let mut dq = ops::matrix_multiply(&dscores, &lc.k[h])?;
            for v in dq.as_mut_slice() {
                *v *= scale;
            }
            let mut dk = ops::matrix_multiply(&dscores.transpose(), &lc.q[h])?;
            for v in dk.as_mut_slice() {
                *v *= scale;
            }
            for r in 0..seqlen {
                for cc in 0..c.dim_head {
                    dqkv[(r, h * c.dim_head + cc)] = dq[(r, cc)];
                    dqkv[(r, inner + h * c.dim_head + cc)] = dk[(r, cc)];
                    dqkv[(r, 2 * inner + h * c.dim_head + cc)] = dv[(r, cc)];
                }
            }
        }

        // qkv = x_in W_qkv + b_qkv.
        let dx_in_attn =
            linear_backward(&lc.x_in, &layer.w_qkv, &dqkv, &mut gl.w_qkv, &mut gl.b_qkv)?;
        ops::add_assign(&mut dx_in, &dx_in_attn)?;

        dx = dx_in;
    }

    // x0 = [cls; tokens] + pos_emb.
    ops::add_assign(&mut grads.pos_emb, &dx)?;
    for col in 0..c.dim {
        grads.class_token[col] += dx[(0, col)];
    }
    // tokens = input W_proj + b_proj; rows 1.. of dx are dtokens.
    let dtokens = Mat::from_fn(c.input_time, c.dim, |r, col| dx[(r + 1, col)]);
    let _ = linear_backward(
        &cache.input,
        &params.w_proj,
        &dtokens,
        &mut grads.w_proj,
        &mut grads.b_proj,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax_cross_entropy;
    use kwt_model::KwtConfig;

    /// A deliberately odd-shaped small config exercising heads > 1 and
    /// dim_head != dim / heads.
    fn small_config() -> KwtConfig {
        KwtConfig {
            input_freq: 5,
            input_time: 4,
            dim: 6,
            depth: 2,
            heads: 2,
            mlp_dim: 7,
            dim_head: 3,
            num_classes: 3,
            ln_eps: 1e-5,
        }
    }

    fn pseudo_input(cfg: &KwtConfig, seed: u64) -> Mat<f32> {
        Mat::from_fn(cfg.input_time, cfg.input_freq, |r, c| {
            let h = seed
                .wrapping_add((r * 31 + c * 7 + 1) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn forward_cached_matches_inference_forward() {
        for cfg in [small_config(), KwtConfig::kwt_tiny()] {
            let params = KwtParams::init(cfg, 9).unwrap();
            let x = pseudo_input(&cfg, 3);
            let cache = forward_cached(&params, &x).unwrap();
            let reference = kwt_model::forward(&params, &x).unwrap();
            for (a, b) in cache.logits().iter().zip(&reference) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_cached_rejects_bad_shape() {
        let params = KwtParams::init(small_config(), 0).unwrap();
        let bad = Mat::zeros(3, 3);
        assert!(forward_cached(&params, &bad).is_err());
    }

    /// Full-model gradient check against central finite differences.
    #[test]
    fn gradients_match_finite_differences() {
        let cfg = small_config();
        let params = KwtParams::init(cfg, 17).unwrap();
        let x = pseudo_input(&cfg, 11);
        let label = 1usize;

        // Analytic gradient.
        let cache = forward_cached(&params, &x).unwrap();
        let (_, dlogits) = softmax_cross_entropy(cache.logits(), label);
        let mut grads = KwtParams::zeros(cfg).unwrap();
        backward(&params, &cache, &dlogits, &mut grads).unwrap();
        let analytic = grads.flatten();

        // Numeric gradient over a deterministic subset of parameters
        // (checking all ~800 is slow; stride hits every tensor).
        let flat = params.flatten();
        let n = flat.len();
        let h = 2e-3f32;
        let loss_at = |theta: &[f32]| -> f32 {
            let mut p = KwtParams::zeros(cfg).unwrap();
            p.assign_from_flat(theta);
            let c = forward_cached(&p, &x).unwrap();
            softmax_cross_entropy(c.logits(), label).0
        };
        let stride = 13usize;
        let mut checked = 0;
        let mut max_rel = 0.0f32;
        for i in (0..n).step_by(stride) {
            let mut plus = flat.clone();
            plus[i] += h;
            let mut minus = flat.clone();
            minus[i] -= h;
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * h);
            let a = analytic[i];
            let denom = numeric.abs().max(a.abs()).max(1e-2);
            let rel = (numeric - a).abs() / denom;
            max_rel = max_rel.max(rel);
            assert!(
                rel < 0.08,
                "param {i}: numeric {numeric} vs analytic {a} (rel {rel})"
            );
            checked += 1;
        }
        assert!(checked > 50, "checked too few parameters: {checked}");
        // The vast majority should agree much more tightly.
        assert!(max_rel < 0.08, "worst relative error {max_rel}");
    }

    #[test]
    fn gradient_is_zero_for_perfectly_confident_correct_logits() {
        // If dlogits is exactly zero, all parameter grads stay zero.
        let cfg = small_config();
        let params = KwtParams::init(cfg, 3).unwrap();
        let x = pseudo_input(&cfg, 5);
        let cache = forward_cached(&params, &x).unwrap();
        let mut grads = KwtParams::zeros(cfg).unwrap();
        backward(&params, &cache, &[0.0; 3], &mut grads).unwrap();
        assert!(grads.flatten().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn backward_accumulates_across_samples() {
        let cfg = small_config();
        let params = KwtParams::init(cfg, 3).unwrap();
        let x1 = pseudo_input(&cfg, 1);
        let x2 = pseudo_input(&cfg, 2);

        let run = |inputs: &[&Mat<f32>]| -> Vec<f32> {
            let mut grads = KwtParams::zeros(cfg).unwrap();
            for x in inputs {
                let cache = forward_cached(&params, x).unwrap();
                let (_, dl) = softmax_cross_entropy(cache.logits(), 0);
                backward(&params, &cache, &dl, &mut grads).unwrap();
            }
            grads.flatten()
        };
        let g1 = run(&[&x1]);
        let g2 = run(&[&x2]);
        let g12 = run(&[&x1, &x2]);
        for i in 0..g1.len() {
            assert!(
                (g12[i] - g1[i] - g2[i]).abs() < 1e-4,
                "accumulation mismatch at {i}"
            );
        }
    }
}
