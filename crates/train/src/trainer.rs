//! The mini-batch trainer: shuffling, data-parallel gradient computation,
//! cosine-scheduled Adam updates, validation tracking.

use crate::backprop::{backward, forward_cached};
use crate::loss::softmax_cross_entropy;
use crate::metrics::accuracy;
use crate::optimizer::{cosine_lr, Adam, AdamConfig};
use kwt_dataset::MfccDataset;
use kwt_model::{KwtParams, Result};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Trainer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam settings (`lr` is the peak rate of the cosine schedule).
    pub adam: AdamConfig,
    /// Linear warmup steps before the cosine decay.
    pub warmup_steps: u64,
    /// Final learning rate as a fraction of the peak.
    pub lr_floor_frac: f32,
    /// Global-norm gradient clipping threshold; `None` disables.
    pub grad_clip: Option<f32>,
    /// Worker threads for gradient computation; 0 = hardware parallelism.
    pub threads: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            adam: AdamConfig {
                lr: 2e-3,
                ..AdamConfig::default()
            },
            warmup_steps: 20,
            lr_floor_frac: 0.05,
            grad_clip: Some(5.0),
            threads: 0,
            seed: 0xC0DE,
            verbose: false,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Training accuracy over the epoch.
    pub train_accuracy: f64,
    /// Validation accuracy after the epoch.
    pub val_accuracy: f64,
    /// Last learning rate used in the epoch.
    pub lr: f32,
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Best validation accuracy seen.
    pub best_val_accuracy: f64,
    /// Epoch at which the best validation accuracy occurred.
    pub best_epoch: usize,
}

/// Owns the model parameters and optimiser state during training.
#[derive(Debug, Clone)]
pub struct Trainer {
    params: KwtParams,
    config: TrainConfig,
    optimizer: Adam,
    best: Option<(f64, KwtParams)>,
}

impl Trainer {
    /// Creates a trainer around an initialised model.
    pub fn new(params: KwtParams, config: TrainConfig) -> Self {
        let n = params.param_count();
        let optimizer = Adam::new(n, config.adam);
        Trainer {
            params,
            config,
            optimizer,
            best: None,
        }
    }

    /// The current parameters (after `fit`: the best-validation snapshot).
    pub fn params(&self) -> &KwtParams {
        &self.params
    }

    /// Consumes the trainer, returning the parameters.
    pub fn into_params(self) -> KwtParams {
        self.params
    }

    /// Computes summed gradients, loss and hit count for a set of sample
    /// indices, splitting work across threads.
    fn batch_gradients(
        &self,
        data: &MfccDataset,
        batch: &[usize],
        threads: usize,
    ) -> Result<(Vec<f32>, f64, usize)> {
        let cfg = self.params.config;
        let chunk = batch.len().div_ceil(threads).max(1);
        let chunks: Vec<&[usize]> = batch.chunks(chunk).collect();
        let params = &self.params;

        let results: Vec<Result<(Vec<f32>, f64, usize)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|idxs| {
                    scope.spawn(move || {
                        let mut grads = KwtParams::zeros(cfg)?;
                        let mut loss_sum = 0.0f64;
                        let mut hits = 0usize;
                        for &i in idxs {
                            let cache = forward_cached(params, &data.x[i])?;
                            let (loss, dlogits) = softmax_cross_entropy(cache.logits(), data.y[i]);
                            loss_sum += loss as f64;
                            let pred = argmax(cache.logits());
                            if pred == data.y[i] {
                                hits += 1;
                            }
                            backward(params, &cache, &dlogits, &mut grads)?;
                        }
                        Ok((grads.flatten(), loss_sum, hits))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gradient worker panicked"))
                .collect()
        });

        let mut total = vec![0.0f32; self.params.param_count()];
        let mut loss_sum = 0.0f64;
        let mut hits = 0usize;
        for r in results {
            let (g, l, h) = r?;
            for (t, v) in total.iter_mut().zip(&g) {
                *t += v;
            }
            loss_sum += l;
            hits += h;
        }
        Ok((total, loss_sum, hits))
    }

    /// Runs the full training loop. The trainer's parameters end at the
    /// best-validation snapshot.
    ///
    /// # Errors
    ///
    /// Propagates model-shape errors (inconsistent dataset vs config).
    pub fn fit(&mut self, train: &MfccDataset, val: &MfccDataset) -> Result<TrainReport> {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let n = train.len();
        let steps_per_epoch = n.div_ceil(self.config.batch_size).max(1) as u64;
        let total_steps = steps_per_epoch * self.config.epochs as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut step: u64 = 0;

        for epoch in 0..self.config.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut epoch_hits = 0usize;
            let mut last_lr = 0.0f32;

            for batch in indices.chunks(self.config.batch_size) {
                let (mut grads, loss_sum, hits) = self.batch_gradients(train, batch, threads)?;
                epoch_loss += loss_sum;
                epoch_hits += hits;
                let scale = 1.0 / batch.len() as f32;
                for g in &mut grads {
                    *g *= scale;
                }
                if let Some(clip) = self.config.grad_clip {
                    clip_global_norm(&mut grads, clip);
                }
                let lr = cosine_lr(
                    step,
                    total_steps,
                    self.config.warmup_steps,
                    self.config.adam.lr,
                    self.config.lr_floor_frac,
                );
                last_lr = lr;
                let mut flat = self.params.flatten();
                self.optimizer.step(&mut flat, &grads, lr);
                self.params.assign_from_flat(&flat);
                step += 1;
            }

            let (val_acc, _) = evaluate(&self.params, val)?;
            if self.best.as_ref().is_none_or(|(b, _)| val_acc > *b) {
                self.best = Some((val_acc, self.params.clone()));
            }
            let stats = EpochStats {
                epoch,
                train_loss: epoch_loss / n as f64,
                train_accuracy: epoch_hits as f64 / n as f64,
                val_accuracy: val_acc,
                lr: last_lr,
            };
            if self.config.verbose {
                eprintln!(
                    "epoch {:3}  loss {:.4}  train {:.1}%  val {:.1}%  lr {:.2e}",
                    epoch,
                    stats.train_loss,
                    stats.train_accuracy * 100.0,
                    stats.val_accuracy * 100.0,
                    stats.lr
                );
            }
            history.push(stats);
        }

        // Restore the best-validation snapshot.
        let (best_val_accuracy, best_epoch) = if let Some((acc, params)) = self.best.take() {
            self.params = params;
            let ep = history
                .iter()
                .position(|s| s.val_accuracy >= acc)
                .unwrap_or(0);
            self.best = Some((acc, self.params.clone()));
            (acc, ep)
        } else {
            (0.0, 0)
        };

        Ok(TrainReport {
            history,
            best_val_accuracy,
            best_epoch,
        })
    }
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

fn clip_global_norm(grads: &mut [f32], max_norm: f32) {
    let norm = grads
        .iter()
        .map(|g| (*g as f64) * (*g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads {
            *g *= scale;
        }
    }
}

/// Evaluates a model on a dataset: `(accuracy, predictions)`.
///
/// Uses the inference-path forward of [`kwt_model`], so evaluation sees
/// exactly what deployment sees.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn evaluate(params: &KwtParams, data: &MfccDataset) -> Result<(f64, Vec<usize>)> {
    // Pack the weights once and reuse them for every sample (the whole
    // point of the forward_with fast path).
    let packed = params.pack_weights();
    let mut preds = Vec::with_capacity(data.len());
    for x in &data.x {
        preds.push(kwt_model::predict_with(params, &packed, x)?);
    }
    let acc = if preds.is_empty() {
        0.0
    } else {
        accuracy(&preds, &data.y)
    };
    Ok((acc, preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_model::KwtConfig;
    use kwt_tensor::Mat;

    /// A linearly separable toy dataset in MFCC shape: class 0 has energy
    /// in the first feature column, class 1 in the last.
    fn toy_dataset(cfg: &KwtConfig, n_per_class: usize, seed: u64) -> MfccDataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..2 * n_per_class {
            let label = i % 2;
            let jitter = |r: usize, c: usize| {
                let h = seed
                    .wrapping_add((i * 1000 + r * 31 + c) as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.4
            };
            let m = Mat::from_fn(cfg.input_time, cfg.input_freq, |r, c| {
                let hot = (label == 0 && c == 0) || (label == 1 && c == cfg.input_freq - 1);
                let signal = if hot { 2.0 } else { 0.0 };
                signal + jitter(r, c)
            });
            x.push(m);
            y.push(label);
        }
        MfccDataset {
            x,
            y,
            num_classes: 2,
        }
    }

    fn small_config() -> KwtConfig {
        KwtConfig {
            input_freq: 6,
            input_time: 5,
            dim: 8,
            depth: 1,
            heads: 1,
            mlp_dim: 8,
            dim_head: 4,
            num_classes: 2,
            ln_eps: 1e-5,
        }
    }

    #[test]
    fn trainer_learns_separable_task() {
        let cfg = small_config();
        let train = toy_dataset(&cfg, 24, 1);
        let val = toy_dataset(&cfg, 8, 2);
        let params = KwtParams::init(cfg, 7).unwrap();
        let mut trainer = Trainer::new(
            params,
            TrainConfig {
                epochs: 12,
                batch_size: 8,
                threads: 2,
                ..TrainConfig::default()
            },
        );
        let report = trainer.fit(&train, &val).unwrap();
        assert!(
            report.best_val_accuracy > 0.9,
            "failed to learn separable task: {:.2}",
            report.best_val_accuracy
        );
        assert_eq!(report.history.len(), 12);
        // loss should broadly decrease
        let first = report.history.first().unwrap().train_loss;
        let last = report.history.last().unwrap().train_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn threading_does_not_change_gradients() {
        let cfg = small_config();
        let data = toy_dataset(&cfg, 8, 3);
        let params = KwtParams::init(cfg, 9).unwrap();
        let t1 = Trainer::new(
            params.clone(),
            TrainConfig {
                threads: 1,
                ..TrainConfig::default()
            },
        );
        let t4 = Trainer::new(
            params,
            TrainConfig {
                threads: 4,
                ..TrainConfig::default()
            },
        );
        let batch: Vec<usize> = (0..data.len()).collect();
        let (g1, l1, h1) = t1.batch_gradients(&data, &batch, 1).unwrap();
        let (g4, l4, h4) = t4.batch_gradients(&data, &batch, 4).unwrap();
        assert_eq!(h1, h4);
        assert!((l1 - l4).abs() < 1e-6);
        for (a, b) in g1.iter().zip(&g4) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn evaluate_matches_manual_argmax() {
        let cfg = small_config();
        let data = toy_dataset(&cfg, 4, 5);
        let params = KwtParams::init(cfg, 1).unwrap();
        let (acc, preds) = evaluate(&params, &data).unwrap();
        assert_eq!(preds.len(), data.len());
        let manual: Vec<usize> = data
            .x
            .iter()
            .map(|x| {
                let l = kwt_model::forward(&params, x).unwrap();
                argmax(&l)
            })
            .collect();
        assert_eq!(preds, manual);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn clip_global_norm_bounds() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        clip_global_norm(&mut g, 1.0);
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        // below threshold: unchanged
        let mut h = vec![0.3f32, 0.4];
        clip_global_norm(&mut h, 1.0);
        assert_eq!(h, vec![0.3, 0.4]);
    }

    #[test]
    fn fit_restores_best_snapshot() {
        let cfg = small_config();
        let train = toy_dataset(&cfg, 12, 1);
        let val = toy_dataset(&cfg, 6, 2);
        let mut trainer = Trainer::new(
            KwtParams::init(cfg, 3).unwrap(),
            TrainConfig {
                epochs: 4,
                batch_size: 6,
                threads: 1,
                ..TrainConfig::default()
            },
        );
        let report = trainer.fit(&train, &val).unwrap();
        let (acc_now, _) = evaluate(trainer.params(), &val).unwrap();
        assert!(
            (acc_now - report.best_val_accuracy).abs() < 1e-9,
            "params are not the best snapshot: {acc_now} vs {}",
            report.best_val_accuracy
        );
    }
}
