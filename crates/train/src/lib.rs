//! # kwt-train
//!
//! From-scratch training for the KWT models: hand-derived reverse-mode
//! gradients for every layer (no autograd framework), an Adam optimiser,
//! and a data-parallel mini-batch trainer.
//!
//! The paper retrains KWT-1 into KWT-Tiny with Torch-KWT; this crate
//! replaces that external dependency so the "train a 369x smaller KWT"
//! experiment (Table IV) runs entirely inside the repository.
//!
//! The forward pass here ([`forward_cached`]) is differentially tested
//! against the inference pass in [`kwt_model`], and every gradient is
//! validated against central finite differences.
//!
//! # Example
//!
//! ```no_run
//! use kwt_dataset::{GscConfig, Split, SyntheticGsc};
//! use kwt_model::{KwtConfig, KwtParams};
//! use kwt_train::{TrainConfig, Trainer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ds = SyntheticGsc::new(GscConfig::default());
//! let fe = kwt_audio::kwt_tiny_frontend()?;
//! let train = ds.materialize(Split::Train, &fe)?;
//! let val = ds.materialize(Split::Val, &fe)?;
//!
//! let params = KwtParams::init(KwtConfig::kwt_tiny(), 42)?;
//! let mut trainer = Trainer::new(params, TrainConfig::default());
//! let report = trainer.fit(&train, &val)?;
//! println!("best val accuracy: {:.1}%", report.best_val_accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backprop;
mod loss;
mod metrics;
mod optimizer;
mod trainer;

pub use backprop::{backward, forward_cached, ForwardCache};
pub use loss::softmax_cross_entropy;
pub use metrics::{accuracy, confusion_matrix};
pub use optimizer::{Adam, AdamConfig};
pub use trainer::{evaluate, EpochStats, TrainConfig, TrainReport, Trainer};
