//! Shared emission helpers for geometry-specialised kernels.
//!
//! The bare-metal kernel generators (the hand-written `attention_a8`
//! emitter and the `kdot4.i8` GEMM / LayerNorm specialiser built on
//! top of these helpers) all emit the same handful of instruction
//! shapes: straight-line runs of packed
//! dot-product MACs with offset addressing, scalar MAC tails for depths
//! the packed loads cannot reach, and the fused `ksat.i16` + `kclip`
//! requantising epilogue. This module is the single home of those
//! shapes, so every generator produces byte-identical sequences for the
//! same plan — which is what lets a differential test pin one emitter
//! against another.
//!
//! All helpers take explicit base/temporary registers and **emit-time
//! constant** offsets; none of them clobbers anything beyond the
//! registers they are handed.

use crate::asm::Asm;
use crate::inst::{Inst, PackedOp};
use crate::reg::Reg;

/// Emits `blocks` straight-line packed i8 MAC groups:
/// `lw tmp_a, a_off+4·blk(pa); lw tmp_w, w_off+4·blk(pw);
/// kdot4.i8 acc, tmp_a, tmp_w` — 4 MACs per group, offset-addressed,
/// no pointer arithmetic. `pa`/`pw` must be word-aligned.
#[allow(clippy::too_many_arguments)]
pub fn dot4_i8_unrolled(
    asm: &mut Asm,
    acc: Reg,
    pa: Reg,
    pw: Reg,
    tmp_a: Reg,
    tmp_w: Reg,
    blocks: usize,
    a_off: i32,
    w_off: i32,
) {
    for blk in 0..blocks as i32 {
        asm.emit(Inst::Lw {
            rd: tmp_a,
            rs1: pa,
            imm: a_off + 4 * blk,
        });
        asm.emit(Inst::Lw {
            rd: tmp_w,
            rs1: pw,
            imm: w_off + 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot4I8,
            rd: acc,
            rs1: tmp_a,
            rs2: tmp_w,
        });
    }
}

/// Emits one packed MAC group per cached activation word:
/// `lw tmp_w, w_off+4·i(pw); kdot4.i8 acc, a_regs[i], tmp_w`. The
/// activation row lives in registers, so the group costs one load
/// instead of two — the row-cached GEMM inner loop.
pub fn dot4_i8_cached(asm: &mut Asm, acc: Reg, a_regs: &[Reg], pw: Reg, tmp_w: Reg, w_off: i32) {
    for (i, &ra) in a_regs.iter().enumerate() {
        asm.emit(Inst::Lw {
            rd: tmp_w,
            rs1: pw,
            imm: w_off + 4 * i as i32,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot4I8,
            rd: acc,
            rs1: ra,
            rs2: tmp_w,
        });
    }
}

/// Emits `count` straight-line scalar i8 MACs:
/// `lb tmp_a, a_off+i(pa); lb tmp_w, w_off+i(pw); mul tmp_a, tmp_a,
/// tmp_w; add acc, acc, tmp_a`. Byte loads, so no alignment
/// requirement — the tail (and odd-depth) path of the specialised GEMM.
#[allow(clippy::too_many_arguments)]
pub fn mac_i8_scalar(
    asm: &mut Asm,
    acc: Reg,
    pa: Reg,
    pw: Reg,
    tmp_a: Reg,
    tmp_w: Reg,
    count: usize,
    a_off: i32,
    w_off: i32,
) {
    for i in 0..count as i32 {
        asm.emit(Inst::Lb {
            rd: tmp_a,
            rs1: pa,
            imm: a_off + i,
        });
        asm.emit(Inst::Lb {
            rd: tmp_w,
            rs1: pw,
            imm: w_off + i,
        });
        asm.emit(Inst::Mul {
            rd: tmp_a,
            rs1: tmp_a,
            rs2: tmp_w,
        });
        asm.emit(Inst::Add {
            rd: acc,
            rs1: acc,
            rs2: tmp_a,
        });
    }
}

/// Emits the fused requantising epilogue narrowing an i32 accumulator
/// straight to i8: `ksat.i16 r, r, shift_reg; kclip r, r, clip_reg`
/// (`clip_reg` holds 7 for the i8 range). Every A8 GEMM-shaped kernel
/// ends each output in exactly this pair.
pub fn sat_clip_i8(asm: &mut Asm, r: Reg, shift_reg: Reg, clip_reg: Reg) {
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: r,
        rs1: r,
        rs2: shift_reg,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: r,
        rs1: r,
        rs2: clip_reg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use Reg::{A0, A1, T0, T1, T2, T3};

    fn words(f: impl FnOnce(&mut Asm)) -> Vec<u32> {
        let mut asm = Asm::new(0, 0x8000);
        f(&mut asm);
        asm.finish().expect("assembles").text
    }

    #[test]
    fn dot4_unrolled_matches_hand_sequence() {
        let helper = words(|asm| dot4_i8_unrolled(asm, T2, A0, A1, T0, T1, 2, 0, 8));
        let hand = words(|asm| {
            for blk in 0..2 {
                asm.emit(Inst::Lw {
                    rd: T0,
                    rs1: A0,
                    imm: 4 * blk,
                });
                asm.emit(Inst::Lw {
                    rd: T1,
                    rs1: A1,
                    imm: 8 + 4 * blk,
                });
                asm.emit(Inst::Packed {
                    op: PackedOp::Kdot4I8,
                    rd: T2,
                    rs1: T0,
                    rs2: T1,
                });
            }
        });
        assert_eq!(helper, hand);
    }

    #[test]
    fn cached_dot_loads_only_weights() {
        let text = words(|asm| dot4_i8_cached(asm, T2, &[T0, T3], A1, T1, 0));
        // two groups of (lw, kdot4): 4 instructions, no activation loads
        assert_eq!(text.len(), 4);
    }

    #[test]
    fn scalar_mac_and_epilogue_shapes() {
        let text = words(|asm| {
            mac_i8_scalar(asm, T2, A0, A1, T0, T1, 3, 4, 4);
            sat_clip_i8(asm, T2, A0, A1);
        });
        assert_eq!(text.len(), 3 * 4 + 2);
    }
}
