//! RV32C (compressed) instruction expansion.
//!
//! The Ibex core is RV32IMC; the simulator supports the C extension by
//! expanding each 16-bit instruction to its 32-bit equivalent through this
//! table. The assembler itself always emits 32-bit encodings (like
//! `gcc -mno-compressed` would); the expander exists so the simulated core
//! is faithful to the paper's platform and is exercised by hand-encoded
//! tests.

use crate::inst::Inst;
use crate::reg::Reg;

fn rc(bits: u16) -> Reg {
    // A "prime" 3-bit register field: x8..x15.
    Reg::from_num(8 + (bits as u32 & 0x7))
}

fn bit(word: u16, i: u32) -> u32 {
    (word as u32 >> i) & 1
}

fn bits(word: u16, hi: u32, lo: u32) -> u32 {
    (word as u32 >> lo) & ((1 << (hi - lo + 1)) - 1)
}

/// Expands a 16-bit compressed instruction to its 32-bit equivalent.
///
/// Returns `None` for illegal encodings (including the all-zero word,
/// which the spec defines as illegal) and for RV32C instructions that
/// touch the FP register file (not present on Ibex).
pub fn expand_compressed(word: u16) -> Option<Inst> {
    if word == 0 {
        return None;
    }
    let op = word & 0b11;
    let funct3 = bits(word, 15, 13);
    match (op, funct3) {
        // --- Quadrant 0 ---
        (0b00, 0b000) => {
            // C.ADDI4SPN: addi rd', sp, nzuimm
            let imm = (bits(word, 12, 11) << 4)
                | (bits(word, 10, 7) << 6)
                | (bit(word, 6) << 2)
                | (bit(word, 5) << 3);
            if imm == 0 {
                return None;
            }
            Some(Inst::Addi {
                rd: rc(word >> 2),
                rs1: Reg::Sp,
                imm: imm as i32,
            })
        }
        (0b00, 0b010) => {
            // C.LW: lw rd', uimm(rs1')
            let imm = (bits(word, 12, 10) << 3) | (bit(word, 6) << 2) | (bit(word, 5) << 6);
            Some(Inst::Lw {
                rd: rc(word >> 2),
                rs1: rc(word >> 7),
                imm: imm as i32,
            })
        }
        (0b00, 0b110) => {
            // C.SW: sw rs2', uimm(rs1')
            let imm = (bits(word, 12, 10) << 3) | (bit(word, 6) << 2) | (bit(word, 5) << 6);
            Some(Inst::Sw {
                rs2: rc(word >> 2),
                rs1: rc(word >> 7),
                imm: imm as i32,
            })
        }
        // --- Quadrant 1 ---
        (0b01, 0b000) => {
            // C.ADDI (rd = 0 -> NOP, canonical as addi x0, x0, 0)
            let rd = Reg::from_num(bits(word, 11, 7));
            let imm = ((bit(word, 12) << 5 | bits(word, 6, 2)) as i32) << 26 >> 26;
            Some(Inst::Addi { rd, rs1: rd, imm })
        }
        (0b01, 0b001) | (0b01, 0b101) => {
            // C.JAL (rd = ra) / C.J (rd = x0)
            let imm = (bit(word, 12) << 11)
                | (bit(word, 11) << 4)
                | (bits(word, 10, 9) << 8)
                | (bit(word, 8) << 10)
                | (bit(word, 7) << 6)
                | (bit(word, 6) << 7)
                | (bits(word, 5, 3) << 1)
                | (bit(word, 2) << 5);
            let offset = ((imm as i32) << 20) >> 20;
            Some(Inst::Jal {
                rd: if funct3 == 0b001 { Reg::Ra } else { Reg::Zero },
                offset,
            })
        }
        (0b01, 0b010) => {
            // C.LI: addi rd, x0, imm
            let rd = Reg::from_num(bits(word, 11, 7));
            let imm = ((bit(word, 12) << 5 | bits(word, 6, 2)) as i32) << 26 >> 26;
            Some(Inst::Addi {
                rd,
                rs1: Reg::Zero,
                imm,
            })
        }
        (0b01, 0b011) => {
            let rd = Reg::from_num(bits(word, 11, 7));
            if rd == Reg::Sp {
                // C.ADDI16SP
                let imm = (bit(word, 12) << 9)
                    | (bit(word, 6) << 4)
                    | (bit(word, 5) << 6)
                    | (bits(word, 4, 3) << 7)
                    | (bit(word, 2) << 5);
                let imm = ((imm as i32) << 22) >> 22;
                if imm == 0 {
                    return None;
                }
                Some(Inst::Addi {
                    rd: Reg::Sp,
                    rs1: Reg::Sp,
                    imm,
                })
            } else {
                // C.LUI
                let imm = (bit(word, 12) << 17) | (bits(word, 6, 2) << 12);
                let imm = ((imm as i32) << 14) >> 14;
                if imm == 0 {
                    return None;
                }
                Some(Inst::Lui { rd, imm })
            }
        }
        (0b01, 0b100) => {
            let rd = rc(word >> 7);
            match bits(word, 11, 10) {
                0b00 | 0b01 => {
                    // C.SRLI / C.SRAI (RV32: shamt[5] must be 0)
                    if bit(word, 12) != 0 {
                        return None;
                    }
                    let shamt = bits(word, 6, 2);
                    Some(if bits(word, 11, 10) == 0 {
                        Inst::Srli { rd, rs1: rd, shamt }
                    } else {
                        Inst::Srai { rd, rs1: rd, shamt }
                    })
                }
                0b10 => {
                    // C.ANDI
                    let imm = ((bit(word, 12) << 5 | bits(word, 6, 2)) as i32) << 26 >> 26;
                    Some(Inst::Andi { rd, rs1: rd, imm })
                }
                _ => {
                    if bit(word, 12) != 0 {
                        return None; // RV64-only C.SUBW/C.ADDW
                    }
                    let rs2 = rc(word >> 2);
                    Some(match bits(word, 6, 5) {
                        0b00 => Inst::Sub { rd, rs1: rd, rs2 },
                        0b01 => Inst::Xor { rd, rs1: rd, rs2 },
                        0b10 => Inst::Or { rd, rs1: rd, rs2 },
                        _ => Inst::And { rd, rs1: rd, rs2 },
                    })
                }
            }
        }
        (0b01, 0b110) | (0b01, 0b111) => {
            // C.BEQZ / C.BNEZ
            let imm = (bit(word, 12) << 8)
                | (bits(word, 11, 10) << 3)
                | (bits(word, 6, 5) << 6)
                | (bits(word, 4, 3) << 1)
                | (bit(word, 2) << 5);
            let offset = ((imm as i32) << 23) >> 23;
            let rs1 = rc(word >> 7);
            Some(if funct3 == 0b110 {
                Inst::Beq {
                    rs1,
                    rs2: Reg::Zero,
                    offset,
                }
            } else {
                Inst::Bne {
                    rs1,
                    rs2: Reg::Zero,
                    offset,
                }
            })
        }
        // --- Quadrant 2 ---
        (0b10, 0b000) => {
            // C.SLLI
            if bit(word, 12) != 0 {
                return None;
            }
            let rd = Reg::from_num(bits(word, 11, 7));
            Some(Inst::Slli {
                rd,
                rs1: rd,
                shamt: bits(word, 6, 2),
            })
        }
        (0b10, 0b010) => {
            // C.LWSP
            let rd = Reg::from_num(bits(word, 11, 7));
            if rd == Reg::Zero {
                return None;
            }
            let imm = (bit(word, 12) << 5) | (bits(word, 6, 4) << 2) | (bits(word, 3, 2) << 6);
            Some(Inst::Lw {
                rd,
                rs1: Reg::Sp,
                imm: imm as i32,
            })
        }
        (0b10, 0b100) => {
            let rs1 = Reg::from_num(bits(word, 11, 7));
            let rs2 = Reg::from_num(bits(word, 6, 2));
            match (bit(word, 12), rs1, rs2) {
                (0, Reg::Zero, _) => None,
                (0, _, Reg::Zero) => Some(Inst::Jalr {
                    rd: Reg::Zero,
                    rs1,
                    imm: 0,
                }),
                (0, rd, rs2) => Some(Inst::Add {
                    rd,
                    rs1: Reg::Zero,
                    rs2,
                }),
                (1, Reg::Zero, Reg::Zero) => Some(Inst::Ebreak),
                (1, _, Reg::Zero) => Some(Inst::Jalr {
                    rd: Reg::Ra,
                    rs1,
                    imm: 0,
                }),
                (1, rd, rs2) => Some(Inst::Add { rd, rs1: rd, rs2 }),
                _ => None,
            }
        }
        (0b10, 0b110) => {
            // C.SWSP
            let imm = (bits(word, 12, 9) << 2) | (bits(word, 8, 7) << 6);
            Some(Inst::Sw {
                rs2: Reg::from_num(bits(word, 6, 2)),
                rs1: Reg::Sp,
                imm: imm as i32,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
#[allow(clippy::unusual_byte_groupings)] // literals group by instruction field
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings_expand_correctly() {
        // c.addi a0, 1 => 0x0505
        assert_eq!(
            expand_compressed(0x0505),
            Some(Inst::Addi {
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1
            })
        );
        // c.li a0, 3 => 0x450d
        assert_eq!(
            expand_compressed(0x450D),
            Some(Inst::Addi {
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 3
            })
        );
        // c.mv a0, a1 => 0x852e
        assert_eq!(
            expand_compressed(0x852E),
            Some(Inst::Add {
                rd: Reg::A0,
                rs1: Reg::Zero,
                rs2: Reg::A1
            })
        );
        // c.jr ra (ret) => 0x8082
        assert_eq!(
            expand_compressed(0x8082),
            Some(Inst::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                imm: 0
            })
        );
        // c.add a0, a1 => 0x952e
        assert_eq!(
            expand_compressed(0x952E),
            Some(Inst::Add {
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A1
            })
        );
        // c.sub s0, s1 => 0x8c05
        assert_eq!(
            expand_compressed(0x8C05),
            Some(Inst::Sub {
                rd: Reg::S0,
                rs1: Reg::S0,
                rs2: Reg::S1
            })
        );
        // c.ebreak => 0x9002
        assert_eq!(expand_compressed(0x9002), Some(Inst::Ebreak));
        // c.lwsp a0, 0(sp) => 0x4502
        assert_eq!(
            expand_compressed(0x4502),
            Some(Inst::Lw {
                rd: Reg::A0,
                rs1: Reg::Sp,
                imm: 0
            })
        );
        // c.nop => 0x0001
        assert_eq!(
            expand_compressed(0x0001),
            Some(Inst::Addi {
                rd: Reg::Zero,
                rs1: Reg::Zero,
                imm: 0
            })
        );
    }

    #[test]
    fn zero_word_is_illegal() {
        assert_eq!(expand_compressed(0x0000), None);
    }

    #[test]
    fn addi4spn_zero_imm_is_illegal() {
        // funct3=000 op=00, rd'=s1, all imm bits zero
        assert_eq!(expand_compressed(0b000_00000000_001_00), None);
    }

    #[test]
    fn c_lw_sw_offsets() {
        // c.lw a2, 0(a0): funct3=010 op=00 rs1'=a0(2) rd'=a2(4)
        let w = 0b010_000_010_00_100_00u16;
        assert_eq!(
            expand_compressed(w),
            Some(Inst::Lw {
                rd: Reg::A2,
                rs1: Reg::A0,
                imm: 0
            })
        );
        // c.sw a2, 4(a0): uimm[2]=1 -> bit6
        let w = 0b110_000_010_10_100_00u16;
        assert_eq!(
            expand_compressed(w),
            Some(Inst::Sw {
                rs2: Reg::A2,
                rs1: Reg::A0,
                imm: 4
            })
        );
    }

    #[test]
    fn c_beqz_negative_offset() {
        // c.beqz s0, -4: offset -4 => imm[8|4:3|7:6|2:1|5] pattern
        // offset -4 = 0b111111100 (9-bit signed)
        // imm[8]=1 imm[7:6]=11 imm[5]=1 imm[4:3]=11 imm[2:1]=10
        let w: u16 = 0b110_1_11_000_11_10_1_01;
        match expand_compressed(w) {
            Some(Inst::Beq { rs1, rs2, offset }) => {
                assert_eq!(rs1, Reg::S0);
                assert_eq!(rs2, Reg::Zero);
                assert_eq!(offset, -4);
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn c_j_round_trip_via_sign_extension() {
        // c.j 0 (infinite loop): offset 0
        let w: u16 = 0b101_00000000000_01;
        assert_eq!(
            expand_compressed(w),
            Some(Inst::Jal {
                rd: Reg::Zero,
                offset: 0
            })
        );
    }

    #[test]
    fn rv64_only_forms_rejected() {
        // C.SRLI with shamt[5]=1 is RV64-only
        let w: u16 = 0b100_1_00_000_00001_01;
        assert_eq!(expand_compressed(w), None);
    }
}
