//! # kwt-rvasm
//!
//! An RV32 assembler-as-a-library: typed instruction constructors, a
//! program builder with labels and a data section, an encoder, a decoder
//! (shared with the `kwt-rv32` simulator) and a disassembler.
//!
//! Coverage: RV32I, the M extension, `Zicsr`, `ecall`/`ebreak`, the
//! paper's `custom-1` instruction (opcode `0b0101011`, Table VII), the
//! **Xkwtdot** `custom-2` packed-MAC extension (opcode `0b1011011`), and
//! an RV32C expander used by the simulator to execute compressed code.
//!
//! # Custom-instruction encoding map
//!
//! Both extensions use the standard RISC-V custom opcode space. All ops
//! are R-type with `funct7 = 0` unless noted; `klw.b2h` is I-type.
//!
//! | opcode (custom-1, `0101011`) | funct3 | mnemonic       | semantics |
//! |------------------------------|--------|----------------|-----------|
//! |                              | `000`  | `alu.exp`      | LUT `e^−x`, Q8.24 |
//! |                              | `001`  | `alu.invert`   | LUT `1/x`, Q8.24 |
//! |                              | `011`  | `alu.gelu`     | LUT `GELU(x)`, Q8.24 |
//! |                              | `100`  | `alu.tofixed`  | f32 → Q8.24 |
//! |                              | `101`  | `alu.tofloat`  | Q8.24 → f32 |
//! | opcode (custom-2, `1011011`) | funct3 | mnemonic       | semantics |
//! |                              | `000`  | `kdot4.i8`     | `rd += Σ₀³ i8·i8` (SMAQA-style) |
//! |                              | `001`  | `kdot2.i16`    | `rd += Σ₀¹ i16·i16` |
//! |                              | `010`  | `ksat.i16`     | `rd = sat16(rs1 >>ₐ rs2)` |
//! |                              | `011`  | `kclip`        | `rd = clamp(rs1, −2ⁿ, 2ⁿ−1)` |
//! |                              | `100`  | `klw.b2h`      | I-type: load 2 bytes, widen to 2×i16 |
//! |                              | `101`  | `kcvt.h2f`     | `f32(i16) · 2^−s` (dequantise) |
//! |                              | `110`  | `kcvt.f2h`     | `sat16(⌊f32 · 2^s⌋)` (requantise) |
//! |                              | `111`  | `kfadd.t` / `kfsub.t` / `kfmul.t` | funct7-selected truncating f32 ops (soft-float-exact) |
//!
//! The packed operands of `kdot4.i8`/`kdot2.i16` are fetched with plain
//! `lw` (4 i8 lanes or 2 i16 lanes per word); the only dedicated load the
//! extension needs is the **widening** `klw.b2h`, which feeds i8 weights
//! into the i16 dot-product lanes.
//!
//! # A8 (fully-INT8) kernel calling conventions
//!
//! The A8W8 inference pipeline uses the extension with **both** operands
//! i8 (no `klw.b2h`): activations and transposed `N×K` weights are
//! fetched four lanes per `lw` and accumulated with `kdot4.i8` — 16 MACs
//! per unrolled GEMM iteration. Kernel epilogues narrow the i32
//! accumulator straight to i8 with the `ksat.i16 rd, acc, shift` +
//! `kclip rd, rd, 7` pair, and the quantisation boundaries are the
//! two-instruction sequences `kcvt.h2f rd, rs1, 0` + `kfmul.t` (signed
//! power-of-two dequantise — a sign-extended `lb` is a valid i16
//! operand) and `kfmul.t` + `kcvt.f2h rd, rs1, 0` + `kclip rd, rd, 7`
//! (floor-requantise to i8). Generated kernels follow the ILP32 ABI:
//! `matmul_a8(A, Wt, bias|0, out, M, K, N, shift)` in `a0..a7`, with
//! 4-aligned operand bases and `K % 4 == 0` on the packed fast path
//! (anything else takes a bit-identical scalar fallback).
//!
//! The [`emit`] module packages these recurring shapes — straight-line
//! `lw`/`lw`/`kdot4.i8` MAC groups, register-cached variants, scalar
//! `lb` MAC tails and the `ksat.i16` + `kclip` epilogue — as reusable
//! helpers, so the hand-written fused-attention emitter and the
//! geometry-driven GEMM/LayerNorm specialiser in `kwt-baremetal`
//! generate byte-identical sequences from one implementation.
//!
//! # Example
//!
//! ```
//! use kwt_rvasm::{Asm, Inst, Reg};
//!
//! # fn main() -> Result<(), kwt_rvasm::AsmError> {
//! let mut asm = Asm::new(0x0000_0000, 0x0000_8000);
//! // a0 = a0 + a1; return
//! asm.emit(Inst::Add { rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 });
//! asm.emit(Inst::Ebreak);
//! let program = asm.finish()?;
//! assert_eq!(program.text.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod compressed;
pub mod emit;
mod error;
mod inst;
mod reg;

pub use asm::{Asm, Label, Program};
pub use compressed::expand_compressed;
pub use error::AsmError;
pub use inst::{CustomOp, Inst, PackedOp, F3_KLW_B2H, OP_CUSTOM1, OP_CUSTOM2};
pub use reg::Reg;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AsmError>;

/// Standard machine-mode CSR: cycle counter.
pub const CSR_MCYCLE: u32 = 0xB00;
/// Standard machine-mode CSR: retired-instruction counter.
pub const CSR_MINSTRET: u32 = 0xB02;
/// Custom CSR used by the profiler: write = push region id.
pub const CSR_PROFILE_PUSH: u32 = 0x7C0;
/// Custom CSR used by the profiler: write = pop region.
pub const CSR_PROFILE_POP: u32 = 0x7C1;
