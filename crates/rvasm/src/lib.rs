//! # kwt-rvasm
//!
//! An RV32 assembler-as-a-library: typed instruction constructors, a
//! program builder with labels and a data section, an encoder, a decoder
//! (shared with the `kwt-rv32` simulator) and a disassembler.
//!
//! Coverage: RV32I, the M extension, `Zicsr`, `ecall`/`ebreak`, the
//! paper's `custom-1` instruction (opcode `0b0101011`, Table VII), and an
//! RV32C expander used by the simulator to execute compressed code.
//!
//! # Example
//!
//! ```
//! use kwt_rvasm::{Asm, Inst, Reg};
//!
//! # fn main() -> Result<(), kwt_rvasm::AsmError> {
//! let mut asm = Asm::new(0x0000_0000, 0x0000_8000);
//! // a0 = a0 + a1; return
//! asm.emit(Inst::Add { rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 });
//! asm.emit(Inst::Ebreak);
//! let program = asm.finish()?;
//! assert_eq!(program.text.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod compressed;
mod error;
mod inst;
mod reg;

pub use asm::{Asm, Label, Program};
pub use compressed::expand_compressed;
pub use error::AsmError;
pub use inst::{CustomOp, Inst};
pub use reg::Reg;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AsmError>;

/// Standard machine-mode CSR: cycle counter.
pub const CSR_MCYCLE: u32 = 0xB00;
/// Standard machine-mode CSR: retired-instruction counter.
pub const CSR_MINSTRET: u32 = 0xB02;
/// Custom CSR used by the profiler: write = push region id.
pub const CSR_PROFILE_PUSH: u32 = 0x7C0;
/// Custom CSR used by the profiler: write = pop region.
pub const CSR_PROFILE_POP: u32 = 0x7C1;
