//! The program builder: label management, pseudo-instructions, data
//! section, and final fix-up resolution.

use crate::error::AsmError;
use crate::inst::Inst;
use crate::reg::Reg;
use crate::Result;
use std::collections::BTreeMap;

/// An opaque label handle produced by [`Asm::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// What a pending fix-up patches once label addresses are known.
#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// B-type branch at text index; patch offset to label.
    Branch { index: usize, label: Label },
    /// J-type jump at text index.
    Jump { index: usize, label: Label },
    /// `auipc`+`addi` pair at text index (the `la` pseudo-instruction).
    LoadAddr { index: usize, label: Label },
}

/// A fully resolved program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Base address of the text section.
    pub text_base: u32,
    /// Base address of the data section.
    pub data_base: u32,
    /// Encoded instructions.
    pub text: Vec<u32>,
    /// Raw data bytes.
    pub data: Vec<u8>,
    /// Named symbols (functions, data objects) → absolute address.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Size of the text section in bytes.
    pub fn text_bytes(&self) -> usize {
        self.text.len() * 4
    }

    /// Total image footprint (text + data) in bytes — the paper's
    /// "Program Size" metric (Table IX).
    pub fn total_bytes(&self) -> usize {
        self.text_bytes() + self.data.len()
    }

    /// Address of a named symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Disassembles the text section (address, word, mnemonic) — for
    /// debugging and golden tests.
    pub fn disassemble(&self) -> Vec<(u32, u32, String)> {
        self.text
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let addr = self.text_base + 4 * i as u32;
                let text = Inst::decode(w)
                    .map(|inst| inst.to_string())
                    .unwrap_or_else(|| format!(".word {w:#010x}"));
                (addr, w, text)
            })
            .collect()
    }
}

/// The assembler/builder.
///
/// Emit instructions with [`Asm::emit`], reference code positions through
/// labels, place data with the `data_*` methods, then call [`Asm::finish`]
/// to resolve all fix-ups.
#[derive(Debug, Default)]
pub struct Asm {
    text_base: u32,
    data_base: u32,
    text: Vec<u32>,
    data: Vec<u8>,
    labels: Vec<Option<u32>>,
    fixups: Vec<Fixup>,
    symbols: BTreeMap<String, u32>,
}

impl Asm {
    /// Creates a builder with the given section base addresses.
    pub fn new(text_base: u32, data_base: u32) -> Self {
        Asm {
            text_base,
            data_base,
            ..Asm::default()
        }
    }

    /// Current address of the next emitted instruction.
    pub fn pc(&self) -> u32 {
        self.text_base + 4 * self.text.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Emits one instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.text.push(inst.encode());
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current pc.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if already bound.
    pub fn bind(&mut self, label: Label) -> Result<()> {
        if self.labels[label.0].is_some() {
            return Err(AsmError::DuplicateLabel { label: label.0 });
        }
        self.labels[label.0] = Some(self.pc());
        Ok(())
    }

    /// Convenience: creates a label bound at the current pc and registers
    /// it as a named symbol.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.new_label();
        self.labels[l.0] = Some(self.pc());
        self.symbols.insert(name.to_string(), self.pc());
        l
    }

    /// Registers a named symbol at an arbitrary address.
    pub fn symbol_at(&mut self, name: &str, addr: u32) {
        self.symbols.insert(name.to_string(), addr);
    }

    // ---- label-relative instructions (patched in `finish`) ----

    /// Emits a conditional branch to `label` (fix-up applied later).
    ///
    /// `template` must be a B-type instruction; its offset is replaced.
    pub fn branch_to(&mut self, template: Inst, label: Label) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label,
        });
        self.emit(template);
    }

    /// Emits `jal rd, label`.
    pub fn jal_to(&mut self, rd: Reg, label: Label) {
        self.fixups.push(Fixup::Jump {
            index: self.text.len(),
            label,
        });
        self.emit(Inst::Jal { rd, offset: 0 });
    }

    /// Emits `j label` (`jal x0`).
    pub fn jump_to(&mut self, label: Label) {
        self.jal_to(Reg::Zero, label);
    }

    /// Emits `call label` (`jal ra`).
    pub fn call(&mut self, label: Label) {
        self.jal_to(Reg::Ra, label);
    }

    /// Emits `ret` (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) {
        self.emit(Inst::Jalr {
            rd: Reg::Zero,
            rs1: Reg::Ra,
            imm: 0,
        });
    }

    /// Emits `la rd, label` as an `auipc`+`addi` pair.
    pub fn la(&mut self, rd: Reg, label: Label) {
        self.fixups.push(Fixup::LoadAddr {
            index: self.text.len(),
            label,
        });
        self.emit(Inst::Auipc { rd, imm: 0 });
        self.emit(Inst::Addi {
            rd,
            rs1: rd,
            imm: 0,
        });
    }

    /// Emits `li rd, value` (one or two instructions depending on range).
    pub fn li(&mut self, rd: Reg, value: i32) {
        if (-2048..=2047).contains(&value) {
            self.emit(Inst::Addi {
                rd,
                rs1: Reg::Zero,
                imm: value,
            });
        } else {
            // lui + addi with sign-carry correction.
            let lo = (value << 20) >> 20; // low 12, sign extended
            let hi = value.wrapping_sub(lo);
            self.emit(Inst::Lui { rd, imm: hi });
            if lo != 0 {
                self.emit(Inst::Addi {
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
        }
    }

    /// Emits `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Addi {
            rd,
            rs1: rs,
            imm: 0,
        });
    }

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.emit(Inst::Addi {
            rd: Reg::Zero,
            rs1: Reg::Zero,
            imm: 0,
        });
    }

    // ---- data section ----

    /// Appends raw bytes to the data section, returning their absolute
    /// address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u32 {
        let addr = self.data_base + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Aligns the data cursor to a multiple of `align` bytes.
    pub fn data_align(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Appends little-endian `i32` words, 4-byte aligned.
    pub fn data_words_i32(&mut self, words: &[i32]) -> u32 {
        self.data_align(4);
        let addr = self.data_base + self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends `f32` values (IEEE-754 bits, little endian), 4-byte
    /// aligned.
    pub fn data_words_f32(&mut self, words: &[f32]) -> u32 {
        self.data_align(4);
        let addr = self.data_base + self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        addr
    }

    /// Appends `i16` values, 2-byte aligned.
    pub fn data_halves_i16(&mut self, halves: &[i16]) -> u32 {
        self.data_align(2);
        let addr = self.data_base + self.data.len() as u32;
        for h in halves {
            self.data.extend_from_slice(&h.to_le_bytes());
        }
        addr
    }

    /// Appends `i8` values.
    pub fn data_bytes_i8(&mut self, bytes: &[i8]) -> u32 {
        let addr = self.data_base + self.data.len() as u32;
        self.data.extend(bytes.iter().map(|&b| b as u8));
        addr
    }

    /// Reserves `len` zeroed bytes (a `.bss`-style scratch buffer),
    /// returning the address.
    pub fn data_reserve(&mut self, len: usize, align: usize) -> u32 {
        self.data_align(align);
        let addr = self.data_base + self.data.len() as u32;
        self.data.resize(self.data.len() + len, 0);
        addr
    }

    /// Current size of the data section in bytes.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    // ---- finalisation ----

    /// Resolves all fix-ups and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`], [`AsmError::BranchOutOfRange`]
    /// or [`AsmError::JumpOutOfRange`] when labels are missing or targets
    /// unreachable.
    pub fn finish(self) -> Result<Program> {
        let Asm {
            text_base,
            data_base,
            mut text,
            data,
            labels,
            fixups,
            symbols,
        } = self;
        let resolve = |label: Label| -> Result<u32> {
            labels[label.0].ok_or(AsmError::UnboundLabel { label: label.0 })
        };
        for fixup in fixups {
            match fixup {
                Fixup::Branch { index, label } => {
                    let target = resolve(label)? as i64;
                    let pc = (text_base + 4 * index as u32) as i64;
                    let offset = target - pc;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { offset });
                    }
                    let mut inst = Inst::decode(text[index]).expect("encoded by this assembler");
                    match &mut inst {
                        Inst::Beq { offset: o, .. }
                        | Inst::Bne { offset: o, .. }
                        | Inst::Blt { offset: o, .. }
                        | Inst::Bge { offset: o, .. }
                        | Inst::Bltu { offset: o, .. }
                        | Inst::Bgeu { offset: o, .. } => *o = offset as i32,
                        other => panic!("branch fixup on non-branch {other:?}"),
                    }
                    text[index] = inst.encode();
                }
                Fixup::Jump { index, label } => {
                    let target = resolve(label)? as i64;
                    let pc = (text_base + 4 * index as u32) as i64;
                    let offset = target - pc;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { offset });
                    }
                    let mut inst = Inst::decode(text[index]).expect("encoded by this assembler");
                    match &mut inst {
                        Inst::Jal { offset: o, .. } => *o = offset as i32,
                        other => panic!("jump fixup on non-jal {other:?}"),
                    }
                    text[index] = inst.encode();
                }
                Fixup::LoadAddr { index, label } => {
                    let target = resolve(label)? as i64;
                    let pc = (text_base + 4 * index as u32) as i64;
                    let offset = target - pc;
                    let lo = ((offset as i32) << 20) >> 20;
                    let hi = (offset as i32).wrapping_sub(lo);
                    let (auipc_rd, addi_rd);
                    match Inst::decode(text[index]).expect("encoded by this assembler") {
                        Inst::Auipc { rd, .. } => auipc_rd = rd,
                        other => panic!("la fixup on non-auipc {other:?}"),
                    }
                    match Inst::decode(text[index + 1]).expect("encoded by this assembler") {
                        Inst::Addi { rd, .. } => addi_rd = rd,
                        other => panic!("la fixup on non-addi {other:?}"),
                    }
                    text[index] = Inst::Auipc {
                        rd: auipc_rd,
                        imm: hi,
                    }
                    .encode();
                    text[index + 1] = Inst::Addi {
                        rd: addi_rd,
                        rs1: auipc_rd,
                        imm: lo,
                    }
                    .encode();
                }
            }
        }
        Ok(Program {
            text_base,
            data_base,
            text,
            data,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Asm::new(0, 0x8000);
        let loop_top = asm.new_label();
        let done = asm.new_label();
        asm.li(Reg::T0, 3);
        asm.bind(loop_top).unwrap();
        asm.branch_to(
            Inst::Beq {
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: 0,
            },
            done,
        );
        asm.emit(Inst::Addi {
            rd: Reg::T0,
            rs1: Reg::T0,
            imm: -1,
        });
        asm.jump_to(loop_top);
        asm.bind(done).unwrap();
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();

        // Instruction 1 is the branch (li fits in one addi here).
        match Inst::decode(p.text[1]).unwrap() {
            Inst::Beq { offset, .. } => assert_eq!(offset, 12), // to ebreak
            other => panic!("{other:?}"),
        }
        match Inst::decode(p.text[3]).unwrap() {
            Inst::Jal { offset, .. } => assert_eq!(offset, -8), // back to branch
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_label_errors() {
        let mut asm = Asm::new(0, 0);
        let l = asm.new_label();
        asm.jump_to(l);
        assert!(matches!(asm.finish(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn duplicate_bind_errors() {
        let mut asm = Asm::new(0, 0);
        let l = asm.new_label();
        asm.bind(l).unwrap();
        assert!(matches!(asm.bind(l), Err(AsmError::DuplicateLabel { .. })));
    }

    #[test]
    fn li_covers_full_range() {
        for value in [
            0,
            1,
            -1,
            2047,
            -2048,
            2048,
            -2049,
            0x1234_5678,
            i32::MIN,
            i32::MAX,
        ] {
            let mut asm = Asm::new(0, 0);
            asm.li(Reg::A0, value);
            asm.emit(Inst::Ebreak);
            let p = asm.finish().unwrap();
            // Emulate the li sequence.
            let mut a0: i32 = 0;
            for &w in &p.text {
                match Inst::decode(w).unwrap() {
                    Inst::Addi {
                        rd: Reg::A0,
                        rs1,
                        imm,
                    } => {
                        let base = if rs1 == Reg::Zero { 0 } else { a0 };
                        a0 = base.wrapping_add(imm);
                    }
                    Inst::Lui { rd: Reg::A0, imm } => a0 = imm,
                    Inst::Ebreak => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(a0, value, "li {value}");
        }
    }

    #[test]
    fn la_resolves_to_data_symbol() {
        let mut asm = Asm::new(0x0000, 0x9000);
        let table = asm.new_label();
        let addr = asm.data_words_i32(&[1, 2, 3]);
        asm.labels[table.0] = Some(addr); // bind label to data address
        asm.la(Reg::A0, table);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        // Emulate auipc+addi.
        match (
            Inst::decode(p.text[0]).unwrap(),
            Inst::decode(p.text[1]).unwrap(),
        ) {
            (Inst::Auipc { imm: hi, .. }, Inst::Addi { imm: lo, .. }) => {
                let got = ((hi as i64) + lo as i64) as u32;
                assert_eq!(got, addr);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_section_layout_and_alignment() {
        let mut asm = Asm::new(0, 0x8000);
        let a = asm.data_bytes(&[1, 2, 3]);
        let b = asm.data_words_i32(&[0x0403_0201]);
        let c = asm.data_halves_i16(&[-1]);
        let d = asm.data_reserve(8, 4);
        assert_eq!(a, 0x8000);
        assert_eq!(b % 4, 0);
        assert_eq!(b, 0x8004); // 3 bytes + 1 pad
        assert_eq!(c, 0x8008);
        assert_eq!(d % 4, 0);
        let p = asm.finish().unwrap();
        assert_eq!(p.data[0..3], [1, 2, 3]);
        assert_eq!(p.data[4..8], [0x01, 0x02, 0x03, 0x04]); // little endian
        assert_eq!(p.data[8..10], [0xFF, 0xFF]);
        assert!(p.total_bytes() >= p.data.len());
    }

    #[test]
    fn f32_data_round_trips() {
        let mut asm = Asm::new(0, 0);
        let addr = asm.data_words_f32(&[1.5, -0.25]);
        let p = asm.finish().unwrap();
        let off = (addr - p.data_base) as usize;
        let bits = u32::from_le_bytes(p.data[off..off + 4].try_into().unwrap());
        assert_eq!(f32::from_bits(bits), 1.5);
    }

    #[test]
    fn symbols_and_disassembly() {
        let mut asm = Asm::new(0x100, 0x8000);
        asm.here("entry");
        asm.li(Reg::A0, 7);
        asm.ret();
        let p = asm.finish().unwrap();
        assert_eq!(p.symbol("entry"), Some(0x100));
        assert_eq!(p.symbol("missing"), None);
        let dis = p.disassemble();
        assert_eq!(dis[0].2, "addi a0, zero, 7");
        assert_eq!(dis[1].2, "jalr zero, 0(ra)");
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut asm = Asm::new(0, 0);
        let far = asm.new_label();
        asm.branch_to(
            Inst::Beq {
                rs1: Reg::Zero,
                rs2: Reg::Zero,
                offset: 0,
            },
            far,
        );
        for _ in 0..2000 {
            asm.nop();
        }
        asm.bind(far).unwrap();
        assert!(matches!(
            asm.finish(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }
}
