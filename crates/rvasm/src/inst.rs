//! Instruction set: constructors, encoder, decoder, disassembler.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five behaviours of the paper's `custom-1` R-type instruction
/// (Table VII), selected by `funct3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CustomOp {
    /// `ALU_EXP` — LUT `e^{-X}` for Q8.24 `X` (funct3 = 000).
    Exp = 0b000,
    /// `ALU_INVERT` — LUT `1/X` for Q8.24 `X` (funct3 = 001).
    Invert = 0b001,
    /// `ALU_GELU` — LUT `GELU(X)` for Q8.24 `X` (funct3 = 011).
    Gelu = 0b011,
    /// `ALU_TO_FIXED` — IEEE-754 single → Q8.24 (funct3 = 100).
    ToFixed = 0b100,
    /// `ALU_TO_FLOAT` — Q8.24 → IEEE-754 single (funct3 = 101).
    ToFloat = 0b101,
}

impl CustomOp {
    /// Decodes a funct3 value.
    pub fn from_funct3(f: u32) -> Option<CustomOp> {
        match f {
            0b000 => Some(CustomOp::Exp),
            0b001 => Some(CustomOp::Invert),
            0b011 => Some(CustomOp::Gelu),
            0b100 => Some(CustomOp::ToFixed),
            0b101 => Some(CustomOp::ToFloat),
            _ => None,
        }
    }

    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CustomOp::Exp => "alu.exp",
            CustomOp::Invert => "alu.invert",
            CustomOp::Gelu => "alu.gelu",
            CustomOp::ToFixed => "alu.tofixed",
            CustomOp::ToFloat => "alu.tofloat",
        }
    }
}

/// The R-type operations of the **Xkwtdot** `custom-2` packed-MAC
/// extension (opcode `0b1011011`), selected by `funct3`. The packed
/// widening load `klw.b2h` shares the opcode but is I-type and has its
/// own [`Inst`] variant ([`Inst::KlwB2h`], funct3 = `100`).
///
/// | funct3 | mnemonic    | semantics                                            |
/// |--------|-------------|------------------------------------------------------|
/// | `000`  | `kdot4.i8`  | `rd += Σ i8(rs1.b[i])·i8(rs2.b[i])`, i = 0..4        |
/// | `001`  | `kdot2.i16` | `rd += Σ i16(rs1.h[i])·i16(rs2.h[i])`, i = 0..2      |
/// | `010`  | `ksat.i16`  | `rd = clamp(rs1 >>ₐ (rs2 & 31), −2¹⁵, 2¹⁵−1)`        |
/// | `011`  | `kclip`     | `rd = clamp(rs1, −2ⁿ, 2ⁿ−1)`, `n = rs2 & 31`         |
/// | `101`  | `kcvt.h2f`  | `rd = f32(i16(rs1.h[0])) · 2^−(rs2 & 31)`            |
/// | `110`  | `kcvt.f2h`  | `rd = sat16(⌊f32(rs1) · 2^(rs2 & 31)⌋)`              |
/// | `111`  | (funct7-selected float slot, see below)                            |
///
/// The funct3 = `111` slot multiplexes the truncating scalar-float ops
/// on funct7 — single-instruction versions of the bare-metal soft-float
/// library (round-toward-zero, denormals flush to signed zero, NaNs
/// behave like infinities), bit-identical to the generated `sf_add` /
/// `sf_sub` / `sf_mul` routines:
///
/// | funct7    | mnemonic  | semantics                      |
/// |-----------|-----------|--------------------------------|
/// | `0000000` | `kfadd.t` | truncating f32 `rs1 + rs2`     |
/// | `0000001` | `kfsub.t` | truncating f32 `rs1 - rs2`     |
/// | `0000010` | `kfmul.t` | truncating f32 `rs1 · rs2`     |
///
/// All integer accumulation is wrapping two's-complement i32, so a
/// `kdot` sequence is bit-identical to the equivalent scalar
/// `mul`/`add` chain in any order. The dot products read `rd` as a
/// third source operand (SMAQA-style destructive accumulate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackedOp {
    /// `kdot4.i8` — 4-lane i8×i8 dot-product accumulate (funct3 = 000).
    Kdot4I8,
    /// `kdot2.i16` — 2-lane i16×i16 dot-product accumulate (funct3 = 001).
    Kdot2I16,
    /// `ksat.i16` — arithmetic shift right + saturate to i16 (funct3 = 010).
    KsatI16,
    /// `kclip` — clamp to a signed power-of-two range (funct3 = 011).
    Kclip,
    /// `kcvt.h2f` — i16 → f32 with power-of-two down-scale (funct3 = 101).
    KcvtH2F,
    /// `kcvt.f2h` — f32 → i16 floor with power-of-two up-scale (funct3 = 110).
    KcvtF2H,
    /// `kfadd.t` — truncating f32 add (funct3 = 111, funct7 = 0).
    KfaddT,
    /// `kfsub.t` — truncating f32 subtract (funct3 = 111, funct7 = 1).
    KfsubT,
    /// `kfmul.t` — truncating f32 multiply (funct3 = 111, funct7 = 2).
    KfmulT,
}

impl PackedOp {
    /// The op's funct3 field.
    pub fn funct3(self) -> u32 {
        match self {
            PackedOp::Kdot4I8 => 0b000,
            PackedOp::Kdot2I16 => 0b001,
            PackedOp::KsatI16 => 0b010,
            PackedOp::Kclip => 0b011,
            PackedOp::KcvtH2F => 0b101,
            PackedOp::KcvtF2H => 0b110,
            PackedOp::KfaddT | PackedOp::KfsubT | PackedOp::KfmulT => 0b111,
        }
    }

    /// The op's funct7 field (a sub-op selector in the funct3 = 111
    /// float slot; 0 elsewhere).
    pub fn funct7(self) -> u32 {
        match self {
            PackedOp::KfsubT => 1,
            PackedOp::KfmulT => 2,
            _ => 0,
        }
    }

    /// Decodes a funct3/funct7 pair.
    pub fn from_funct3_funct7(f3: u32, f7: u32) -> Option<PackedOp> {
        match (f3, f7) {
            (0b000, 0) => Some(PackedOp::Kdot4I8),
            (0b001, 0) => Some(PackedOp::Kdot2I16),
            (0b010, 0) => Some(PackedOp::KsatI16),
            (0b011, 0) => Some(PackedOp::Kclip),
            (0b101, 0) => Some(PackedOp::KcvtH2F),
            (0b110, 0) => Some(PackedOp::KcvtF2H),
            (0b111, 0) => Some(PackedOp::KfaddT),
            (0b111, 1) => Some(PackedOp::KfsubT),
            (0b111, 2) => Some(PackedOp::KfmulT),
            _ => None,
        }
    }

    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PackedOp::Kdot4I8 => "kdot4.i8",
            PackedOp::Kdot2I16 => "kdot2.i16",
            PackedOp::KsatI16 => "ksat.i16",
            PackedOp::Kclip => "kclip",
            PackedOp::KcvtH2F => "kcvt.h2f",
            PackedOp::KcvtF2H => "kcvt.f2h",
            PackedOp::KfaddT => "kfadd.t",
            PackedOp::KfsubT => "kfsub.t",
            PackedOp::KfmulT => "kfmul.t",
        }
    }
}

/// One RV32 instruction (RV32I + M + Zicsr + custom-1 + custom-2).
///
/// Immediates are stored sign-extended in `i32`; branch/jump offsets are
/// byte offsets relative to the instruction's own address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Inst {
    // U-type
    Lui {
        rd: Reg,
        imm: i32,
    },
    Auipc {
        rd: Reg,
        imm: i32,
    },
    // J-type
    Jal {
        rd: Reg,
        offset: i32,
    },
    // I-type jumps/loads
    Jalr {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lb {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lh {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lw {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lbu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lhu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    // B-type
    Beq {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bne {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Blt {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bge {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bltu {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bgeu {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    // S-type
    Sb {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sh {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sw {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },
    // I-type ALU
    Addi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Slti {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sltiu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Xori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Ori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Andi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Slli {
        rd: Reg,
        rs1: Reg,
        shamt: u32,
    },
    Srli {
        rd: Reg,
        rs1: Reg,
        shamt: u32,
    },
    Srai {
        rd: Reg,
        rs1: Reg,
        shamt: u32,
    },
    // R-type ALU
    Add {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sub {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sll {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Slt {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sltu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Xor {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Srl {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sra {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Or {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    And {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    // M extension
    Mul {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulh {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulhsu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulhu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Div {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Divu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Rem {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Remu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    // System
    Ecall,
    Ebreak,
    // Zicsr (register forms)
    Csrrw {
        rd: Reg,
        rs1: Reg,
        csr: u32,
    },
    Csrrs {
        rd: Reg,
        rs1: Reg,
        csr: u32,
    },
    Csrrc {
        rd: Reg,
        rs1: Reg,
        csr: u32,
    },
    // The paper's custom-1 instruction (opcode 0b0101011, funct7 = 0).
    Custom {
        op: CustomOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    // Xkwtdot custom-2 R-type ops (opcode 0b1011011, funct7 = 0).
    Packed {
        op: PackedOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    // Xkwtdot packed widening load: loads the halfword at rs1+imm and
    // sign-extends each of its two bytes into a packed i16 lane of rd
    // (opcode 0b1011011, funct3 = 100, I-type).
    KlwB2h {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
}

const OP_LUI: u32 = 0b0110111;
const OP_AUIPC: u32 = 0b0010111;
const OP_JAL: u32 = 0b1101111;
const OP_JALR: u32 = 0b1100111;
const OP_BRANCH: u32 = 0b1100011;
const OP_LOAD: u32 = 0b0000011;
const OP_STORE: u32 = 0b0100011;
const OP_IMM: u32 = 0b0010011;
const OP_OP: u32 = 0b0110011;
const OP_SYSTEM: u32 = 0b1110011;
/// The RISC-V "custom-1" opcode the paper reserves for its extension.
pub const OP_CUSTOM1: u32 = 0b0101011;
/// The RISC-V "custom-2" opcode carrying the Xkwtdot packed-MAC
/// extension (R-type ops + the `klw.b2h` widening load).
pub const OP_CUSTOM2: u32 = 0b1011011;
/// funct3 of the `klw.b2h` packed widening load within `custom-2`.
pub const F3_KLW_B2H: u32 = 0b100;

fn enc_r(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25)
        | (rs2.num() << 20)
        | (rs1.num() << 15)
        | (funct3 << 12)
        | (rd.num() << 7)
        | opcode
}

fn enc_i(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1.num() << 15) | (funct3 << 12) | (rd.num() << 7) | opcode
}

fn enc_s(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7F) << 25)
        | (rs2.num() << 20)
        | (rs1.num() << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(offset: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3F) << 25)
        | (rs2.num() << 20)
        | (rs1.num() << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn enc_u(imm: i32, rd: Reg, opcode: u32) -> u32 {
    (imm as u32 & 0xFFFF_F000) | (rd.num() << 7) | opcode
}

fn enc_j(offset: i32, rd: Reg, opcode: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xFF) << 12)
        | (rd.num() << 7)
        | opcode
}

impl Inst {
    /// Encodes to the 32-bit instruction word.
    pub fn encode(self) -> u32 {
        use Inst::*;
        match self {
            Lui { rd, imm } => enc_u(imm, rd, OP_LUI),
            Auipc { rd, imm } => enc_u(imm, rd, OP_AUIPC),
            Jal { rd, offset } => enc_j(offset, rd, OP_JAL),
            Jalr { rd, rs1, imm } => enc_i(imm, rs1, 0b000, rd, OP_JALR),
            Lb { rd, rs1, imm } => enc_i(imm, rs1, 0b000, rd, OP_LOAD),
            Lh { rd, rs1, imm } => enc_i(imm, rs1, 0b001, rd, OP_LOAD),
            Lw { rd, rs1, imm } => enc_i(imm, rs1, 0b010, rd, OP_LOAD),
            Lbu { rd, rs1, imm } => enc_i(imm, rs1, 0b100, rd, OP_LOAD),
            Lhu { rd, rs1, imm } => enc_i(imm, rs1, 0b101, rd, OP_LOAD),
            Beq { rs1, rs2, offset } => enc_b(offset, rs2, rs1, 0b000, OP_BRANCH),
            Bne { rs1, rs2, offset } => enc_b(offset, rs2, rs1, 0b001, OP_BRANCH),
            Blt { rs1, rs2, offset } => enc_b(offset, rs2, rs1, 0b100, OP_BRANCH),
            Bge { rs1, rs2, offset } => enc_b(offset, rs2, rs1, 0b101, OP_BRANCH),
            Bltu { rs1, rs2, offset } => enc_b(offset, rs2, rs1, 0b110, OP_BRANCH),
            Bgeu { rs1, rs2, offset } => enc_b(offset, rs2, rs1, 0b111, OP_BRANCH),
            Sb { rs2, rs1, imm } => enc_s(imm, rs2, rs1, 0b000, OP_STORE),
            Sh { rs2, rs1, imm } => enc_s(imm, rs2, rs1, 0b001, OP_STORE),
            Sw { rs2, rs1, imm } => enc_s(imm, rs2, rs1, 0b010, OP_STORE),
            Addi { rd, rs1, imm } => enc_i(imm, rs1, 0b000, rd, OP_IMM),
            Slti { rd, rs1, imm } => enc_i(imm, rs1, 0b010, rd, OP_IMM),
            Sltiu { rd, rs1, imm } => enc_i(imm, rs1, 0b011, rd, OP_IMM),
            Xori { rd, rs1, imm } => enc_i(imm, rs1, 0b100, rd, OP_IMM),
            Ori { rd, rs1, imm } => enc_i(imm, rs1, 0b110, rd, OP_IMM),
            Andi { rd, rs1, imm } => enc_i(imm, rs1, 0b111, rd, OP_IMM),
            Slli { rd, rs1, shamt } => enc_i(shamt as i32, rs1, 0b001, rd, OP_IMM),
            Srli { rd, rs1, shamt } => enc_i(shamt as i32, rs1, 0b101, rd, OP_IMM),
            Srai { rd, rs1, shamt } => {
                enc_i(shamt as i32 | (0b0100000 << 5), rs1, 0b101, rd, OP_IMM)
            }
            Add { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b000, rd, OP_OP),
            Sub { rd, rs1, rs2 } => enc_r(0b0100000, rs2, rs1, 0b000, rd, OP_OP),
            Sll { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b001, rd, OP_OP),
            Slt { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b010, rd, OP_OP),
            Sltu { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b011, rd, OP_OP),
            Xor { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b100, rd, OP_OP),
            Srl { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b101, rd, OP_OP),
            Sra { rd, rs1, rs2 } => enc_r(0b0100000, rs2, rs1, 0b101, rd, OP_OP),
            Or { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b110, rd, OP_OP),
            And { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0b111, rd, OP_OP),
            Mul { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b000, rd, OP_OP),
            Mulh { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b001, rd, OP_OP),
            Mulhsu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b010, rd, OP_OP),
            Mulhu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b011, rd, OP_OP),
            Div { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b100, rd, OP_OP),
            Divu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b101, rd, OP_OP),
            Rem { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b110, rd, OP_OP),
            Remu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0b111, rd, OP_OP),
            Ecall => enc_i(0, Reg::Zero, 0, Reg::Zero, OP_SYSTEM),
            Ebreak => enc_i(1, Reg::Zero, 0, Reg::Zero, OP_SYSTEM),
            Csrrw { rd, rs1, csr } => enc_i(csr as i32, rs1, 0b001, rd, OP_SYSTEM),
            Csrrs { rd, rs1, csr } => enc_i(csr as i32, rs1, 0b010, rd, OP_SYSTEM),
            Csrrc { rd, rs1, csr } => enc_i(csr as i32, rs1, 0b011, rd, OP_SYSTEM),
            Custom { op, rd, rs1, rs2 } => enc_r(0, rs2, rs1, op as u32, rd, OP_CUSTOM1),
            Packed { op, rd, rs1, rs2 } => {
                enc_r(op.funct7(), rs2, rs1, op.funct3(), rd, OP_CUSTOM2)
            }
            KlwB2h { rd, rs1, imm } => enc_i(imm, rs1, F3_KLW_B2H, rd, OP_CUSTOM2),
        }
    }

    /// Decodes a 32-bit word; `None` for illegal/unsupported encodings.
    pub fn decode(word: u32) -> Option<Inst> {
        use Inst::*;
        let opcode = word & 0x7F;
        let rd = Reg::from_num(word >> 7 & 0x1F);
        let funct3 = word >> 12 & 0x7;
        let rs1 = Reg::from_num(word >> 15 & 0x1F);
        let rs2 = Reg::from_num(word >> 20 & 0x1F);
        let funct7 = word >> 25;
        let imm_i = (word as i32) >> 20;
        let imm_s = ((word & 0xFE00_0000) as i32 >> 20) | (word as i32 >> 7 & 0x1F);
        let imm_b = (((word >> 31 & 1) << 12)
            | ((word >> 7 & 1) << 11)
            | ((word >> 25 & 0x3F) << 5)
            | ((word >> 8 & 0xF) << 1)) as i32;
        let imm_b = (imm_b << 19) >> 19; // sign extend from bit 12
        let imm_u = (word & 0xFFFF_F000) as i32;
        let imm_j = (((word >> 31 & 1) << 20)
            | ((word >> 12 & 0xFF) << 12)
            | ((word >> 20 & 1) << 11)
            | ((word >> 21 & 0x3FF) << 1)) as i32;
        let imm_j = (imm_j << 11) >> 11; // sign extend from bit 20

        Some(match opcode {
            OP_LUI => Lui { rd, imm: imm_u },
            OP_AUIPC => Auipc { rd, imm: imm_u },
            OP_JAL => Jal { rd, offset: imm_j },
            OP_JALR if funct3 == 0 => Jalr {
                rd,
                rs1,
                imm: imm_i,
            },
            OP_BRANCH => match funct3 {
                0b000 => Beq {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                0b001 => Bne {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                0b100 => Blt {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                0b101 => Bge {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                0b110 => Bltu {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                0b111 => Bgeu {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                _ => return None,
            },
            OP_LOAD => match funct3 {
                0b000 => Lb {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b001 => Lh {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b010 => Lw {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b100 => Lbu {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b101 => Lhu {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                _ => return None,
            },
            OP_STORE => match funct3 {
                0b000 => Sb {
                    rs2,
                    rs1,
                    imm: imm_s,
                },
                0b001 => Sh {
                    rs2,
                    rs1,
                    imm: imm_s,
                },
                0b010 => Sw {
                    rs2,
                    rs1,
                    imm: imm_s,
                },
                _ => return None,
            },
            OP_IMM => match funct3 {
                0b000 => Addi {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b010 => Slti {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b011 => Sltiu {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b100 => Xori {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b110 => Ori {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b111 => Andi {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b001 if funct7 == 0 => Slli {
                    rd,
                    rs1,
                    shamt: rs2.num(),
                },
                0b101 if funct7 == 0 => Srli {
                    rd,
                    rs1,
                    shamt: rs2.num(),
                },
                0b101 if funct7 == 0b0100000 => Srai {
                    rd,
                    rs1,
                    shamt: rs2.num(),
                },
                _ => return None,
            },
            OP_OP => match (funct7, funct3) {
                (0, 0b000) => Add { rd, rs1, rs2 },
                (0b0100000, 0b000) => Sub { rd, rs1, rs2 },
                (0, 0b001) => Sll { rd, rs1, rs2 },
                (0, 0b010) => Slt { rd, rs1, rs2 },
                (0, 0b011) => Sltu { rd, rs1, rs2 },
                (0, 0b100) => Xor { rd, rs1, rs2 },
                (0, 0b101) => Srl { rd, rs1, rs2 },
                (0b0100000, 0b101) => Sra { rd, rs1, rs2 },
                (0, 0b110) => Or { rd, rs1, rs2 },
                (0, 0b111) => And { rd, rs1, rs2 },
                (1, 0b000) => Mul { rd, rs1, rs2 },
                (1, 0b001) => Mulh { rd, rs1, rs2 },
                (1, 0b010) => Mulhsu { rd, rs1, rs2 },
                (1, 0b011) => Mulhu { rd, rs1, rs2 },
                (1, 0b100) => Div { rd, rs1, rs2 },
                (1, 0b101) => Divu { rd, rs1, rs2 },
                (1, 0b110) => Rem { rd, rs1, rs2 },
                (1, 0b111) => Remu { rd, rs1, rs2 },
                _ => return None,
            },
            OP_SYSTEM => match funct3 {
                0 => match word >> 20 {
                    0 => Ecall,
                    1 => Ebreak,
                    _ => return None,
                },
                0b001 => Csrrw {
                    rd,
                    rs1,
                    csr: word >> 20,
                },
                0b010 => Csrrs {
                    rd,
                    rs1,
                    csr: word >> 20,
                },
                0b011 => Csrrc {
                    rd,
                    rs1,
                    csr: word >> 20,
                },
                _ => return None,
            },
            OP_CUSTOM1 if funct7 == 0 => Custom {
                op: CustomOp::from_funct3(funct3)?,
                rd,
                rs1,
                rs2,
            },
            OP_CUSTOM2 if funct3 == F3_KLW_B2H => KlwB2h {
                rd,
                rs1,
                imm: imm_i,
            },
            OP_CUSTOM2 => Packed {
                op: PackedOp::from_funct3_funct7(funct3, funct7)?,
                rd,
                rs1,
                rs2,
            },
            _ => return None,
        })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
            Lb { rd, rs1, imm } => write!(f, "lb {rd}, {imm}({rs1})"),
            Lh { rd, rs1, imm } => write!(f, "lh {rd}, {imm}({rs1})"),
            Lw { rd, rs1, imm } => write!(f, "lw {rd}, {imm}({rs1})"),
            Lbu { rd, rs1, imm } => write!(f, "lbu {rd}, {imm}({rs1})"),
            Lhu { rd, rs1, imm } => write!(f, "lhu {rd}, {imm}({rs1})"),
            Beq { rs1, rs2, offset } => write!(f, "beq {rs1}, {rs2}, {offset}"),
            Bne { rs1, rs2, offset } => write!(f, "bne {rs1}, {rs2}, {offset}"),
            Blt { rs1, rs2, offset } => write!(f, "blt {rs1}, {rs2}, {offset}"),
            Bge { rs1, rs2, offset } => write!(f, "bge {rs1}, {rs2}, {offset}"),
            Bltu { rs1, rs2, offset } => write!(f, "bltu {rs1}, {rs2}, {offset}"),
            Bgeu { rs1, rs2, offset } => write!(f, "bgeu {rs1}, {rs2}, {offset}"),
            Sb { rs2, rs1, imm } => write!(f, "sb {rs2}, {imm}({rs1})"),
            Sh { rs2, rs1, imm } => write!(f, "sh {rs2}, {imm}({rs1})"),
            Sw { rs2, rs1, imm } => write!(f, "sw {rs2}, {imm}({rs1})"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Sltiu { rd, rs1, imm } => write!(f, "sltiu {rd}, {rs1}, {imm}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Srai { rd, rs1, shamt } => write!(f, "srai {rd}, {rs1}, {shamt}"),
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Mulh { rd, rs1, rs2 } => write!(f, "mulh {rd}, {rs1}, {rs2}"),
            Mulhsu { rd, rs1, rs2 } => write!(f, "mulhsu {rd}, {rs1}, {rs2}"),
            Mulhu { rd, rs1, rs2 } => write!(f, "mulhu {rd}, {rs1}, {rs2}"),
            Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Divu { rd, rs1, rs2 } => write!(f, "divu {rd}, {rs1}, {rs2}"),
            Rem { rd, rs1, rs2 } => write!(f, "rem {rd}, {rs1}, {rs2}"),
            Remu { rd, rs1, rs2 } => write!(f, "remu {rd}, {rs1}, {rs2}"),
            Ecall => write!(f, "ecall"),
            Ebreak => write!(f, "ebreak"),
            Csrrw { rd, rs1, csr } => write!(f, "csrrw {rd}, {csr:#x}, {rs1}"),
            Csrrs { rd, rs1, csr } => write!(f, "csrrs {rd}, {csr:#x}, {rs1}"),
            Csrrc { rd, rs1, csr } => write!(f, "csrrc {rd}, {csr:#x}, {rs1}"),
            Custom { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Packed { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            KlwB2h { rd, rs1, imm } => write!(f, "klw.b2h {rd}, {imm}({rs1})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference encodings cross-checked against the RISC-V spec / GNU as.
    #[test]
    fn known_encodings() {
        // addi x1, x2, -1 => imm=0xfff rs1=2 f3=0 rd=1 op=0010011
        assert_eq!(
            Inst::Addi {
                rd: Reg::Ra,
                rs1: Reg::Sp,
                imm: -1
            }
            .encode(),
            0xFFF1_0093
        );
        // add x3, x4, x5
        assert_eq!(
            Inst::Add {
                rd: Reg::Gp,
                rs1: Reg::Tp,
                rs2: Reg::T0
            }
            .encode(),
            0x0052_01B3
        );
        // lui a0, 0x12345
        assert_eq!(
            Inst::Lui {
                rd: Reg::A0,
                imm: 0x1234_5000
            }
            .encode(),
            0x1234_5537
        );
        // lw a1, 8(sp)
        assert_eq!(
            Inst::Lw {
                rd: Reg::A1,
                rs1: Reg::Sp,
                imm: 8
            }
            .encode(),
            0x0081_2583
        );
        // sw a1, 12(sp)
        assert_eq!(
            Inst::Sw {
                rs2: Reg::A1,
                rs1: Reg::Sp,
                imm: 12
            }
            .encode(),
            0x00B1_2623
        );
        // ecall / ebreak
        assert_eq!(Inst::Ecall.encode(), 0x0000_0073);
        assert_eq!(Inst::Ebreak.encode(), 0x0010_0073);
        // mul a0, a1, a2
        assert_eq!(
            Inst::Mul {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .encode(),
            0x02C5_8533
        );
    }

    #[test]
    fn custom1_encoding_matches_paper() {
        // Fig. 6 / Table VII: R-type, opcode 0101011, funct7 = 0.
        let w = Inst::Custom {
            op: CustomOp::Gelu,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::Zero,
        }
        .encode();
        assert_eq!(w & 0x7F, 0b0101011, "custom-1 opcode");
        assert_eq!(w >> 25, 0, "funct7 must be 0");
        assert_eq!(w >> 12 & 0x7, 0b011, "ALU_GELU funct3 = 3'b011");
    }

    #[test]
    fn branch_offset_encoding() {
        // beq x0, x0, -8 (backwards loop)
        let w = Inst::Beq {
            rs1: Reg::Zero,
            rs2: Reg::Zero,
            offset: -8,
        }
        .encode();
        match Inst::decode(w).unwrap() {
            Inst::Beq { offset, .. } => assert_eq!(offset, -8),
            other => panic!("decoded {other:?}"),
        }
        // jal ra, +2048
        let w = Inst::Jal {
            rd: Reg::Ra,
            offset: 2048,
        }
        .encode();
        match Inst::decode(w).unwrap() {
            Inst::Jal { rd, offset } => {
                assert_eq!(rd, Reg::Ra);
                assert_eq!(offset, 2048);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Inst::decode(0x0000_0000), None); // all zeros is illegal
        assert_eq!(Inst::decode(0xFFFF_FFFF), None);
    }

    #[test]
    fn all_custom_ops_round_trip() {
        for op in [
            CustomOp::Exp,
            CustomOp::Invert,
            CustomOp::Gelu,
            CustomOp::ToFixed,
            CustomOp::ToFloat,
        ] {
            let inst = Inst::Custom {
                op,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            };
            assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
        // funct3 = 010 is not a defined custom op
        let bad = enc_r(0, Reg::Zero, Reg::Zero, 0b010, Reg::Zero, OP_CUSTOM1);
        assert_eq!(Inst::decode(bad), None);
    }

    #[test]
    fn custom2_encoding_space() {
        // R-type, opcode 1011011, funct7 = 0 for the packed ALU ops.
        let w = Inst::Packed {
            op: PackedOp::Kdot4I8,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        }
        .encode();
        assert_eq!(w & 0x7F, 0b1011011, "custom-2 opcode");
        assert_eq!(w >> 25, 0, "funct7 must be 0");
        assert_eq!(w >> 12 & 0x7, 0b000, "kdot4.i8 funct3 = 3'b000");
        // klw.b2h is I-type: funct3 = 100, imm in [31:20].
        let w = Inst::KlwB2h {
            rd: Reg::T0,
            rs1: Reg::T1,
            imm: -2,
        }
        .encode();
        assert_eq!(w & 0x7F, 0b1011011);
        assert_eq!(w >> 12 & 0x7, 0b100);
        assert_eq!((w as i32) >> 20, -2);
    }

    #[test]
    fn all_packed_ops_round_trip() {
        for op in [
            PackedOp::Kdot4I8,
            PackedOp::Kdot2I16,
            PackedOp::KsatI16,
            PackedOp::Kclip,
            PackedOp::KcvtH2F,
            PackedOp::KcvtF2H,
            PackedOp::KfaddT,
            PackedOp::KfsubT,
            PackedOp::KfmulT,
        ] {
            let inst = Inst::Packed {
                op,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            };
            assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
        for imm in [-2048, -2, 0, 2, 2047] {
            let inst = Inst::KlwB2h {
                rd: Reg::A0,
                rs1: Reg::Sp,
                imm,
            };
            assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
        // funct7 = 3 is reserved in the float slot
        let bad = enc_r(3, Reg::Zero, Reg::Zero, 0b111, Reg::Zero, OP_CUSTOM2);
        assert_eq!(Inst::decode(bad), None);
        // non-float R-type packed ops require funct7 = 0
        let bad = enc_r(1, Reg::Zero, Reg::Zero, 0b000, Reg::Zero, OP_CUSTOM2);
        assert_eq!(Inst::decode(bad), None);
    }

    #[test]
    fn display_disassembly() {
        assert_eq!(
            Inst::Addi {
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 42
            }
            .to_string(),
            "addi a0, zero, 42"
        );
        assert_eq!(
            Inst::Custom {
                op: CustomOp::Exp,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::Zero
            }
            .to_string(),
            "alu.exp a0, a1, zero"
        );
        assert_eq!(
            Inst::Lw {
                rd: Reg::T0,
                rs1: Reg::Sp,
                imm: -4
            }
            .to_string(),
            "lw t0, -4(sp)"
        );
        assert_eq!(
            Inst::Packed {
                op: PackedOp::Kdot2I16,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .to_string(),
            "kdot2.i16 a0, a1, a2"
        );
        assert_eq!(
            Inst::KlwB2h {
                rd: Reg::T0,
                rs1: Reg::A0,
                imm: 2
            }
            .to_string(),
            "klw.b2h t0, 2(a0)"
        );
    }

    #[test]
    fn shift_encodings_distinguish_srl_sra() {
        let srli = Inst::Srli {
            rd: Reg::A0,
            rs1: Reg::A0,
            shamt: 5,
        };
        let srai = Inst::Srai {
            rd: Reg::A0,
            rs1: Reg::A0,
            shamt: 5,
        };
        assert_ne!(srli.encode(), srai.encode());
        assert_eq!(Inst::decode(srli.encode()), Some(srli));
        assert_eq!(Inst::decode(srai.encode()), Some(srai));
    }

    #[test]
    fn csr_round_trip() {
        let i = Inst::Csrrw {
            rd: Reg::Zero,
            rs1: Reg::A0,
            csr: 0x7C0,
        };
        assert_eq!(Inst::decode(i.encode()), Some(i));
        let i = Inst::Csrrs {
            rd: Reg::A0,
            rs1: Reg::Zero,
            csr: 0xB00,
        };
        assert_eq!(Inst::decode(i.encode()), Some(i));
    }
}
