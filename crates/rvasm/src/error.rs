use std::fmt;

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to an address.
    UnboundLabel {
        /// Internal label id.
        label: usize,
    },
    /// A branch target is beyond the ±4 KiB B-type range.
    BranchOutOfRange {
        /// Offset that did not fit.
        offset: i64,
    },
    /// A jump target is beyond the ±1 MiB J-type range.
    JumpOutOfRange {
        /// Offset that did not fit.
        offset: i64,
    },
    /// An immediate does not fit its field.
    ImmOutOfRange {
        /// The operation affected.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A label was bound twice.
    DuplicateLabel {
        /// Internal label id.
        label: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label {label} was never bound"),
            AsmError::BranchOutOfRange { offset } => {
                write!(f, "branch offset {offset} outside +-4KiB")
            }
            AsmError::JumpOutOfRange { offset } => {
                write!(f, "jump offset {offset} outside +-1MiB")
            }
            AsmError::ImmOutOfRange { what, value } => {
                write!(f, "immediate {value} out of range for {what}")
            }
            AsmError::DuplicateLabel { label } => write!(f, "label {label} bound twice"),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AsmError::UnboundLabel { label: 3 }
            .to_string()
            .contains("3"));
        assert!(AsmError::BranchOutOfRange { offset: 5000 }
            .to_string()
            .contains("4KiB"));
    }
}
