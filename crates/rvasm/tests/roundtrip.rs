//! Property tests: every constructible instruction must survive
//! encode → decode unchanged, and the disassembler must never panic.

use kwt_rvasm::{CustomOp, Inst, Reg};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::from_num)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

/// Branch offsets: even, 13-bit signed.
fn boffset() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

/// Jump offsets: even, 21-bit signed.
fn joffset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2)
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    let r = reg_strategy;
    prop_oneof![
        (r(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (r(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (r(), joffset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Jalr { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lw { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lb { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lhu { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rs2, rs1, imm)| Inst::Sw { rs2, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rs2, rs1, imm)| Inst::Sh { rs2, rs1, imm }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Beq { rs1, rs2, offset }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Bltu { rs1, rs2, offset }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Addi { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Andi { rd, rs1, imm }),
        (r(), r(), 0u32..32).prop_map(|(rd, rs1, shamt)| Inst::Slli { rd, rs1, shamt }),
        (r(), r(), 0u32..32).prop_map(|(rd, rs1, shamt)| Inst::Srai { rd, rs1, shamt }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Sub { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Mul { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Mulhu { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Div { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Remu { rd, rs1, rs2 }),
        (r(), r(), 0u32..4096).prop_map(|(rd, rs1, csr)| Inst::Csrrw { rd, rs1, csr }),
        (
            prop_oneof![
                Just(CustomOp::Exp),
                Just(CustomOp::Invert),
                Just(CustomOp::Gelu),
                Just(CustomOp::ToFixed),
                Just(CustomOp::ToFloat)
            ],
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::Custom { op, rd, rs1, rs2 }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(inst in inst_strategy()) {
        let encoded = inst.encode();
        let decoded = Inst::decode(encoded);
        prop_assert_eq!(decoded, Some(inst));
    }

    #[test]
    fn disassembly_never_empty(inst in inst_strategy()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Inst::decode(word);
    }

    #[test]
    fn compressed_expansion_never_panics(word in any::<u16>()) {
        let _ = kwt_rvasm::expand_compressed(word);
    }

    #[test]
    fn compressed_expansion_produces_valid_instructions(word in any::<u16>()) {
        if let Some(inst) = kwt_rvasm::expand_compressed(word) {
            // Whatever the expander produces must itself round-trip.
            prop_assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
    }
}
