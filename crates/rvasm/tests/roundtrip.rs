//! Property tests: every constructible instruction must survive
//! encode → decode unchanged, and the disassembler must never panic.
//! The strategy covers **all** instruction forms: RV32I, M, Zicsr,
//! system, the custom-1 LUT ops and the custom-2 Xkwtdot packed ops;
//! separate properties cover the compressed-parcel expander.

use kwt_rvasm::{CustomOp, Inst, PackedOp, Reg};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::from_num)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

/// Branch offsets: even, 13-bit signed.
fn boffset() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

/// Jump offsets: even, 21-bit signed.
fn joffset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2)
}

fn custom_op() -> impl Strategy<Value = CustomOp> {
    prop_oneof![
        Just(CustomOp::Exp),
        Just(CustomOp::Invert),
        Just(CustomOp::Gelu),
        Just(CustomOp::ToFixed),
        Just(CustomOp::ToFloat),
    ]
}

fn packed_op() -> impl Strategy<Value = PackedOp> {
    prop_oneof![
        Just(PackedOp::Kdot4I8),
        Just(PackedOp::Kdot2I16),
        Just(PackedOp::KsatI16),
        Just(PackedOp::Kclip),
        Just(PackedOp::KcvtH2F),
        Just(PackedOp::KcvtF2H),
        Just(PackedOp::KfaddT),
        Just(PackedOp::KfsubT),
        Just(PackedOp::KfmulT),
    ]
}

/// U-type instructions.
fn u_type() -> impl Strategy<Value = Inst> {
    let r = reg_strategy;
    let uimm = -(1i32 << 19)..(1 << 19);
    prop_oneof![
        (r(), uimm.clone()).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (r(), uimm).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
    ]
}

/// Jumps, loads, stores, branches.
fn control_and_memory() -> impl Strategy<Value = Inst> {
    let r = reg_strategy;
    prop_oneof![
        (r(), joffset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Jalr { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lb { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lh { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lw { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lbu { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Lhu { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rs2, rs1, imm)| Inst::Sb { rs2, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rs2, rs1, imm)| Inst::Sh { rs2, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rs2, rs1, imm)| Inst::Sw { rs2, rs1, imm }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Beq { rs1, rs2, offset }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Bne { rs1, rs2, offset }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Blt { rs1, rs2, offset }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Bge { rs1, rs2, offset }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Bltu { rs1, rs2, offset }),
        (r(), r(), boffset()).prop_map(|(rs1, rs2, offset)| Inst::Bgeu { rs1, rs2, offset }),
    ]
}

/// I-type and shift-immediate ALU instructions.
fn imm_alu() -> impl Strategy<Value = Inst> {
    let r = reg_strategy;
    prop_oneof![
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Addi { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Slti { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Sltiu { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Xori { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Ori { rd, rs1, imm }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Andi { rd, rs1, imm }),
        (r(), r(), 0u32..32).prop_map(|(rd, rs1, shamt)| Inst::Slli { rd, rs1, shamt }),
        (r(), r(), 0u32..32).prop_map(|(rd, rs1, shamt)| Inst::Srli { rd, rs1, shamt }),
        (r(), r(), 0u32..32).prop_map(|(rd, rs1, shamt)| Inst::Srai { rd, rs1, shamt }),
    ]
}

/// R-type ALU + full M extension.
fn reg_alu() -> impl Strategy<Value = Inst> {
    let r = reg_strategy;
    macro_rules! rrr {
        ($name:ident) => {
            (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::$name { rd, rs1, rs2 })
        };
    }
    prop_oneof![
        rrr!(Add),
        rrr!(Sub),
        rrr!(Sll),
        rrr!(Slt),
        rrr!(Sltu),
        rrr!(Xor),
        rrr!(Srl),
        rrr!(Sra),
        rrr!(Or),
        rrr!(And),
        rrr!(Mul),
        rrr!(Mulh),
        rrr!(Mulhsu),
        rrr!(Mulhu),
        rrr!(Div),
        rrr!(Divu),
        rrr!(Rem),
        rrr!(Remu),
    ]
}

/// System, CSR, and both custom extensions.
fn system_and_custom() -> impl Strategy<Value = Inst> {
    let r = reg_strategy;
    prop_oneof![
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (r(), r(), 0u32..4096).prop_map(|(rd, rs1, csr)| Inst::Csrrw { rd, rs1, csr }),
        (r(), r(), 0u32..4096).prop_map(|(rd, rs1, csr)| Inst::Csrrs { rd, rs1, csr }),
        (r(), r(), 0u32..4096).prop_map(|(rd, rs1, csr)| Inst::Csrrc { rd, rs1, csr }),
        (custom_op(), r(), r(), r()).prop_map(|(op, rd, rs1, rs2)| Inst::Custom {
            op,
            rd,
            rs1,
            rs2
        }),
        (packed_op(), r(), r(), r()).prop_map(|(op, rd, rs1, rs2)| Inst::Packed {
            op,
            rd,
            rs1,
            rs2
        }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, imm)| Inst::KlwB2h { rd, rs1, imm }),
    ]
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        u_type(),
        control_and_memory(),
        imm_alu(),
        reg_alu(),
        system_and_custom(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(inst in inst_strategy()) {
        let encoded = inst.encode();
        let decoded = Inst::decode(encoded);
        prop_assert_eq!(decoded, Some(inst));
    }

    #[test]
    fn disassembly_never_empty(inst in inst_strategy()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Inst::decode(word);
    }

    #[test]
    fn compressed_expansion_never_panics(word in any::<u16>()) {
        let _ = kwt_rvasm::expand_compressed(word);
    }

    #[test]
    fn compressed_expansion_produces_valid_instructions(word in any::<u16>()) {
        if let Some(inst) = kwt_rvasm::expand_compressed(word) {
            // Whatever the expander produces must itself round-trip.
            prop_assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
    }

    #[test]
    fn decoded_words_reencode_to_themselves_or_canonical(word in any::<u32>()) {
        // decode → encode must be stable: the re-encoded word decodes to
        // the same instruction (encode may canonicalise don't-care bits).
        if let Some(inst) = Inst::decode(word) {
            prop_assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
    }
}
