//! Golden-vector tests for the MFCC front end.
//!
//! Three seeded, noise-bearing clips pin the pipeline two ways:
//!
//! * the **f64 oracle** (`extract_padded_reference`) must reproduce
//!   frozen feature vectors captured at PR 5 — guarding the reference
//!   itself against silent drift;
//! * the **fixed-point path** (`extract_padded`) must track the oracle
//!   within a max-abs-error bound (measured worst case at freeze time:
//!   `2.4e-3`; gated at `0.01` to absorb platform rounding slack).

use kwt_audio::kwt_tiny_frontend;

/// Deterministic noisy tone clips — the same family the engine
/// equivalence tests and benchmarks use.
fn clip(seed: u64) -> Vec<f32> {
    (0..16_000u64)
        .map(|i| {
            let t = i as f64 / 16_000.0;
            let h =
                (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            (0.5 * (2.0 * std::f64::consts::PI * (220.0 + 40.0 * seed as f64) * t).sin()
                + 0.05 * noise) as f32
        })
        .collect()
}

/// Frame 3 of the f64 reference path for the KWT-Tiny geometry, frozen
/// at PR 5 (see `examples` history): `(seed, [16 coefficients])`.
const GOLDEN_FRAME3: [(u64, [f32; 16]); 3] = [
    (
        1,
        [
            -1.4069326, -1.7952964, 3.7914045, 2.692485, 1.9986938, -1.0626798, -2.6019905,
            -3.7900736, -6.0490737, -6.745946, -9.33786, -5.674756, -3.6256025, -2.7411797,
            0.11178787, 1.7969197,
        ],
    ),
    (
        5,
        [
            -0.8006678, -1.5606927, 0.9960982, -1.5860007, -2.771465, -5.1851935, -6.621843,
            -4.0732875, -4.614869, -1.1658273, 2.749404, 3.9626102, 3.87497, 3.4375463, 0.16099039,
            0.19226782,
        ],
    ),
    (
        9,
        [
            -2.6552718,
            -2.7079623,
            -0.34134296,
            -4.6114035,
            -2.8139153,
            -5.0189414,
            -5.4843807,
            1.2290556,
            4.5630875,
            5.9597707,
            3.1476507,
            -1.1861806,
            -2.8969367,
            -2.9917135,
            -5.619845,
            -1.2318281,
        ],
    ),
];

#[test]
fn reference_path_reproduces_frozen_vectors() {
    let fe = kwt_tiny_frontend().unwrap();
    for (seed, want) in &GOLDEN_FRAME3 {
        let m = fe.extract_padded_reference(&clip(*seed)).unwrap();
        for (k, w) in want.iter().enumerate() {
            let got = m[(3, k)];
            assert!(
                (got - w).abs() <= 1e-4 * w.abs().max(1.0),
                "seed {seed} coeff {k}: reference {got} drifted from frozen {w}"
            );
        }
    }
}

#[test]
fn fixed_path_tracks_reference_within_golden_bound() {
    let fe = kwt_tiny_frontend().unwrap();
    for (seed, _) in &GOLDEN_FRAME3 {
        let audio = clip(*seed);
        let fixed = fe.extract_padded(&audio).unwrap();
        let reference = fe.extract_padded_reference(&audio).unwrap();
        assert_eq!(fixed.shape(), reference.shape());
        let mut max_err = 0.0f32;
        for (a, b) in fixed.as_slice().iter().zip(reference.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(
            max_err <= 0.01,
            "seed {seed}: fixed path deviates from the f64 oracle by {max_err}"
        );
    }
}
