//! Property tests for the fixed-point front end:
//!
//! * streaming extraction over the fixed-point kernels stays
//!   **bit-identical** to batch extraction for random chunk splits and
//!   geometries (the block pipeline is exact, row-independent integer
//!   arithmetic — this asserts no per-frame state leaks in);
//! * the direct-to-`i8` emission path (`extract_padded_a8_into`) equals
//!   quantising the float features, bit-for-bit, for random exponents.

use kwt_audio::{MfccConfig, MfccExtractor, StreamingMfcc, WindowKind};
use kwt_tensor::{qops, Mat};
use proptest::prelude::*;

fn wave(seed: u64, n: usize) -> Vec<f32> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            let t = i as f64 / 16_000.0;
            ((2.0 * std::f64::consts::PI * (250.0 + seed as f64 % 700.0) * t).sin() * 0.4
                + noise * 0.2) as f32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_fixed_kernels_bit_identical_to_batch(
        win_sel in 32usize..200,
        hop_sel in 8usize..300,
        clip_extra in 0usize..2_000,
        seed in 0u64..1_000,
        cuts in proptest::collection::vec(1usize..4_000, 0..6),
    ) {
        let config = MfccConfig {
            n_fft: 256,
            win_length: win_sel,
            hop_length: hop_sel,
            n_mels: 12,
            n_mfcc: 8,
            window: WindowKind::Hann,
            clip_samples: win_sel + 100,
            ..MfccConfig::default()
        };
        let extractor = MfccExtractor::new(config).unwrap();
        let clip = wave(seed, win_sel + 100 + clip_extra);
        let batch = extractor.extract(&clip).unwrap();
        let mut stream = StreamingMfcc::from_extractor(extractor);
        let mut rows = Vec::new();
        let mut off = 0;
        for &c in &cuts {
            let end = off + c % (clip.len() - off).max(1);
            stream
                .push(&clip[off..end], |_, row| rows.push(row.to_vec()))
                .unwrap();
            off = end;
        }
        stream
            .push(&clip[off..], |_, row| rows.push(row.to_vec()))
            .unwrap();
        prop_assert_eq!(rows.len(), batch.rows());
        for (t, row) in rows.iter().enumerate() {
            for (a, b) in row.iter().zip(batch.row(t)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "frame {}", t);
            }
        }
    }

    #[test]
    fn a8_emission_equals_quantised_float_features(
        seed in 0u64..1_000,
        input_exp in -4i32..6,
        clip_len in 2_000usize..20_000,
    ) {
        let extractor = MfccExtractor::new(MfccConfig {
            n_fft: 256,
            win_length: 200,
            hop_length: 100,
            n_mels: 12,
            n_mfcc: 8,
            clip_samples: 2_000,
            ..MfccConfig::default()
        })
        .unwrap();
        let clip = wave(seed, clip_len);
        let mut scratch = kwt_audio::MfccScratch::new();
        let mut direct = Mat::default();
        extractor
            .extract_padded_a8_into(&clip, input_exp, &mut direct, &mut scratch)
            .unwrap();
        let mut feats = Mat::default();
        extractor
            .extract_padded_into(&clip, &mut feats, &mut scratch)
            .unwrap();
        let mut via_float = Mat::default();
        qops::quantize_i8_scaled_into(&feats, input_exp, &mut via_float);
        prop_assert_eq!(direct, via_float);
    }
}
