//! # kwt-audio
//!
//! The audio front end of the KWT pipeline: raw waveform → Mel-frequency
//! cepstral coefficients (MFCC), the `X ∈ R^{T x F}` spectrogram the paper
//! feeds to the transformer (Fig. 1).
//!
//! The chain is the classic one: framing → window → FFT → power spectrum →
//! mel filter bank → log → DCT-II. Two presets reproduce the paper's input
//! geometries:
//!
//! * [`kwt1_frontend`] — `[40, 98]`: 40 coefficients, 98 frames (25 ms
//!   window / 10 ms hop over 1 s at 16 kHz)
//! * [`kwt_tiny_frontend`] — `[16, 26]`: the down-sampled input of §III
//!   (62.5 ms window / 37.5 ms hop), the paper's "reasonable balance
//!   between memory constraints and accuracy constraints"
//!
//! Since PR 5 the default extraction path is **block-vectorised and
//! fixed-point** — a batched `f32` real FFT with fused windowing, a
//! banded Q15 mel bank, an integer (LUT) log-mel and a Q15 DCT, with
//! the seed's double-precision pipeline kept verbatim as the oracle
//! ([`MfccExtractor::extract_reference`]) and a direct-to-`i8` feature
//! path for the A8 device image
//! ([`MfccExtractor::extract_padded_a8_into`]). See the
//! [`mfcc`](MfccExtractor) module docs for the stage-by-stage story;
//! streaming extraction ([`StreamingMfcc`]) is bit-identical to batch
//! for any chunk split.
//!
//! # Example
//!
//! ```
//! use kwt_audio::kwt_tiny_frontend;
//!
//! # fn main() -> Result<(), kwt_audio::AudioError> {
//! let frontend = kwt_tiny_frontend()?;
//! let one_second = vec![0.0f32; 16_000];
//! let mfcc = frontend.extract_padded(&one_second)?;
//! assert_eq!(mfcc.shape(), (26, 16)); // T x F
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dct;
mod error;
mod fft;
mod mel;
mod mfcc;
mod ring;
mod streaming;
mod window;

pub use dct::dct_ii_matrix;
pub use error::AudioError;
pub use fft::{fft_in_place, ifft_in_place, power_spectrum, power_spectrum_into, RealFftPlan};
pub use mel::{hz_to_mel, mel_to_hz, MelFilterbank};
pub use mfcc::{
    kwt1_frontend, kwt_tiny_frontend, validate_samples, MfccConfig, MfccExtractor, MfccScratch,
};
pub use ring::{RingOverflow, SampleRing};
pub use streaming::StreamingMfcc;
pub use window::WindowKind;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AudioError>;
