//! Bounded, pre-allocated audio sample ring buffer with absolute stream
//! indexing.
//!
//! [`SampleRing`] is the per-session ingest primitive of the serving
//! layer: capacity is fixed at construction (one allocation, never
//! resized), samples are addressed by their **absolute position in the
//! stream** (sample 0 is the first ever pushed), and a push that does not
//! fit is rejected *whole* with a typed [`RingOverflow`] — the ring never
//! grows, never partially buffers a chunk, and never panics on overflow.
//! That makes backpressure an explicit, testable event instead of a
//! silent reallocation.
//!
//! Consumed samples are released with [`SampleRing::discard_to`]; windowed
//! reads ([`SampleRing::copy_to`]) assemble a contiguous view across the
//! wrap point into a caller-provided slice, so a hop-aligned MFCC frame
//! can be extracted straight out of the ring with zero steady-state
//! allocation.

/// Typed overflow report: pushing `dropped` samples onto a ring with
/// `free` slots left would not fit, so the chunk was rejected whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingOverflow {
    /// Samples in the rejected chunk (none of them were buffered).
    pub dropped: usize,
    /// Free slots at rejection time.
    pub free: usize,
}

/// Fixed-capacity sample ring (see the module docs).
#[derive(Debug, Clone)]
pub struct SampleRing {
    buf: Vec<f32>,
    /// Physical index of the oldest retained sample.
    head: usize,
    /// Retained sample count.
    len: usize,
    /// Absolute stream index of the oldest retained sample.
    start: u64,
}

impl SampleRing {
    /// A ring holding at most `capacity` samples, allocated once here.
    pub fn with_capacity(capacity: usize) -> Self {
        SampleRing {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
            start: 0,
        }
    }

    /// Maximum samples the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Samples currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Absolute stream index of the oldest retained sample.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Absolute stream index one past the newest retained sample (the
    /// total samples ever accepted, since discards only move `start`).
    pub fn end(&self) -> u64 {
        self.start + self.len as u64
    }

    /// Appends `samples`, or rejects the whole chunk when it does not
    /// fit.
    ///
    /// # Errors
    ///
    /// Returns [`RingOverflow`] when `samples.len() > self.free()`;
    /// nothing is buffered in that case.
    pub fn push(&mut self, samples: &[f32]) -> Result<(), RingOverflow> {
        if samples.len() > self.free() {
            return Err(RingOverflow {
                dropped: samples.len(),
                free: self.free(),
            });
        }
        let cap = self.buf.len();
        let tail = (self.head + self.len) % cap;
        let first = samples.len().min(cap - tail);
        self.buf[tail..tail + first].copy_from_slice(&samples[..first]);
        let rest = &samples[first..];
        self.buf[..rest.len()].copy_from_slice(rest);
        self.len += samples.len();
        Ok(())
    }

    /// Copies the `dst.len()` samples starting at absolute stream index
    /// `abs_start` into `dst`, assembling across the wrap point.
    ///
    /// # Panics
    ///
    /// Panics if the requested range is not fully retained — the caller
    /// (the scheduler) must only ask for windows it knows are buffered.
    pub fn copy_to(&self, abs_start: u64, dst: &mut [f32]) {
        assert!(
            abs_start >= self.start && abs_start + dst.len() as u64 <= self.end(),
            "window [{abs_start}, {}) outside retained [{}, {})",
            abs_start + dst.len() as u64,
            self.start,
            self.end()
        );
        let cap = self.buf.len();
        let offset = (abs_start - self.start) as usize;
        let from = (self.head + offset) % cap;
        let first = dst.len().min(cap - from);
        dst[..first].copy_from_slice(&self.buf[from..from + first]);
        let rest_len = dst.len() - first;
        dst[first..].copy_from_slice(&self.buf[..rest_len]);
    }

    /// Releases every sample before absolute index `abs` (clamped to the
    /// retained range); those positions become free for new pushes.
    pub fn discard_to(&mut self, abs: u64) {
        let abs = abs.clamp(self.start, self.end());
        let n = (abs - self.start) as usize;
        self.head = (self.head + n) % self.buf.len().max(1);
        self.len -= n;
        self.start = abs;
    }

    /// Forgets all samples *and* restarts absolute indexing at 0, keeping
    /// the allocation — the session-slot-reuse reset.
    pub fn clear_for_reuse(&mut self) {
        self.head = 0;
        self.len = 0;
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(start: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| (start + i as u64) as f32).collect()
    }

    #[test]
    fn push_copy_discard_roundtrip_across_wrap() {
        let mut ring = SampleRing::with_capacity(16);
        let mut pushed = 0u64;
        let mut window = vec![0.0f32; 6];
        // Repeatedly push 5, read a 6-window, discard 5 — the head walks
        // around the ring many times, exercising every wrap offset.
        ring.push(&ramp(pushed, 5)).unwrap();
        pushed += 5;
        for _ in 0..50 {
            ring.push(&ramp(pushed, 5)).unwrap();
            pushed += 5;
            let at = ring.start();
            ring.copy_to(at, &mut window);
            for (i, &v) in window.iter().enumerate() {
                assert_eq!(v, (at + i as u64) as f32);
            }
            ring.discard_to(at + 5);
        }
        assert_eq!(ring.len(), 5);
    }

    #[test]
    fn overflow_rejects_whole_chunk_at_exact_boundary() {
        let mut ring = SampleRing::with_capacity(8);
        // fill to exactly capacity: fine
        ring.push(&ramp(0, 8)).unwrap();
        assert_eq!(ring.free(), 0);
        // one more sample: typed rejection, nothing buffered
        let err = ring.push(&[9.0]).unwrap_err();
        assert_eq!(
            err,
            RingOverflow {
                dropped: 1,
                free: 0
            }
        );
        assert_eq!(ring.len(), 8);
        // free 3, a 4-chunk still rejects whole (not partially)
        ring.discard_to(3);
        let err = ring.push(&ramp(8, 4)).unwrap_err();
        assert_eq!(
            err,
            RingOverflow {
                dropped: 4,
                free: 3
            }
        );
        assert_eq!(ring.end(), 8);
        // a 3-chunk fits
        ring.push(&ramp(8, 3)).unwrap();
        assert_eq!(ring.end(), 11);
        let mut all = vec![0.0f32; 8];
        ring.copy_to(3, &mut all);
        assert_eq!(all, ramp(3, 8));
    }

    #[test]
    fn clear_for_reuse_keeps_capacity_and_restarts_indexing() {
        let mut ring = SampleRing::with_capacity(8);
        ring.push(&ramp(0, 6)).unwrap();
        ring.discard_to(4);
        ring.clear_for_reuse();
        assert_eq!(ring.start(), 0);
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.capacity(), 8);
        ring.push(&ramp(100, 8)).unwrap();
        let mut all = vec![0.0f32; 8];
        ring.copy_to(0, &mut all);
        assert_eq!(all, ramp(100, 8));
    }

    #[test]
    #[should_panic(expected = "outside retained")]
    fn copy_outside_retained_range_panics() {
        let mut ring = SampleRing::with_capacity(8);
        ring.push(&ramp(0, 4)).unwrap();
        let mut w = vec![0.0f32; 5];
        ring.copy_to(0, &mut w);
    }
}
