//! Incremental MFCC extraction over a live sample stream.
//!
//! [`StreamingMfcc`] accepts audio in arbitrarily sized chunks and emits
//! one MFCC frame as soon as each analysis window fills — **bit-identical**
//! to what [`MfccExtractor::extract`] would produce over the concatenated
//! signal, because both paths share
//! [`MfccExtractor::compute_frame_into`]. Frame `t` covers samples
//! `[t * hop, t * hop + win_length)` of the stream, exactly the batch
//! framing.
//!
//! The internal buffer only ever holds the unconsumed tail of the stream
//! (at most one window plus one pending chunk), so memory use is bounded
//! regardless of stream length, and steady-state pushes perform no heap
//! allocation once the buffers have grown.

use crate::mfcc::{MfccConfig, MfccExtractor, MfccScratch};
use crate::Result;

/// Stateful incremental MFCC extractor (see the module docs).
///
/// # Example
///
/// ```
/// use kwt_audio::{kwt_tiny_frontend, StreamingMfcc};
///
/// # fn main() -> Result<(), kwt_audio::AudioError> {
/// let fe = kwt_tiny_frontend()?;
/// let clip = vec![0.25f32; 16_000];
/// let batch = fe.extract(&clip)?;
///
/// let mut stream = StreamingMfcc::from_extractor(fe);
/// let mut rows = Vec::new();
/// for chunk in clip.chunks(700) {
///     stream.push(chunk, |_, frame| rows.push(frame.to_vec()))?;
/// }
/// assert_eq!(rows.len(), batch.rows());
/// assert_eq!(rows[5], batch.row(5)); // bit-identical
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingMfcc {
    extractor: MfccExtractor,
    /// Unconsumed tail of the stream; `buf[0]` is stream sample `consumed`.
    buf: Vec<f32>,
    /// Global stream index of `buf[0]`.
    consumed: u64,
    /// Frames emitted so far (frame `f` starts at stream sample `f * hop`).
    frames: u64,
    frame_row: Vec<f32>,
    scratch: MfccScratch,
}

impl StreamingMfcc {
    /// Builds the extractor for `config` and wraps it for streaming.
    ///
    /// # Errors
    ///
    /// Propagates [`MfccExtractor::new`] validation errors.
    pub fn new(config: MfccConfig) -> Result<Self> {
        Ok(Self::from_extractor(MfccExtractor::new(config)?))
    }

    /// Wraps an already-validated extractor.
    pub fn from_extractor(extractor: MfccExtractor) -> Self {
        let n_mfcc = extractor.config().n_mfcc;
        StreamingMfcc {
            extractor,
            buf: Vec::new(),
            consumed: 0,
            frames: 0,
            frame_row: vec![0.0; n_mfcc],
            scratch: MfccScratch::new(),
        }
    }

    /// The wrapped extractor.
    pub fn extractor(&self) -> &MfccExtractor {
        &self.extractor
    }

    /// Frames emitted since construction (or the last [`reset`](Self::reset)).
    pub fn frames_emitted(&self) -> u64 {
        self.frames
    }

    /// Total samples pushed since construction (or the last reset).
    pub fn samples_pushed(&self) -> u64 {
        self.consumed + self.buf.len() as u64
    }

    /// Forgets all buffered samples and restarts the stream at sample 0.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.consumed = 0;
        self.frames = 0;
    }

    /// Appends `samples` to the stream and invokes `on_frame(index, row)`
    /// for every analysis window completed by them, in order. `row` holds
    /// the frame's `n_mfcc` coefficients and is only valid during the
    /// callback. Returns the number of frames emitted by this call.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::InvalidSample`](crate::AudioError) for NaN,
    /// infinite or subnormal samples **before** buffering anything — a
    /// rejected chunk leaves the stream exactly where it was, so the
    /// caller can drop it and keep pushing. Frame-computation errors
    /// cannot occur for a validated configuration.
    pub fn push(
        &mut self,
        samples: &[f32],
        mut on_frame: impl FnMut(u64, &[f32]),
    ) -> Result<usize> {
        crate::mfcc::validate_samples(samples)?;
        let win = self.extractor.config().win_length as u64;
        let hop = self.extractor.config().hop_length as u64;
        self.buf.extend_from_slice(samples);
        let mut emitted = 0;
        loop {
            let next_start = self.frames * hop;
            debug_assert!(next_start >= self.consumed, "buffer dropped too eagerly");
            let offset = (next_start - self.consumed) as usize;
            let end = offset + win as usize;
            if end > self.buf.len() {
                break;
            }
            self.extractor.compute_frame_into(
                &self.buf[offset..end],
                &mut self.frame_row,
                &mut self.scratch,
            )?;
            on_frame(self.frames, &self.frame_row);
            self.frames += 1;
            emitted += 1;
        }
        // Drop everything before the next frame's start (clamped to what
        // has actually arrived): those samples can never be read again.
        let available = self.consumed + self.buf.len() as u64;
        let cut = ((self.frames * hop).min(available) - self.consumed) as usize;
        if cut > 0 {
            self.buf.copy_within(cut.., 0);
            self.buf.truncate(self.buf.len() - cut);
            self.consumed += cut as u64;
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfcc::kwt_tiny_frontend;
    use crate::WindowKind;

    fn tone(freq: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let cycles = (i as f64 * freq / 16_000.0).fract();
                (2.0 * std::f64::consts::PI * cycles).sin() as f32
            })
            .collect()
    }

    fn collect_stream(stream: &mut StreamingMfcc, clip: &[f32], chunks: &[usize]) -> Vec<Vec<f32>> {
        let mut rows = Vec::new();
        let mut off = 0;
        for &n in chunks {
            let end = (off + n).min(clip.len());
            stream
                .push(&clip[off..end], |_, row| rows.push(row.to_vec()))
                .unwrap();
            off = end;
        }
        if off < clip.len() {
            stream
                .push(&clip[off..], |_, row| rows.push(row.to_vec()))
                .unwrap();
        }
        rows
    }

    #[test]
    fn streaming_matches_batch_bit_exactly() {
        let fe = kwt_tiny_frontend().unwrap();
        let clip = tone(523.0, 16_000);
        let batch = fe.extract(&clip).unwrap();
        for chunks in [
            vec![16_000],
            vec![1; 0], // everything in the tail push
            vec![100, 1_000, 7, 600, 8_000],
            vec![1_601; 9],
        ] {
            let mut stream = StreamingMfcc::from_extractor(fe.clone());
            let rows = collect_stream(&mut stream, &clip, &chunks);
            assert_eq!(rows.len(), batch.rows(), "chunks {chunks:?}");
            for (t, row) in rows.iter().enumerate() {
                for (a, b) in row.iter().zip(batch.row(t)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "frame {t}");
                }
            }
        }
    }

    #[test]
    fn buffer_stays_bounded() {
        let fe = kwt_tiny_frontend().unwrap();
        let win = fe.config().win_length;
        let mut stream = StreamingMfcc::from_extractor(fe);
        let chunk = tone(300.0, 160);
        for _ in 0..2_000 {
            stream.push(&chunk, |_, _| {}).unwrap();
        }
        assert!(
            stream.buf.len() < win + chunk.len(),
            "buffer grew to {}",
            stream.buf.len()
        );
        assert_eq!(stream.samples_pushed(), 2_000 * 160);
        assert!(stream.frames_emitted() > 500);
    }

    #[test]
    fn hop_larger_than_window_drops_gap_samples() {
        // hop > win: samples between windows are consumed and discarded.
        let cfg = MfccConfig {
            n_fft: 256,
            win_length: 200,
            hop_length: 300,
            n_mels: 10,
            n_mfcc: 8,
            window: WindowKind::Hann,
            clip_samples: 4_000,
            ..MfccConfig::default()
        };
        let clip = tone(700.0, 4_000);
        let fe = MfccExtractor::new(cfg.clone()).unwrap();
        let batch = fe.extract(&clip).unwrap();
        let mut stream = StreamingMfcc::new(cfg).unwrap();
        let rows = collect_stream(&mut stream, &clip, &[37; 200]);
        assert_eq!(rows.len(), batch.rows());
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), batch.row(t), "frame {t}");
        }
    }

    #[test]
    fn invalid_samples_rejected_without_buffering() {
        use crate::AudioError;
        let fe = kwt_tiny_frontend().unwrap();
        let mut stream = StreamingMfcc::from_extractor(fe);
        stream.push(&tone(440.0, 500), |_, _| {}).unwrap();
        let before = stream.samples_pushed();
        for (bad, why) in [
            (f32::NAN, "NaN"),
            (f32::INFINITY, "infinite"),
            (f32::NEG_INFINITY, "infinite"),
            (f32::MIN_POSITIVE / 2.0, "subnormal"),
        ] {
            let chunk = [0.25, bad, 0.5];
            let err = stream.push(&chunk, |_, _| {}).unwrap_err();
            assert_eq!(err, AudioError::InvalidSample { index: 1, why });
            assert_eq!(
                stream.samples_pushed(),
                before,
                "rejected chunk must not be buffered"
            );
        }
        // signed zeros and ordinary samples still flow
        stream.push(&[0.0, -0.0, 1.0e-30_f32], |_, _| {}).unwrap();
    }

    #[test]
    fn reset_restarts_the_stream() {
        let fe = kwt_tiny_frontend().unwrap();
        let clip = tone(440.0, 8_000);
        let mut stream = StreamingMfcc::from_extractor(fe);
        let first = collect_stream(&mut stream, &clip, &[999; 9]);
        stream.reset();
        assert_eq!(stream.frames_emitted(), 0);
        let second = collect_stream(&mut stream, &clip, &[4_000, 4_000]);
        assert_eq!(first, second);
    }
}
