//! Orthonormal DCT-II — the final decorrelating transform of the MFCC
//! chain.

/// Builds the `n_out x n_in` orthonormal DCT-II matrix.
///
/// Row `k` holds `c_k * cos(pi / n_in * (j + 0.5) * k)` with
/// `c_0 = sqrt(1/n_in)` and `c_k = sqrt(2/n_in)` otherwise, so the full
/// square matrix is orthonormal; taking the first `n_out` rows performs the
/// standard cepstral truncation (40 mel bands → 16 coefficients for
/// KWT-Tiny).
///
/// # Panics
///
/// Panics if `n_in == 0` or `n_out > n_in`.
///
/// # Example
/// ```
/// let d = kwt_audio::dct_ii_matrix(16, 40);
/// assert_eq!(d.len(), 16);
/// assert_eq!(d[0].len(), 40);
/// ```
pub fn dct_ii_matrix(n_out: usize, n_in: usize) -> Vec<Vec<f64>> {
    assert!(n_in > 0, "dct input size must be positive");
    assert!(
        n_out <= n_in,
        "cannot take {n_out} DCT coefficients from {n_in} inputs"
    );
    let mut rows = Vec::with_capacity(n_out);
    for k in 0..n_out {
        let scale = if k == 0 {
            (1.0 / n_in as f64).sqrt()
        } else {
            (2.0 / n_in as f64).sqrt()
        };
        rows.push(
            (0..n_in)
                .map(|j| {
                    scale * (std::f64::consts::PI / n_in as f64 * (j as f64 + 0.5) * k as f64).cos()
                })
                .collect(),
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_dct_is_orthonormal() {
        let n = 16;
        let d = dct_ii_matrix(n, n);
        for a in 0..n {
            for b in 0..n {
                let dot: f64 = (0..n).map(|j| d[a][j] * d[b][j]).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-12, "rows {a},{b}: {dot}");
            }
        }
    }

    #[test]
    fn dc_row_is_constant() {
        let d = dct_ii_matrix(4, 8);
        let c = d[0][0];
        assert!(d[0].iter().all(|&x| (x - c).abs() < 1e-12));
    }

    #[test]
    fn truncation_takes_prefix_rows() {
        let full = dct_ii_matrix(8, 8);
        let trunc = dct_ii_matrix(3, 8);
        for k in 0..3 {
            for j in 0..8 {
                assert_eq!(full[k][j], trunc[k][j]);
            }
        }
    }

    #[test]
    fn dct_of_cosine_is_sparse() {
        let n = 32;
        let d = dct_ii_matrix(n, n);
        // signal equal to DCT basis row 5 should project onto coefficient 5 only
        let sig: Vec<f64> = (0..n)
            .map(|j| (std::f64::consts::PI / n as f64 * (j as f64 + 0.5) * 5.0).cos())
            .collect();
        let coeffs: Vec<f64> = (0..n)
            .map(|k| (0..n).map(|j| d[k][j] * sig[j]).sum())
            .collect();
        let peak = coeffs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 5);
        for (k, c) in coeffs.iter().enumerate() {
            if k != 5 {
                assert!(c.abs() < 1e-10, "leakage at {k}: {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn too_many_outputs_panics() {
        let _ = dct_ii_matrix(9, 8);
    }
}
