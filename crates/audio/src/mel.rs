//! Mel scale conversion and triangular mel filter banks.

use crate::{AudioError, Result};

/// Converts a frequency in Hz to mels (HTK formula).
///
/// # Example
/// ```
/// assert_eq!(kwt_audio::hz_to_mel(0.0), 0.0);
/// assert!((kwt_audio::hz_to_mel(1000.0) - 999.99).abs() < 0.1);
/// ```
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels back to Hz (inverse of [`hz_to_mel`]).
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// A bank of `n_mels` triangular filters over FFT power-spectrum bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    n_mels: usize,
    n_bins: usize,
    /// `n_mels x n_bins` weights, row-major.
    weights: Vec<f64>,
    /// Per-filter `[start, end)` of the nonzero weight span. Each
    /// triangle touches only a handful of bins, so [`apply`](Self::apply)
    /// sums ~`2 x n_bins` products across the whole bank instead of
    /// `n_mels x n_bins`. Skipped terms are exact `+0.0` contributions to
    /// a non-negative accumulator, so the result is bit-identical to the
    /// dense sum.
    ranges: Vec<(u32, u32)>,
}

impl MelFilterbank {
    /// Builds the filter bank for `n_fft`-point spectra at `sample_rate`,
    /// spanning `[fmin, fmax]` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::InvalidConfig`] if `n_mels == 0`,
    /// `fmin >= fmax`, `fmax > sample_rate / 2`, or `n_fft` is not a power
    /// of two.
    pub fn new(
        n_mels: usize,
        n_fft: usize,
        sample_rate: f64,
        fmin: f64,
        fmax: f64,
    ) -> Result<Self> {
        if n_mels == 0 {
            return Err(AudioError::InvalidConfig {
                field: "n_mels",
                why: "must be positive".into(),
            });
        }
        if !(n_fft.is_power_of_two() && n_fft >= 2) {
            return Err(AudioError::FftLengthNotPowerOfTwo { len: n_fft });
        }
        if fmin < 0.0 || fmin >= fmax {
            return Err(AudioError::InvalidConfig {
                field: "fmin/fmax",
                why: format!("need 0 <= fmin < fmax, got {fmin}..{fmax}"),
            });
        }
        if fmax > sample_rate / 2.0 + 1e-9 {
            return Err(AudioError::InvalidConfig {
                field: "fmax",
                why: format!("{fmax} exceeds Nyquist ({})", sample_rate / 2.0),
            });
        }
        let n_bins = n_fft / 2 + 1;
        // n_mels + 2 equally spaced points on the mel axis.
        let mel_lo = hz_to_mel(fmin);
        let mel_hi = hz_to_mel(fmax);
        let centers_hz: Vec<f64> = (0..n_mels + 2)
            .map(|i| mel_to_hz(mel_lo + (mel_hi - mel_lo) * i as f64 / (n_mels + 1) as f64))
            .collect();
        let bin_hz = |k: usize| k as f64 * sample_rate / n_fft as f64;
        let mut weights = vec![0.0f64; n_mels * n_bins];
        for m in 0..n_mels {
            let (lo, mid, hi) = (centers_hz[m], centers_hz[m + 1], centers_hz[m + 2]);
            for k in 0..n_bins {
                let f = bin_hz(k);
                let w = if f <= lo || f >= hi {
                    0.0
                } else if f <= mid {
                    (f - lo) / (mid - lo)
                } else {
                    (hi - f) / (hi - mid)
                };
                weights[m * n_bins + k] = w;
            }
        }
        let ranges = (0..n_mels)
            .map(|m| {
                let row = &weights[m * n_bins..(m + 1) * n_bins];
                let start = row.iter().position(|&w| w != 0.0).unwrap_or(n_bins);
                let end = row.iter().rposition(|&w| w != 0.0).map_or(start, |e| e + 1);
                (start as u32, end as u32)
            })
            .collect();
        Ok(MelFilterbank {
            n_mels,
            n_bins,
            weights,
            ranges,
        })
    }

    /// Number of mel channels.
    pub fn n_mels(&self) -> usize {
        self.n_mels
    }

    /// Number of spectrum bins each filter spans.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Filter weights for channel `m` (length [`Self::n_bins`]).
    ///
    /// # Panics
    ///
    /// Panics if `m >= n_mels`.
    pub fn filter(&self, m: usize) -> &[f64] {
        assert!(m < self.n_mels, "mel channel {m} out of range");
        &self.weights[m * self.n_bins..(m + 1) * self.n_bins]
    }

    /// Applies the bank to a one-sided power spectrum, returning `n_mels`
    /// band energies.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::InvalidConfig`] if `spectrum.len() != n_bins`.
    pub fn apply(&self, spectrum: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.apply_into(spectrum, &mut out)?;
        Ok(out)
    }

    /// [`MelFilterbank::apply`] into a caller-provided vector —
    /// allocation-free once it has grown to `n_mels` elements, and
    /// bit-identical to [`MelFilterbank::apply`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MelFilterbank::apply`].
    pub fn apply_into(&self, spectrum: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if spectrum.len() != self.n_bins {
            return Err(AudioError::InvalidConfig {
                field: "spectrum",
                why: format!("expected {} bins, got {}", self.n_bins, spectrum.len()),
            });
        }
        out.clear();
        out.extend((0..self.n_mels).map(|m| {
            let (start, end) = self.ranges[m];
            let (start, end) = (start as usize, end as usize);
            self.filter(m)[start..end]
                .iter()
                .zip(&spectrum[start..end])
                .map(|(w, s)| w * s)
                .sum::<f64>()
        }));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_conversions_invert() {
        for hz in [0.0, 100.0, 440.0, 1000.0, 4000.0, 8000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 1e-6, "{hz} -> {back}");
        }
    }

    #[test]
    fn mel_is_monotone() {
        let mut prev = -1.0;
        for i in 0..100 {
            let m = hz_to_mel(i as f64 * 80.0);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn filterbank_shapes_and_normalisation() {
        let fb = MelFilterbank::new(40, 512, 16_000.0, 20.0, 8_000.0).unwrap();
        assert_eq!(fb.n_mels(), 40);
        assert_eq!(fb.n_bins(), 257);
        // every filter has nonnegative weights peaking at <= 1
        for m in 0..40 {
            let f = fb.filter(m);
            assert!(f.iter().all(|&w| (0.0..=1.0 + 1e-12).contains(&w)));
            assert!(
                f.iter().cloned().fold(0.0, f64::max) > 0.0,
                "filter {m} empty"
            );
        }
    }

    #[test]
    fn filters_cover_midband_without_gaps() {
        let fb = MelFilterbank::new(20, 512, 16_000.0, 20.0, 8_000.0).unwrap();
        // In the interior of [fmin, fmax], adjacent triangles overlap so the
        // per-bin total weight stays positive.
        let bin_hz = |k: usize| k as f64 * 16_000.0 / 512.0;
        for k in 0..257 {
            let f = bin_hz(k);
            if f > 200.0 && f < 7000.0 {
                let total: f64 = (0..20).map(|m| fb.filter(m)[k]).sum();
                assert!(total > 0.0, "gap at bin {k} ({f} Hz)");
            }
        }
    }

    #[test]
    fn apply_extracts_band_energy() {
        let fb = MelFilterbank::new(10, 256, 16_000.0, 20.0, 8_000.0).unwrap();
        // put all energy in one spectral bin; exactly the filters covering it fire
        let mut spec = vec![0.0f64; 129];
        spec[40] = 1.0; // 2500 Hz
        let bands = fb.apply(&spec).unwrap();
        let active: Vec<usize> = bands
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !active.is_empty() && active.len() <= 2,
            "active: {active:?}"
        );
    }

    #[test]
    fn sparse_apply_bit_identical_to_dense_sum() {
        let fb = MelFilterbank::new(40, 512, 16_000.0, 20.0, 8_000.0).unwrap();
        let spec: Vec<f64> = (0..257)
            .map(|k| (((k * 31 + 7) % 97) as f64 / 97.0).powi(2))
            .collect();
        let got = fb.apply(&spec).unwrap();
        for (m, &g) in got.iter().enumerate() {
            let dense: f64 = fb.filter(m).iter().zip(&spec).map(|(w, s)| w * s).sum();
            assert_eq!(g.to_bits(), dense.to_bits(), "filter {m}");
        }
    }

    #[test]
    fn apply_checks_length() {
        let fb = MelFilterbank::new(10, 256, 16_000.0, 20.0, 8_000.0).unwrap();
        assert!(fb.apply(&[0.0; 100]).is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(MelFilterbank::new(0, 256, 16_000.0, 20.0, 8_000.0).is_err());
        assert!(MelFilterbank::new(10, 255, 16_000.0, 20.0, 8_000.0).is_err());
        assert!(MelFilterbank::new(10, 256, 16_000.0, 500.0, 400.0).is_err());
        assert!(MelFilterbank::new(10, 256, 16_000.0, 20.0, 9_000.0).is_err());
    }
}
