//! The complete MFCC extractor and the paper's two input geometries.
//!
//! # The fixed-point block pipeline
//!
//! Since PR 5 the default extraction path
//! ([`MfccExtractor::extract_into`] and everything built on it) is
//! **block-vectorised and fixed-point** — the on-device shape of the
//! front end the paper runs ahead of its INT8 network:
//!
//! 1. all analysis windows of a clip are windowed and transformed in
//!    one fused pass by the batched `f32` real-FFT path
//!    ([`RealFftPlan::power_spectra_windowed_into`], with pair-fused,
//!    multiplier-free first butterfly stages);
//! 2. each frame's power spectrum is block-scaled into hi/lo `i32`
//!    words (a shared per-frame power-of-two exponent, ~58 bits of
//!    relative dynamic range) and multiplied by the **pre-packed banded
//!    Q15 mel filter bank** with exact `i64` accumulation
//!    ([`kwt_tensor::fixedpoint::MelBankQ15`]);
//! 3. the log-mel stage runs entirely in the integer domain — a
//!    count-leading-zeros + mantissa-LUT base-2 logarithm
//!    ([`kwt_tensor::fixedpoint::ln_q9_scaled`]), **no float
//!    transcendentals** — producing Q9 log-mel rows;
//! 4. the **pre-packed Q15 DCT-II matrix** maps log-mel rows to
//!    cepstral coefficients (exact `i64` accumulation), which are scaled
//!    back to `f32` by one exact power of two. [`extract_a8_into`]
//!    (MfccExtractor::extract_a8_into) instead quantises them straight
//!    to `i8` at a caller-supplied input exponent — the A8 device
//!    image's native input format.
//!
//! Every fixed-point stage is exact integer arithmetic with
//! row-independent outputs, so streaming extraction (one frame at a
//! time, [`crate::StreamingMfcc`]) is **bit-identical** to batch
//! extraction for any chunk split. The seed's double-precision pipeline
//! survives verbatim as [`MfccExtractor::extract_reference`] — the
//! oracle the golden-vector tests and the `paper check-frontend`
//! agreement gate compare against.

use crate::dct::dct_ii_matrix;
use crate::fft::{power_spectrum, RealFftPlan};
use crate::mel::MelFilterbank;
use crate::window::WindowKind;
use crate::{AudioError, Result};
use kwt_tensor::fixedpoint::{self, pow2_f64, MelBankQ15, Q15_BITS};
use kwt_tensor::{qops, Mat, PackedMat};
use serde::{Deserialize, Serialize};

/// Fractional bits of the fixed-point log-mel rows.
const LOGMEL_FRAC_BITS: u32 = 9;

/// `2^-(Q15 + Q9)` — the exact scale returning DCT accumulators to
/// float cepstral coefficients.
const FEAT_SCALE: f32 = 1.0 / (1u64 << (Q15_BITS + LOGMEL_FRAC_BITS)) as f32;

/// Spectrum block scaling targets the frame maximum at `[2^29, 2^30)`.
const SPEC_TARGET_EXP: i32 = 29;

/// Largest per-frame spectrum shift (bounds the scaled log floor so the
/// extended band representation stays inside `i64`).
const MAX_SPEC_SHIFT: i32 = 75;

/// Reusable work buffers for the MFCC pipeline — one arena shared by every
/// frame an extractor computes. [`MfccExtractor::extract_into`] and the
/// streaming front end ([`crate::StreamingMfcc`]) thread one of these
/// through each call, so steady-state extraction performs no heap
/// allocation once the buffers have grown to the configured sizes.
#[derive(Debug, Clone, Default)]
pub struct MfccScratch {
    /// FFT work buffers (`n_fft / 2` each).
    re32: Vec<f32>,
    im32: Vec<f32>,
    /// Flat `n_frames x n_bins` power spectra.
    spec32: Vec<f32>,
    /// Block-scaled integer spectra (hi word at `2^shift`, lo word the
    /// `2^(shift + 28)` residual) and their per-frame shifts.
    spec_q: Mat<i32>,
    spec_lo: Mat<i32>,
    shifts: Vec<i32>,
    /// Mel band energies (exact `i64`; hi at `2^(shift + 15)`, lo at
    /// `2^(shift + 43)`).
    bands_q: Mat<i64>,
    bands_lo: Mat<i64>,
    /// Q9 log-mel rows.
    logmel_q: Mat<i16>,
    /// DCT accumulators (Q24).
    feat_q: Mat<i64>,
    /// Single-frame output staging for `compute_frame_into`.
    frame_mat: Mat<f32>,
    /// Float feature staging for the `i8` emission path.
    feats: Mat<f32>,
    /// Padded clip staging for the `extract_padded*` entry points.
    padded: Vec<f32>,
}

impl MfccScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Configuration of the MFCC front end.
///
/// Use [`MfccConfig::default`] and adjust, or start from the paper presets
/// [`kwt1_frontend`] / [`kwt_tiny_frontend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfccConfig {
    /// Input sample rate in Hz.
    pub sample_rate: u32,
    /// FFT size (power of two, >= win_length is typical).
    pub n_fft: usize,
    /// Analysis window length in samples.
    pub win_length: usize,
    /// Hop between successive frames in samples.
    pub hop_length: usize,
    /// Number of mel filter bank channels.
    pub n_mels: usize,
    /// Number of cepstral coefficients kept (the `F` of `[F, T]`).
    pub n_mfcc: usize,
    /// Window function.
    pub window: WindowKind,
    /// Lowest filter bank frequency (Hz).
    pub fmin: f64,
    /// Highest filter bank frequency (Hz).
    pub fmax: f64,
    /// Floor added before the log to avoid `log(0)`.
    pub log_floor: f64,
    /// Nominal clip length in samples; [`MfccExtractor::extract_padded`]
    /// zero-pads or truncates to this length so the frame count is fixed.
    pub clip_samples: usize,
}

impl Default for MfccConfig {
    fn default() -> Self {
        MfccConfig {
            sample_rate: 16_000,
            n_fft: 512,
            win_length: 400,
            hop_length: 160,
            n_mels: 40,
            n_mfcc: 40,
            window: WindowKind::Hann,
            fmin: 20.0,
            fmax: 8_000.0,
            log_floor: 1e-10,
            clip_samples: 16_000,
        }
    }
}

impl MfccConfig {
    /// Number of frames produced from a clip of exactly
    /// [`MfccConfig::clip_samples`] samples.
    pub fn frames_per_clip(&self) -> usize {
        if self.clip_samples < self.win_length {
            0
        } else {
            1 + (self.clip_samples - self.win_length) / self.hop_length
        }
    }
}

/// Precomputed MFCC pipeline (window, filter bank, DCT) — see the
/// module docs for the fixed-point block pipeline the default
/// paths run.
///
/// # Example
///
/// ```
/// use kwt_audio::{MfccConfig, MfccExtractor};
///
/// # fn main() -> Result<(), kwt_audio::AudioError> {
/// let ex = MfccExtractor::new(MfccConfig::default())?;
/// let audio: Vec<f32> = (0..16_000)
///     .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 16_000.0).sin())
///     .collect();
/// let m = ex.extract_padded(&audio)?;
/// assert_eq!(m.shape(), (98, 40)); // 98 frames x 40 coefficients
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: MfccConfig,
    window: Vec<f32>,
    filterbank: MelFilterbank,
    dct: Vec<Vec<f64>>,
    rfft: RealFftPlan,
    /// Pre-packed banded Q15 mel filter bank.
    mel_q15: MelBankQ15,
    /// Pre-packed Q15 DCT-II matrix (`n_mels x n_mfcc` logical shape).
    dct_q15: PackedMat<i16>,
    /// `round(ln(log_floor) * 2^9)` — the log-mel value of an exactly
    /// zero band energy.
    floor_ln_q9: i16,
}

impl MfccExtractor {
    /// Validates the configuration and precomputes the transforms.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::InvalidConfig`] for inconsistent parameters
    /// (zero hop, window longer than FFT, more coefficients than mel
    /// channels, ...).
    pub fn new(config: MfccConfig) -> Result<Self> {
        if config.hop_length == 0 {
            return Err(AudioError::InvalidConfig {
                field: "hop_length",
                why: "must be positive".into(),
            });
        }
        if config.win_length == 0 {
            return Err(AudioError::InvalidConfig {
                field: "win_length",
                why: "must be positive".into(),
            });
        }
        if config.win_length > config.n_fft {
            return Err(AudioError::InvalidConfig {
                field: "win_length",
                why: format!(
                    "window ({}) longer than FFT ({})",
                    config.win_length, config.n_fft
                ),
            });
        }
        if config.n_mfcc > config.n_mels {
            return Err(AudioError::InvalidConfig {
                field: "n_mfcc",
                why: format!(
                    "cannot keep {} coefficients from {} mel bands",
                    config.n_mfcc, config.n_mels
                ),
            });
        }
        if config.clip_samples < config.win_length {
            return Err(AudioError::InvalidConfig {
                field: "clip_samples",
                why: "clip shorter than one analysis window".into(),
            });
        }
        if !(config.log_floor.is_finite() && config.log_floor > 0.0) {
            return Err(AudioError::InvalidConfig {
                field: "log_floor",
                why: format!("must be positive and finite, got {}", config.log_floor),
            });
        }
        let filterbank = MelFilterbank::new(
            config.n_mels,
            config.n_fft,
            config.sample_rate as f64,
            config.fmin,
            config.fmax,
        )?;
        let window = config.window.coefficients(config.win_length);
        let dct = dct_ii_matrix(config.n_mfcc, config.n_mels);
        let rfft = RealFftPlan::new(config.n_fft)?;
        // Pack the fixed-point transforms: the mel bank banded (each
        // triangle keeps only its nonzero bin span), the DCT-II matrix
        // as the logical `n_mels x n_mfcc` right operand of
        // logmel-row x DCT^T. Both quantise to Q15 by rounding.
        let n_bins = filterbank.n_bins();
        let mel_q15 = MelBankQ15::pack(config.n_mels, n_bins, |m, k| filterbank.filter(m)[k]);
        let dct_q15 = PackedMat::pack(&Mat::from_fn(config.n_mels, config.n_mfcc, |j, k| {
            fixedpoint::quantize_q15(dct[k][j])
        }));
        let floor_ln_q9 = (config.log_floor.ln() * (1i64 << LOGMEL_FRAC_BITS) as f64)
            .round()
            .clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        Ok(MfccExtractor {
            config,
            window,
            filterbank,
            dct,
            rfft,
            mel_q15,
            dct_q15,
            floor_ln_q9,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &MfccConfig {
        &self.config
    }

    /// Frames produced for a nominal clip — the `T` of the model input.
    pub fn frames_per_clip(&self) -> usize {
        self.config.frames_per_clip()
    }

    /// Extracts MFCCs from a signal of arbitrary length (>= one window).
    ///
    /// Returns a `T x F` matrix: one row per frame, one column per
    /// coefficient — the orientation the transformer tokenises (each time
    /// frame becomes one patch, paper Table III `PATCH DIM = [F, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::SignalTooShort`] if fewer samples than one
    /// window are supplied.
    pub fn extract(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let mut out = Mat::default();
        self.extract_into(samples, &mut out, &mut MfccScratch::new())?;
        Ok(out)
    }

    /// [`extract`](Self::extract) into a caller-provided output matrix and
    /// scratch arena — the allocation-free steady-state path (bit-identical
    /// to [`extract`](Self::extract), which delegates here). Runs the
    /// fixed-point block pipeline of the module docs.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract`](Self::extract).
    pub fn extract_into(
        &self,
        samples: &[f32],
        out: &mut Mat<f32>,
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let c = &self.config;
        validate_samples(samples)?;
        if samples.len() < c.win_length {
            return Err(AudioError::SignalTooShort {
                got: samples.len(),
                need: c.win_length,
            });
        }
        let n_frames = 1 + (samples.len() - c.win_length) / c.hop_length;
        self.fixed_pipeline_into(samples, n_frames, scratch, out);
        Ok(())
    }

    /// Computes the MFCC row of a single analysis window of exactly
    /// [`MfccConfig::win_length`] samples — the shared kernel behind batch
    /// extraction and [`crate::StreamingMfcc`]. The window runs the same
    /// fixed-point block pipeline with a one-frame block; every stage is
    /// exact, row-independent integer arithmetic, which is what makes
    /// incremental extraction bit-identical to [`extract`](Self::extract).
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::SignalTooShort`] unless `samples` holds
    /// exactly one window and [`AudioError::InvalidConfig`] unless `out`
    /// has [`MfccConfig::n_mfcc`] elements.
    pub fn compute_frame_into(
        &self,
        samples: &[f32],
        out: &mut [f32],
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let c = &self.config;
        if samples.len() != c.win_length {
            return Err(AudioError::SignalTooShort {
                got: samples.len(),
                need: c.win_length,
            });
        }
        if out.len() != c.n_mfcc {
            return Err(AudioError::InvalidConfig {
                field: "out",
                why: format!("frame row holds {} values, need {}", out.len(), c.n_mfcc),
            });
        }
        let mut frame_mat = std::mem::take(&mut scratch.frame_mat);
        self.fixed_pipeline_into(samples, 1, scratch, &mut frame_mat);
        out.copy_from_slice(frame_mat.row(0));
        scratch.frame_mat = frame_mat;
        Ok(())
    }

    /// The fixed-point block pipeline over `n_frames` hop-spaced frames
    /// of `samples`: fused window + batched f32 FFT → block-scaled i32
    /// spectra → banded Q15 mel bank → integer log-mel → Q15 DCT GEMM →
    /// f32 rows of `out`.
    fn fixed_pipeline_into(
        &self,
        samples: &[f32],
        n_frames: usize,
        s: &mut MfccScratch,
        out: &mut Mat<f32>,
    ) {
        let c = &self.config;
        let n_bins = self.filterbank.n_bins();
        self.rfft.power_spectra_windowed_into(
            samples,
            &self.window,
            c.hop_length,
            n_frames,
            &mut s.re32,
            &mut s.im32,
            &mut s.spec32,
        );

        // Block-scale each frame's spectrum into a hi/lo i32 pair: the
        // hi word places the frame maximum in [2^29, 2^30) under a shared
        // per-frame power-of-two shift; the lo word carries the hi word's
        // truncation residual at 28 further fractional bits. Together the
        // pair preserves ~58 bits of relative dynamic range through the
        // mel product — enough for leakage-level bands to survive down to
        // the log floor, which a single 32-bit word cannot represent.
        s.spec_q.resize(n_frames, n_bins);
        s.spec_lo.resize(n_frames, n_bins);
        s.shifts.clear();
        for t in 0..n_frames {
            let row = &s.spec32[t * n_bins..(t + 1) * n_bins];
            let max = row.iter().cloned().fold(0.0f32, f32::max);
            let shift = if max > 0.0 {
                // Exponent from the f32 bit pattern (subnormals collapse
                // toward the cap, where the log floor dominates anyway).
                let e = ((max.to_bits() >> 23) & 0xFF) as i32 - 127;
                (SPEC_TARGET_EXP - e).min(MAX_SPEC_SHIFT)
            } else {
                0
            };
            s.shifts.push(shift);
            // One exact product and one u64 floor per bin: the top word
            // is the hi spectrum, the low 28 bits the residual.
            let scale28 = pow2_f64(shift + 28);
            let (hrow, lrow) = (s.spec_q.row_mut(t), s.spec_lo.row_mut(t));
            for ((q, lo), &p) in hrow.iter_mut().zip(lrow.iter_mut()).zip(row) {
                let full = (p as f64 * scale28) as u64; // <= 2^58
                *q = (full >> 28) as i32;
                *lo = (full & ((1 << 28) - 1)) as i32;
            }
        }

        // Mel filter bank (banded Q15): exact i64 band energies, hi at
        // 2^(shift + 15) and lo at 2^(shift + 43).
        self.mel_q15
            .apply_block_into(&s.spec_q, &mut s.bands_q)
            .expect("mel bank shape fixed at construction");
        self.mel_q15
            .apply_block_into(&s.spec_lo, &mut s.bands_lo)
            .expect("mel bank shape fixed at construction");

        // Integer log-mel: ln(band + log_floor) in Q9, with the band
        // up-shifted for mantissa precision and the floor folded in at
        // the extended scale — no float transcendentals.
        s.logmel_q.resize(n_frames, c.n_mels);
        for t in 0..n_frames {
            let shift = s.shifts[t];
            let brow = s.bands_q.row(t);
            let lorow = s.bands_lo.row(t);
            let lrow = s.logmel_q.row_mut(t);
            for ((l, &hi), &lo) in lrow.iter_mut().zip(brow).zip(lorow) {
                *l = self.log_band_q9(hi, lo, shift);
            }
        }

        // DCT-II: exact i64 Q24 accumulators, scaled to f32 by one exact
        // power of two.
        fixedpoint::matmul_i16_q15_i64_packed_into(&s.logmel_q, &self.dct_q15, &mut s.feat_q)
            .expect("DCT shape fixed at construction");
        out.resize(n_frames, c.n_mfcc);
        for (o, &q) in out.as_mut_slice().iter_mut().zip(s.feat_q.as_slice()) {
            *o = q as f32 * FEAT_SCALE;
        }
    }

    /// One band's Q9 log-mel value from its hi/lo `i64` energy words
    /// (`hi` at `2^(shift + 15)`, `lo` at `2^(shift + 43)`): merge the
    /// words into one `u64` at the finest affordable scale, fold in the
    /// scaled log floor, and take the integer logarithm.
    fn log_band_q9(&self, hi: i64, lo: i64, shift: i32) -> i16 {
        // Merge: while the hi word is small the full 28 extra residual
        // bits fit next to it; a large hi word doesn't need them.
        let (v0, sp0) = if hi < (1 << 35) {
            (
                ((hi.max(0) as u64) << 28) + lo.max(0) as u64,
                shift + Q15_BITS as i32 + 28,
            )
        } else {
            (hi as u64, shift + Q15_BITS as i32)
        };
        if v0 == 0 {
            return self.floor_ln_q9;
        }
        // Up-shift for mantissa precision, then add the floor at the
        // extended scale. If the scaled floor overflows the safe range it
        // dwarfs any representable band — the result is ln(floor).
        let g = ((v0.leading_zeros() as i32) - 11).clamp(0, 12);
        let sp = sp0 + g;
        let floor_q = (self.config.log_floor * pow2_f64(sp)).round();
        if floor_q >= (1u64 << 62) as f64 {
            return self.floor_ln_q9;
        }
        let v = (v0 << g).saturating_add(floor_q as u64);
        fixedpoint::ln_q9_scaled(v, sp as i64).clamp(i16::MIN as i64, i16::MAX as i64) as i16
    }

    /// The seed repository's per-frame pipeline, kept verbatim as the
    /// double-precision oracle for the fixed-point path (mirroring
    /// `ops::reference` in the tensor crate): a generic complex f64 FFT,
    /// dense f64 mel/DCT products and true `ln`, with fresh buffers for
    /// every frame. The fixed-point [`extract`](Self::extract) tracks it
    /// to a few `1e-3` absolute (golden-vector tests pin the bound); the
    /// `paper check-frontend` gate asserts model-level top-1 agreement.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract`](Self::extract).
    pub fn extract_reference(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let c = &self.config;
        if samples.len() < c.win_length {
            return Err(AudioError::SignalTooShort {
                got: samples.len(),
                need: c.win_length,
            });
        }
        let n_frames = 1 + (samples.len() - c.win_length) / c.hop_length;
        let mut out = Mat::zeros(n_frames, c.n_mfcc);
        let mut frame = vec![0.0f32; c.win_length];
        for t in 0..n_frames {
            let start = t * c.hop_length;
            for i in 0..c.win_length {
                frame[i] = samples[start + i] * self.window[i];
            }
            let spec = power_spectrum(&frame, c.n_fft)?;
            let bands = self.filterbank.apply(&spec)?;
            let logs: Vec<f64> = bands.iter().map(|&e| (e + c.log_floor).ln()).collect();
            let row = out.row_mut(t);
            for (k, drow) in self.dct.iter().enumerate() {
                row[k] = drow.iter().zip(&logs).map(|(d, l)| d * l).sum::<f64>() as f32;
            }
        }
        Ok(out)
    }

    /// [`extract_reference`](Self::extract_reference) over a zero-padded /
    /// truncated clip — the one-shot seed path the engine benchmarks
    /// measure against.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract_padded`](Self::extract_padded).
    pub fn extract_padded_reference(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let n = self.config.clip_samples;
        let mut buf = vec![0.0f32; n];
        let take = samples.len().min(n);
        buf[..take].copy_from_slice(&samples[..take]);
        self.extract_reference(&buf)
    }

    /// Like [`extract`](Self::extract) but first zero-pads or truncates the
    /// signal to [`MfccConfig::clip_samples`], guaranteeing exactly
    /// [`frames_per_clip`](Self::frames_per_clip) rows.
    ///
    /// # Errors
    ///
    /// Propagates [`MfccExtractor::extract`] errors (cannot occur for a
    /// valid config since padding enforces the length).
    pub fn extract_padded(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let mut out = Mat::default();
        self.extract_padded_into(samples, &mut out, &mut MfccScratch::new())?;
        Ok(out)
    }

    /// [`extract_padded`](Self::extract_padded) into a caller-provided
    /// output matrix and scratch arena (the padded clip buffer lives in the
    /// scratch) — the allocation-free steady-state path used by the
    /// inference engine's `classify`.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract_padded`](Self::extract_padded).
    pub fn extract_padded_into(
        &self,
        samples: &[f32],
        out: &mut Mat<f32>,
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let n = self.config.clip_samples;
        let mut padded = std::mem::take(&mut scratch.padded);
        padded.clear();
        padded.resize(n, 0.0);
        let take = samples.len().min(n);
        padded[..take].copy_from_slice(&samples[..take]);
        let result = self.extract_into(&padded, out, scratch);
        scratch.padded = padded;
        result
    }

    /// [`extract_into`](Self::extract_into) quantised straight to `i8` at
    /// `2^input_exp` — the A8 device image's native input format. The
    /// features are the exact `f32` values
    /// [`extract_into`](Self::extract_into) produces, quantised with
    /// the device's
    /// floor-and-saturate rule ([`kwt_tensor::qops::quantize_i8_scaled_into`]),
    /// so feeding `out` to a pre-quantised device session is
    /// **bit-identical** to quantising the float features host-side.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract`](Self::extract).
    pub fn extract_a8_into(
        &self,
        samples: &[f32],
        input_exp: i32,
        out: &mut Mat<i8>,
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let mut feats = std::mem::take(&mut scratch.feats);
        let result = self.extract_into(samples, &mut feats, scratch);
        if result.is_ok() {
            qops::quantize_i8_scaled_into(&feats, input_exp, out);
        }
        scratch.feats = feats;
        result
    }

    /// [`extract_padded_into`](Self::extract_padded_into) quantised
    /// straight to `i8` at `2^input_exp`
    /// (see [`extract_a8_into`](Self::extract_a8_into)) — the engine's
    /// zero-copy path into an A8
    /// [`DeviceSession`](../kwt_baremetal/struct.DeviceSession.html).
    ///
    /// # Errors
    ///
    /// Same contract as [`extract_padded`](Self::extract_padded).
    pub fn extract_padded_a8_into(
        &self,
        samples: &[f32],
        input_exp: i32,
        out: &mut Mat<i8>,
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let mut feats = std::mem::take(&mut scratch.feats);
        let result = self.extract_padded_into(samples, &mut feats, scratch);
        if result.is_ok() {
            qops::quantize_i8_scaled_into(&feats, input_exp, out);
        }
        scratch.feats = feats;
        result
    }
}

/// Rejects the first NaN, infinite or subnormal sample with a typed
/// [`AudioError::InvalidSample`] — the ingest guard shared by batch
/// extraction ([`MfccExtractor::extract_into`]) and streaming pushes
/// ([`crate::StreamingMfcc::push`]). Signed zeros pass; true subnormals
/// are rejected rather than flushed so a corrupted capture path is loud
/// instead of silently denormal-flushing into wrong features. Public so
/// ingest layers above the front end (the serve crate) can apply the
/// exact same gate before buffering a chunk.
///
/// # Errors
///
/// Returns [`AudioError::InvalidSample`] for the first offending sample.
pub fn validate_samples(samples: &[f32]) -> Result<()> {
    for (index, &s) in samples.iter().enumerate() {
        let why = if s.is_nan() {
            "NaN"
        } else if s.is_infinite() {
            "infinite"
        } else if s != 0.0 && s.abs() < f32::MIN_POSITIVE {
            "subnormal"
        } else {
            continue;
        };
        return Err(AudioError::InvalidSample { index, why });
    }
    Ok(())
}

/// The KWT-1 front end: `[F, T] = [40, 98]` (25 ms window, 10 ms hop,
/// 40 mel channels, 40 cepstral coefficients over a 1 s clip at 16 kHz).
///
/// # Errors
///
/// Never fails in practice; returns the constructor's validation error type
/// for API uniformity.
pub fn kwt1_frontend() -> Result<MfccExtractor> {
    MfccExtractor::new(MfccConfig::default())
}

/// The KWT-Tiny front end of §III: `[F, T] = [16, 26]` — the paper's
/// down-sampling of the input MFCC "from the original [40, 98] to
/// [16, 26]". 62.5 ms windows with 37.5 ms hop over the same 1 s clip give
/// 26 frames; 16 DCT coefficients are kept from 40 mel bands.
///
/// # Errors
///
/// Never fails in practice; returns the constructor's validation error type
/// for API uniformity.
pub fn kwt_tiny_frontend() -> Result<MfccExtractor> {
    MfccExtractor::new(MfccConfig {
        n_fft: 1024,
        win_length: 1000,
        hop_length: 600,
        n_mfcc: 16,
        ..MfccConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let cycles = (i as f64 * freq / 16_000.0).fract();
                (2.0 * std::f64::consts::PI * cycles).sin() as f32
            })
            .collect()
    }

    #[test]
    fn kwt1_geometry() {
        let fe = kwt1_frontend().unwrap();
        assert_eq!(fe.frames_per_clip(), 98);
        assert_eq!(fe.config().n_mfcc, 40);
        let m = fe.extract_padded(&tone(440.0, 16_000)).unwrap();
        assert_eq!(m.shape(), (98, 40));
    }

    #[test]
    fn kwt_tiny_geometry() {
        let fe = kwt_tiny_frontend().unwrap();
        assert_eq!(fe.frames_per_clip(), 26);
        assert_eq!(fe.config().n_mfcc, 16);
        let m = fe.extract_padded(&tone(440.0, 16_000)).unwrap();
        assert_eq!(m.shape(), (26, 16));
    }

    #[test]
    fn fixed_extract_tracks_reference() {
        // The fixed-point block pipeline must agree with the seed's f64
        // path to the Q15/Q9 quantisation budget, for both geometries.
        // Realistic (noisy) clips track tightly; *pure* tones are the
        // adversarial case — their leakage bands sit far below the log
        // floor, on the f32 FFT noise floor, where band-level errors are
        // large in relative terms but clamped near `ln(log_floor)` — so
        // they get a coarser bound. tests/golden.rs pins the realistic
        // bound against frozen f64 vectors.
        for (noise_amp, bound) in [(0.05f64, 0.02f32), (0.0, 0.5)] {
            for fe in [kwt1_frontend().unwrap(), kwt_tiny_frontend().unwrap()] {
                let clip: Vec<f32> = (0..16_000u64)
                    .map(|i| {
                        let t = i as f64 / 16_000.0;
                        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
                        ((2.0 * std::f64::consts::PI * 431.0 * t).sin() * 0.5
                            + (2.0 * std::f64::consts::PI * 1740.0 * t).sin() * 0.25
                            + noise * noise_amp) as f32
                    })
                    .collect();
                let fixed = fe.extract_padded(&clip).unwrap();
                let reference = fe.extract_padded_reference(&clip).unwrap();
                assert_eq!(fixed.shape(), reference.shape());
                let mut max_err = 0.0f32;
                for (a, b) in fixed.as_slice().iter().zip(reference.as_slice()) {
                    max_err = max_err.max((a - b).abs());
                }
                assert!(
                    max_err <= bound,
                    "fixed path deviates by {max_err} (noise {noise_amp}, bound {bound})"
                );
            }
        }
    }

    #[test]
    fn extract_a8_equals_quantised_float_features() {
        let fe = kwt_tiny_frontend().unwrap();
        let clip = tone(523.0, 16_000);
        let mut scratch = MfccScratch::new();
        for input_exp in [-1i32, 0, 2] {
            let mut direct = Mat::default();
            fe.extract_padded_a8_into(&clip, input_exp, &mut direct, &mut scratch)
                .unwrap();
            let feats = fe.extract_padded(&clip).unwrap();
            let mut via_float = Mat::default();
            qops::quantize_i8_scaled_into(&feats, input_exp, &mut via_float);
            assert_eq!(direct, via_float, "input_exp {input_exp}");
        }
    }

    #[test]
    fn extract_padded_handles_short_and_long() {
        let fe = kwt_tiny_frontend().unwrap();
        let short = fe.extract_padded(&tone(300.0, 4_000)).unwrap();
        let long = fe.extract_padded(&tone(300.0, 40_000)).unwrap();
        assert_eq!(short.shape(), (26, 16));
        assert_eq!(long.shape(), (26, 16));
    }

    #[test]
    fn extract_rejects_too_short() {
        let fe = kwt1_frontend().unwrap();
        assert!(matches!(
            fe.extract(&[0.0; 10]),
            Err(AudioError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn different_tones_produce_different_mfcc() {
        let fe = kwt_tiny_frontend().unwrap();
        let a = fe.extract_padded(&tone(300.0, 16_000)).unwrap();
        let b = fe.extract_padded(&tone(2_000.0, 16_000)).unwrap();
        let dist: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        assert!(dist > 1.0, "tones should be separable, dist {dist}");
    }

    #[test]
    fn silence_is_uniformly_floored() {
        let fe = kwt_tiny_frontend().unwrap();
        let m = fe.extract_padded(&vec![0.0; 16_000]).unwrap();
        // all frames identical for silence
        let first = m.row(0).to_vec();
        for t in 1..m.rows() {
            assert_eq!(m.row(t), &first[..]);
        }
        // and the zero-band log floor matches the reference's ln(floor)
        let reference = fe.extract_padded_reference(&vec![0.0; 16_000]).unwrap();
        for (a, b) in m.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 0.05, "floored {a} vs reference {b}");
        }
    }

    #[test]
    fn mfcc_is_time_shift_stable_for_stationary_signal() {
        // 800 Hz has a 20-sample period; the 600-sample hop spans exactly 30
        // periods, so every interior frame sees a near-identical waveform
        // and the MFCC rows must match to the fixed-point resolution.
        let fe = kwt_tiny_frontend().unwrap();
        let m = fe.extract_padded(&tone(800.0, 16_000)).unwrap();
        let mid = m.row(10).to_vec();
        for t in 5..20 {
            for k in 0..16 {
                assert!(
                    (m[(t, k)] - mid[k]).abs() < 2e-2,
                    "frame {t} coeff {k} deviates"
                );
            }
        }
    }

    #[test]
    fn config_validation() {
        let bad_hop = MfccConfig {
            hop_length: 0,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_hop).is_err());
        let bad_win = MfccConfig {
            win_length: 600,
            n_fft: 512,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_win).is_err());
        let bad_mfcc = MfccConfig {
            n_mfcc: 50,
            n_mels: 40,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_mfcc).is_err());
        let bad_clip = MfccConfig {
            clip_samples: 100,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_clip).is_err());
        let zero_win = MfccConfig {
            win_length: 0,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(zero_win).is_err());
        let bad_floor = MfccConfig {
            log_floor: 0.0,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_floor).is_err());
    }

    #[test]
    fn frames_formula_matches_extract() {
        for (win, hop, clip) in [(400, 160, 16_000), (1_000, 600, 16_000), (256, 128, 8_000)] {
            let cfg = MfccConfig {
                n_fft: 1024,
                win_length: win,
                hop_length: hop,
                clip_samples: clip,
                n_mfcc: 13,
                ..MfccConfig::default()
            };
            let fe = MfccExtractor::new(cfg).unwrap();
            let m = fe.extract_padded(&vec![0.1; clip]).unwrap();
            assert_eq!(m.rows(), fe.frames_per_clip());
        }
    }

    #[test]
    fn invalid_samples_get_typed_errors() {
        let fe = kwt_tiny_frontend().unwrap();
        let mut clip = tone(440.0, 16_000);
        clip[123] = f32::NAN;
        assert_eq!(
            fe.extract(&clip).unwrap_err(),
            AudioError::InvalidSample {
                index: 123,
                why: "NaN"
            }
        );
        clip[123] = f32::NEG_INFINITY;
        assert_eq!(
            fe.extract_padded(&clip).unwrap_err(),
            AudioError::InvalidSample {
                index: 123,
                why: "infinite"
            }
        );
        clip[123] = -f32::MIN_POSITIVE / 4.0;
        assert!(matches!(
            fe.extract(&clip).unwrap_err(),
            AudioError::InvalidSample {
                index: 123,
                why: "subnormal"
            }
        ));
        // signed zeros are ordinary silence
        clip[123] = -0.0;
        fe.extract(&clip).unwrap();
    }

    #[test]
    fn huge_amplitude_clips_stay_finite() {
        // Negative spectrum shifts (very loud input) and the i16 log-mel
        // clamp must keep the pipeline well-defined.
        let fe = kwt_tiny_frontend().unwrap();
        let loud: Vec<f32> = tone(700.0, 16_000).iter().map(|s| s * 1e6).collect();
        let m = fe.extract_padded(&loud).unwrap();
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        // At +120 dB the leakage bands sit on the f32 FFT noise floor, so
        // only coarse agreement with the f64 oracle is meaningful here.
        let reference = fe.extract_padded_reference(&loud).unwrap();
        for (a, b) in m.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 2.0, "loud clip: {a} vs {b}");
        }
    }
}
