//! The complete MFCC extractor and the paper's two input geometries.

use crate::dct::dct_ii_matrix;
use crate::fft::{power_spectrum, RealFftPlan};
use crate::mel::MelFilterbank;
use crate::window::WindowKind;
use crate::{AudioError, Result};
use kwt_tensor::Mat;
use serde::{Deserialize, Serialize};

/// Reusable work buffers for the MFCC pipeline — one arena shared by every
/// frame an extractor computes. [`MfccExtractor::extract_into`] and the
/// streaming front end ([`crate::StreamingMfcc`]) thread one of these
/// through each call, so steady-state extraction performs no heap
/// allocation once the buffers have grown to the configured sizes.
#[derive(Debug, Clone, Default)]
pub struct MfccScratch {
    windowed: Vec<f32>,
    re: Vec<f64>,
    im: Vec<f64>,
    spec: Vec<f64>,
    bands: Vec<f64>,
    logs: Vec<f64>,
    padded: Vec<f32>,
}

impl MfccScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Configuration of the MFCC front end.
///
/// Use [`MfccConfig::default`] and adjust, or start from the paper presets
/// [`kwt1_frontend`] / [`kwt_tiny_frontend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfccConfig {
    /// Input sample rate in Hz.
    pub sample_rate: u32,
    /// FFT size (power of two, >= win_length is typical).
    pub n_fft: usize,
    /// Analysis window length in samples.
    pub win_length: usize,
    /// Hop between successive frames in samples.
    pub hop_length: usize,
    /// Number of mel filter bank channels.
    pub n_mels: usize,
    /// Number of cepstral coefficients kept (the `F` of `[F, T]`).
    pub n_mfcc: usize,
    /// Window function.
    pub window: WindowKind,
    /// Lowest filter bank frequency (Hz).
    pub fmin: f64,
    /// Highest filter bank frequency (Hz).
    pub fmax: f64,
    /// Floor added before the log to avoid `log(0)`.
    pub log_floor: f64,
    /// Nominal clip length in samples; [`MfccExtractor::extract_padded`]
    /// zero-pads or truncates to this length so the frame count is fixed.
    pub clip_samples: usize,
}

impl Default for MfccConfig {
    fn default() -> Self {
        MfccConfig {
            sample_rate: 16_000,
            n_fft: 512,
            win_length: 400,
            hop_length: 160,
            n_mels: 40,
            n_mfcc: 40,
            window: WindowKind::Hann,
            fmin: 20.0,
            fmax: 8_000.0,
            log_floor: 1e-10,
            clip_samples: 16_000,
        }
    }
}

impl MfccConfig {
    /// Number of frames produced from a clip of exactly
    /// [`MfccConfig::clip_samples`] samples.
    pub fn frames_per_clip(&self) -> usize {
        if self.clip_samples < self.win_length {
            0
        } else {
            1 + (self.clip_samples - self.win_length) / self.hop_length
        }
    }
}

/// Precomputed MFCC pipeline (window, filter bank, DCT).
///
/// # Example
///
/// ```
/// use kwt_audio::{MfccConfig, MfccExtractor};
///
/// # fn main() -> Result<(), kwt_audio::AudioError> {
/// let ex = MfccExtractor::new(MfccConfig::default())?;
/// let audio: Vec<f32> = (0..16_000)
///     .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 16_000.0).sin())
///     .collect();
/// let m = ex.extract_padded(&audio)?;
/// assert_eq!(m.shape(), (98, 40)); // 98 frames x 40 coefficients
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: MfccConfig,
    window: Vec<f32>,
    filterbank: MelFilterbank,
    dct: Vec<Vec<f64>>,
    rfft: RealFftPlan,
}

impl MfccExtractor {
    /// Validates the configuration and precomputes the transforms.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::InvalidConfig`] for inconsistent parameters
    /// (zero hop, window longer than FFT, more coefficients than mel
    /// channels, ...).
    pub fn new(config: MfccConfig) -> Result<Self> {
        if config.hop_length == 0 {
            return Err(AudioError::InvalidConfig {
                field: "hop_length",
                why: "must be positive".into(),
            });
        }
        if config.win_length == 0 {
            return Err(AudioError::InvalidConfig {
                field: "win_length",
                why: "must be positive".into(),
            });
        }
        if config.win_length > config.n_fft {
            return Err(AudioError::InvalidConfig {
                field: "win_length",
                why: format!(
                    "window ({}) longer than FFT ({})",
                    config.win_length, config.n_fft
                ),
            });
        }
        if config.n_mfcc > config.n_mels {
            return Err(AudioError::InvalidConfig {
                field: "n_mfcc",
                why: format!(
                    "cannot keep {} coefficients from {} mel bands",
                    config.n_mfcc, config.n_mels
                ),
            });
        }
        if config.clip_samples < config.win_length {
            return Err(AudioError::InvalidConfig {
                field: "clip_samples",
                why: "clip shorter than one analysis window".into(),
            });
        }
        let filterbank = MelFilterbank::new(
            config.n_mels,
            config.n_fft,
            config.sample_rate as f64,
            config.fmin,
            config.fmax,
        )?;
        let window = config.window.coefficients(config.win_length);
        let dct = dct_ii_matrix(config.n_mfcc, config.n_mels);
        let rfft = RealFftPlan::new(config.n_fft)?;
        Ok(MfccExtractor {
            config,
            window,
            filterbank,
            dct,
            rfft,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &MfccConfig {
        &self.config
    }

    /// Frames produced for a nominal clip — the `T` of the model input.
    pub fn frames_per_clip(&self) -> usize {
        self.config.frames_per_clip()
    }

    /// Extracts MFCCs from a signal of arbitrary length (>= one window).
    ///
    /// Returns a `T x F` matrix: one row per frame, one column per
    /// coefficient — the orientation the transformer tokenises (each time
    /// frame becomes one patch, paper Table III `PATCH DIM = [F, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::SignalTooShort`] if fewer samples than one
    /// window are supplied.
    pub fn extract(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let mut out = Mat::default();
        self.extract_into(samples, &mut out, &mut MfccScratch::new())?;
        Ok(out)
    }

    /// [`extract`](Self::extract) into a caller-provided output matrix and
    /// scratch arena — the allocation-free steady-state path (bit-identical
    /// to [`extract`](Self::extract), which delegates here).
    ///
    /// # Errors
    ///
    /// Same contract as [`extract`](Self::extract).
    pub fn extract_into(
        &self,
        samples: &[f32],
        out: &mut Mat<f32>,
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let c = &self.config;
        if samples.len() < c.win_length {
            return Err(AudioError::SignalTooShort {
                got: samples.len(),
                need: c.win_length,
            });
        }
        let n_frames = 1 + (samples.len() - c.win_length) / c.hop_length;
        out.resize(n_frames, c.n_mfcc);
        for t in 0..n_frames {
            let start = t * c.hop_length;
            self.compute_frame_into(
                &samples[start..start + c.win_length],
                out.row_mut(t),
                scratch,
            )?;
        }
        Ok(())
    }

    /// Computes the MFCC row of a single analysis window of exactly
    /// [`MfccConfig::win_length`] samples — the shared kernel behind batch
    /// extraction and [`crate::StreamingMfcc`], which is what makes
    /// incremental extraction bit-identical to [`extract`](Self::extract).
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::SignalTooShort`] unless `samples` holds
    /// exactly one window and [`AudioError::InvalidConfig`] unless `out`
    /// has [`MfccConfig::n_mfcc`] elements.
    pub fn compute_frame_into(
        &self,
        samples: &[f32],
        out: &mut [f32],
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let c = &self.config;
        if samples.len() != c.win_length {
            return Err(AudioError::SignalTooShort {
                got: samples.len(),
                need: c.win_length,
            });
        }
        if out.len() != c.n_mfcc {
            return Err(AudioError::InvalidConfig {
                field: "out",
                why: format!("frame row holds {} values, need {}", out.len(), c.n_mfcc),
            });
        }
        scratch.windowed.clear();
        scratch
            .windowed
            .extend(samples.iter().zip(&self.window).map(|(&s, &w)| s * w));
        self.rfft.power_spectrum_into(
            &scratch.windowed,
            &mut scratch.re,
            &mut scratch.im,
            &mut scratch.spec,
        );
        self.filterbank.apply_into(&scratch.spec, &mut scratch.bands)?;
        scratch.logs.clear();
        scratch
            .logs
            .extend(scratch.bands.iter().map(|&e| (e + c.log_floor).ln()));
        for (k, drow) in self.dct.iter().enumerate() {
            out[k] = drow.iter().zip(&scratch.logs).map(|(d, l)| d * l).sum::<f64>() as f32;
        }
        Ok(())
    }

    /// The seed repository's per-frame pipeline, kept verbatim as the
    /// oracle for the plan-based fast path (mirroring `ops::reference` in
    /// the tensor crate): a generic complex FFT and fresh buffers for
    /// every frame. [`extract`](Self::extract) is equal to this up to f64
    /// FFT rounding (`~1e-12` relative); benchmarks use it as the
    /// one-shot baseline.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract`](Self::extract).
    pub fn extract_reference(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let c = &self.config;
        if samples.len() < c.win_length {
            return Err(AudioError::SignalTooShort {
                got: samples.len(),
                need: c.win_length,
            });
        }
        let n_frames = 1 + (samples.len() - c.win_length) / c.hop_length;
        let mut out = Mat::zeros(n_frames, c.n_mfcc);
        let mut frame = vec![0.0f32; c.win_length];
        for t in 0..n_frames {
            let start = t * c.hop_length;
            for i in 0..c.win_length {
                frame[i] = samples[start + i] * self.window[i];
            }
            let spec = power_spectrum(&frame, c.n_fft)?;
            let bands = self.filterbank.apply(&spec)?;
            let logs: Vec<f64> = bands.iter().map(|&e| (e + c.log_floor).ln()).collect();
            let row = out.row_mut(t);
            for (k, drow) in self.dct.iter().enumerate() {
                row[k] = drow.iter().zip(&logs).map(|(d, l)| d * l).sum::<f64>() as f32;
            }
        }
        Ok(out)
    }

    /// [`extract_reference`](Self::extract_reference) over a zero-padded /
    /// truncated clip — the one-shot seed path the engine benchmarks
    /// measure against.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract_padded`](Self::extract_padded).
    pub fn extract_padded_reference(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let n = self.config.clip_samples;
        let mut buf = vec![0.0f32; n];
        let take = samples.len().min(n);
        buf[..take].copy_from_slice(&samples[..take]);
        self.extract_reference(&buf)
    }

    /// Like [`extract`](Self::extract) but first zero-pads or truncates the
    /// signal to [`MfccConfig::clip_samples`], guaranteeing exactly
    /// [`frames_per_clip`](Self::frames_per_clip) rows.
    ///
    /// # Errors
    ///
    /// Propagates [`MfccExtractor::extract`] errors (cannot occur for a
    /// valid config since padding enforces the length).
    pub fn extract_padded(&self, samples: &[f32]) -> Result<Mat<f32>> {
        let mut out = Mat::default();
        self.extract_padded_into(samples, &mut out, &mut MfccScratch::new())?;
        Ok(out)
    }

    /// [`extract_padded`](Self::extract_padded) into a caller-provided
    /// output matrix and scratch arena (the padded clip buffer lives in the
    /// scratch) — the allocation-free steady-state path used by the
    /// inference engine's `classify`.
    ///
    /// # Errors
    ///
    /// Same contract as [`extract_padded`](Self::extract_padded).
    pub fn extract_padded_into(
        &self,
        samples: &[f32],
        out: &mut Mat<f32>,
        scratch: &mut MfccScratch,
    ) -> Result<()> {
        let n = self.config.clip_samples;
        let mut padded = std::mem::take(&mut scratch.padded);
        padded.clear();
        padded.resize(n, 0.0);
        let take = samples.len().min(n);
        padded[..take].copy_from_slice(&samples[..take]);
        let result = self.extract_into(&padded, out, scratch);
        scratch.padded = padded;
        result
    }
}

/// The KWT-1 front end: `[F, T] = [40, 98]` (25 ms window, 10 ms hop,
/// 40 mel channels, 40 cepstral coefficients over a 1 s clip at 16 kHz).
///
/// # Errors
///
/// Never fails in practice; returns the constructor's validation error type
/// for API uniformity.
pub fn kwt1_frontend() -> Result<MfccExtractor> {
    MfccExtractor::new(MfccConfig::default())
}

/// The KWT-Tiny front end of §III: `[F, T] = [16, 26]` — the paper's
/// down-sampling of the input MFCC "from the original [40, 98] to
/// [16, 26]". 62.5 ms windows with 37.5 ms hop over the same 1 s clip give
/// 26 frames; 16 DCT coefficients are kept from 40 mel bands.
///
/// # Errors
///
/// Never fails in practice; returns the constructor's validation error type
/// for API uniformity.
pub fn kwt_tiny_frontend() -> Result<MfccExtractor> {
    MfccExtractor::new(MfccConfig {
        n_fft: 1024,
        win_length: 1000,
        hop_length: 600,
        n_mfcc: 16,
        ..MfccConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let cycles = (i as f64 * freq / 16_000.0).fract();
                (2.0 * std::f64::consts::PI * cycles).sin() as f32
            })
            .collect()
    }

    #[test]
    fn kwt1_geometry() {
        let fe = kwt1_frontend().unwrap();
        assert_eq!(fe.frames_per_clip(), 98);
        assert_eq!(fe.config().n_mfcc, 40);
        let m = fe.extract_padded(&tone(440.0, 16_000)).unwrap();
        assert_eq!(m.shape(), (98, 40));
    }

    #[test]
    fn kwt_tiny_geometry() {
        let fe = kwt_tiny_frontend().unwrap();
        assert_eq!(fe.frames_per_clip(), 26);
        assert_eq!(fe.config().n_mfcc, 16);
        let m = fe.extract_padded(&tone(440.0, 16_000)).unwrap();
        assert_eq!(m.shape(), (26, 16));
    }

    #[test]
    fn fast_extract_tracks_reference_closely() {
        // The plan-based rFFT path must agree with the seed's generic-FFT
        // path to f64 rounding, for both paper geometries.
        for fe in [kwt1_frontend().unwrap(), kwt_tiny_frontend().unwrap()] {
            let clip: Vec<f32> = (0..16_000)
                .map(|i| {
                    let t = i as f64 / 16_000.0;
                    ((2.0 * std::f64::consts::PI * 431.0 * t).sin() * 0.5
                        + (2.0 * std::f64::consts::PI * 1740.0 * t).sin() * 0.25) as f32
                })
                .collect();
            let fast = fe.extract_padded(&clip).unwrap();
            let reference = fe.extract_padded_reference(&clip).unwrap();
            assert_eq!(fast.shape(), reference.shape());
            for (a, b) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert!(
                    (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                    "fast {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn extract_padded_handles_short_and_long() {
        let fe = kwt_tiny_frontend().unwrap();
        let short = fe.extract_padded(&tone(300.0, 4_000)).unwrap();
        let long = fe.extract_padded(&tone(300.0, 40_000)).unwrap();
        assert_eq!(short.shape(), (26, 16));
        assert_eq!(long.shape(), (26, 16));
    }

    #[test]
    fn extract_rejects_too_short() {
        let fe = kwt1_frontend().unwrap();
        assert!(matches!(
            fe.extract(&[0.0; 10]),
            Err(AudioError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn different_tones_produce_different_mfcc() {
        let fe = kwt_tiny_frontend().unwrap();
        let a = fe.extract_padded(&tone(300.0, 16_000)).unwrap();
        let b = fe.extract_padded(&tone(2_000.0, 16_000)).unwrap();
        let dist: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        assert!(dist > 1.0, "tones should be separable, dist {dist}");
    }

    #[test]
    fn silence_is_uniformly_floored() {
        let fe = kwt_tiny_frontend().unwrap();
        let m = fe.extract_padded(&vec![0.0; 16_000]).unwrap();
        // all frames identical for silence
        let first = m.row(0).to_vec();
        for t in 1..m.rows() {
            assert_eq!(m.row(t), &first[..]);
        }
    }

    #[test]
    fn mfcc_is_time_shift_stable_for_stationary_signal() {
        // 800 Hz has a 20-sample period; the 600-sample hop spans exactly 30
        // periods, so every interior frame sees an identical waveform and
        // the MFCC rows must match closely.
        let fe = kwt_tiny_frontend().unwrap();
        let m = fe.extract_padded(&tone(800.0, 16_000)).unwrap();
        let mid = m.row(10).to_vec();
        for t in 5..20 {
            for k in 0..16 {
                assert!(
                    (m[(t, k)] - mid[k]).abs() < 1e-3,
                    "frame {t} coeff {k} deviates"
                );
            }
        }
    }

    #[test]
    fn config_validation() {
        let bad_hop = MfccConfig {
            hop_length: 0,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_hop).is_err());
        let bad_win = MfccConfig {
            win_length: 600,
            n_fft: 512,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_win).is_err());
        let bad_mfcc = MfccConfig {
            n_mfcc: 50,
            n_mels: 40,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_mfcc).is_err());
        let bad_clip = MfccConfig {
            clip_samples: 100,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(bad_clip).is_err());
        let zero_win = MfccConfig {
            win_length: 0,
            ..MfccConfig::default()
        };
        assert!(MfccExtractor::new(zero_win).is_err());
    }

    #[test]
    fn frames_formula_matches_extract() {
        for (win, hop, clip) in [(400, 160, 16_000), (1_000, 600, 16_000), (256, 128, 8_000)] {
            let cfg = MfccConfig {
                n_fft: 1024,
                win_length: win,
                hop_length: hop,
                clip_samples: clip,
                n_mfcc: 13,
                ..MfccConfig::default()
            };
            let fe = MfccExtractor::new(cfg).unwrap();
            let m = fe.extract_padded(&vec![0.1; clip]).unwrap();
            assert_eq!(m.rows(), fe.frames_per_clip());
        }
    }
}
