//! Radix-2 iterative FFT over split real/imaginary `f64` buffers.
//!
//! A hand-rolled FFT keeps the front end dependency-free and is plenty for
//! the ≤1024-point transforms the KWT geometries need.

use crate::{AudioError, Result};

fn check(re: &[f64], im: &[f64]) -> Result<usize> {
    if re.len() != im.len() {
        return Err(AudioError::FftBufferMismatch {
            re: re.len(),
            im: im.len(),
        });
    }
    let n = re.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(AudioError::FftLengthNotPowerOfTwo { len: n });
    }
    Ok(n)
}

/// In-place decimation-in-time radix-2 FFT.
///
/// # Errors
///
/// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless the length is a
/// power of two, and [`AudioError::FftBufferMismatch`] if the buffers
/// differ in length.
///
/// # Example
/// ```
/// # fn main() -> Result<(), kwt_audio::AudioError> {
/// // FFT of an impulse is flat.
/// let mut re = vec![1.0, 0.0, 0.0, 0.0];
/// let mut im = vec![0.0; 4];
/// kwt_audio::fft_in_place(&mut re, &mut im)?;
/// assert!(re.iter().all(|&x| (x - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<()> {
    let n = check(re, im)?;
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut bit = n >> 1;
        while bit > 0 && j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cur_r - vi0 * cur_i;
                let vi = vr0 * cur_i + vi0 * cur_r;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place inverse FFT (conjugate / forward / conjugate / scale).
///
/// # Errors
///
/// Same contract as [`fft_in_place`].
pub fn ifft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<()> {
    let n = check(re, im)?;
    for v in im.iter_mut() {
        *v = -*v;
    }
    fft_in_place(re, im)?;
    let inv = 1.0 / n as f64;
    for i in 0..n {
        re[i] *= inv;
        im[i] *= -inv;
    }
    Ok(())
}

/// One-sided power spectrum of a real frame, zero-padded to `n_fft`.
///
/// Returns `n_fft / 2 + 1` bins of `|X_k|^2`.
///
/// # Errors
///
/// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless `n_fft` is a power
/// of two, and [`AudioError::SignalTooShort`]... never: frames shorter than
/// `n_fft` are zero-padded; frames longer are truncated.
pub fn power_spectrum(frame: &[f32], n_fft: usize) -> Result<Vec<f64>> {
    if n_fft == 0 || !n_fft.is_power_of_two() {
        return Err(AudioError::FftLengthNotPowerOfTwo { len: n_fft });
    }
    let mut re = vec![0.0f64; n_fft];
    let mut im = vec![0.0f64; n_fft];
    for (i, &s) in frame.iter().take(n_fft).enumerate() {
        re[i] = s as f64;
    }
    fft_in_place(&mut re, &mut im)?;
    Ok((0..=n_fft / 2)
        .map(|k| re[k] * re[k] + im[k] * im[k])
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n^2) reference DFT.
    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                or[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or, oi)
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 64;
        let mut re: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 * 0.1 - 0.6).collect();
        let mut im: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64 * 0.05).collect();
        let (wr, wi) = naive_dft(&re, &im);
        fft_in_place(&mut re, &mut im).unwrap();
        for k in 0..n {
            assert!((re[k] - wr[k]).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - wi[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_of_sine_concentrates_energy() {
        let n = 256;
        let bin = 17;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im).unwrap();
        let mag: Vec<f64> = (0..n).map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt()).collect();
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak == bin || peak == n - bin);
        assert!((mag[bin] - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let orig_re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let orig_im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() * 0.3).collect();
        let mut re = orig_re.clone();
        let mut im = orig_im.clone();
        fft_in_place(&mut re, &mut im).unwrap();
        ifft_in_place(&mut re, &mut im).unwrap();
        for i in 0..n {
            assert!((re[i] - orig_re[i]).abs() < 1e-10);
            assert!((im[i] - orig_im[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 512;
        let sig: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 97) as f64 / 97.0 - 0.5).collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im).unwrap();
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            (0..n).map(|k| re[k] * re[k] + im[k] * im[k]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut a = vec![0.0; 12];
        let mut b = vec![0.0; 12];
        assert!(matches!(
            fft_in_place(&mut a, &mut b),
            Err(AudioError::FftLengthNotPowerOfTwo { len: 12 })
        ));
        let mut c = vec![0.0; 8];
        assert!(matches!(
            fft_in_place(&mut a, &mut c),
            Err(AudioError::FftBufferMismatch { .. })
        ));
        let mut e: Vec<f64> = vec![];
        let mut e2: Vec<f64> = vec![];
        assert!(fft_in_place(&mut e, &mut e2).is_err());
    }

    #[test]
    fn power_spectrum_dc_and_length() {
        let frame = vec![1.0f32; 16];
        let ps = power_spectrum(&frame, 32).unwrap();
        assert_eq!(ps.len(), 17);
        // 16 ones zero-padded to 32: DC bin = 16^2
        assert!((ps[0] - 256.0).abs() < 1e-9);
        assert!(power_spectrum(&frame, 30).is_err());
    }
}
