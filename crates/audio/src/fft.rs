//! Radix-2 iterative FFT over split real/imaginary `f64` buffers.
//!
//! A hand-rolled FFT keeps the front end dependency-free and is plenty for
//! the ≤1024-point transforms the KWT geometries need.
//!
//! Two flavours exist:
//!
//! * the generic complex transforms ([`fft_in_place`] /
//!   [`power_spectrum`]) — the seed implementation, kept as the reference
//!   oracle (mirroring `ops::reference` in the tensor crate);
//! * [`RealFftPlan`] — the fast path for real input, used by the MFCC
//!   extractor's hot loop: a half-size complex FFT with precomputed
//!   twiddle and bit-reversal tables plus an `O(n)` untangling step,
//!   roughly halving the arithmetic and touching half the memory. Equal to
//!   the reference up to f64 rounding (`~1e-12` relative — asserted by
//!   the `plan_matches_reference_spectrum` test).

use crate::{AudioError, Result};

fn check(re: &[f64], im: &[f64]) -> Result<usize> {
    if re.len() != im.len() {
        return Err(AudioError::FftBufferMismatch {
            re: re.len(),
            im: im.len(),
        });
    }
    let n = re.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(AudioError::FftLengthNotPowerOfTwo { len: n });
    }
    Ok(n)
}

/// In-place decimation-in-time radix-2 FFT.
///
/// # Errors
///
/// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless the length is a
/// power of two, and [`AudioError::FftBufferMismatch`] if the buffers
/// differ in length.
///
/// # Example
/// ```
/// # fn main() -> Result<(), kwt_audio::AudioError> {
/// // FFT of an impulse is flat.
/// let mut re = vec![1.0, 0.0, 0.0, 0.0];
/// let mut im = vec![0.0; 4];
/// kwt_audio::fft_in_place(&mut re, &mut im)?;
/// assert!(re.iter().all(|&x| (x - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<()> {
    let n = check(re, im)?;
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut bit = n >> 1;
        while bit > 0 && j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cur_r - vi0 * cur_i;
                let vi = vr0 * cur_i + vi0 * cur_r;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place inverse FFT (conjugate / forward / conjugate / scale).
///
/// # Errors
///
/// Same contract as [`fft_in_place`].
pub fn ifft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<()> {
    let n = check(re, im)?;
    for v in im.iter_mut() {
        *v = -*v;
    }
    fft_in_place(re, im)?;
    let inv = 1.0 / n as f64;
    for i in 0..n {
        re[i] *= inv;
        im[i] *= -inv;
    }
    Ok(())
}

/// One-sided power spectrum of a real frame, zero-padded to `n_fft`.
///
/// Returns `n_fft / 2 + 1` bins of `|X_k|^2`.
///
/// # Errors
///
/// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless `n_fft` is a power
/// of two, and [`AudioError::SignalTooShort`]... never: frames shorter than
/// `n_fft` are zero-padded; frames longer are truncated.
pub fn power_spectrum(frame: &[f32], n_fft: usize) -> Result<Vec<f64>> {
    let (mut re, mut im, mut out) = (Vec::new(), Vec::new(), Vec::new());
    power_spectrum_into(frame, n_fft, &mut re, &mut im, &mut out)?;
    Ok(out)
}

/// [`power_spectrum`] over caller-provided FFT work buffers and output
/// vector — allocation-free once the buffers have grown to `n_fft`
/// elements, and bit-identical to [`power_spectrum`].
///
/// # Errors
///
/// Same contract as [`power_spectrum`].
pub fn power_spectrum_into(
    frame: &[f32],
    n_fft: usize,
    re: &mut Vec<f64>,
    im: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> Result<()> {
    if n_fft == 0 || !n_fft.is_power_of_two() {
        return Err(AudioError::FftLengthNotPowerOfTwo { len: n_fft });
    }
    re.clear();
    re.resize(n_fft, 0.0);
    im.clear();
    im.resize(n_fft, 0.0);
    for (i, &s) in frame.iter().take(n_fft).enumerate() {
        re[i] = s as f64;
    }
    fft_in_place(re, im)?;
    out.clear();
    out.extend((0..=n_fft / 2).map(|k| re[k] * re[k] + im[k] * im[k]));
    Ok(())
}

/// A precomputed plan for power spectra of real frames at one FFT size —
/// the front end's hot-loop transform (see the [module docs](self)).
///
/// The `n` real samples are packed into `n/2` complex values, transformed
/// by a half-size FFT over precomputed twiddle/bit-reversal tables, and
/// untangled into the `n/2 + 1` one-sided spectrum bins.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    half: usize,
    bitrev: Vec<u32>,
    /// Stage twiddles of the half-size FFT, flattened: for each
    /// `len = 2, 4, .., half`, the `len/2` factors `e^{-2πij/len}`.
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
    /// Untangling twiddles `e^{-2πik/n}`, `k = 0 ..= half`.
    un_re: Vec<f64>,
    un_im: Vec<f64>,
}

impl RealFftPlan {
    /// Builds the tables for `n`-point transforms.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless `n` is a
    /// power of two `>= 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 || !n.is_power_of_two() {
            return Err(AudioError::FftLengthNotPowerOfTwo { len: n });
        }
        let half = n / 2;
        let mut bitrev = vec![0u32; half];
        let mut j = 0usize;
        for slot in bitrev.iter_mut() {
            *slot = j as u32;
            let mut bit = half >> 1;
            while bit > 0 && j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
        }
        let mut tw_re = Vec::new();
        let mut tw_im = Vec::new();
        let mut len = 2;
        while len <= half {
            for k in 0..len / 2 {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                tw_re.push(ang.cos());
                tw_im.push(ang.sin());
            }
            len <<= 1;
        }
        let (mut un_re, mut un_im) = (Vec::with_capacity(half + 1), Vec::with_capacity(half + 1));
        for k in 0..=half {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            un_re.push(ang.cos());
            un_im.push(ang.sin());
        }
        Ok(RealFftPlan {
            n,
            half,
            bitrev,
            tw_re,
            tw_im,
            un_re,
            un_im,
        })
    }

    /// The planned FFT size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// In-place half-size complex FFT over the precomputed tables.
    fn fft_half(&self, re: &mut [f64], im: &mut [f64]) {
        let m = self.half;
        for i in 0..m {
            let j = self.bitrev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut tw_off = 0;
        let mut len = 2;
        while len <= m {
            let hl = len / 2;
            let tr = &self.tw_re[tw_off..tw_off + hl];
            let ti = &self.tw_im[tw_off..tw_off + hl];
            let mut i = 0;
            while i < m {
                for k in 0..hl {
                    let (ur, ui) = (re[i + k], im[i + k]);
                    let (vr0, vi0) = (re[i + k + hl], im[i + k + hl]);
                    let vr = vr0 * tr[k] - vi0 * ti[k];
                    let vi = vr0 * ti[k] + vi0 * tr[k];
                    re[i + k] = ur + vr;
                    im[i + k] = ui + vi;
                    re[i + k + hl] = ur - vr;
                    im[i + k + hl] = ui - vi;
                }
                i += len;
            }
            tw_off += hl;
            len <<= 1;
        }
    }

    /// One-sided power spectrum of a real frame (zero-padded / truncated
    /// to the planned size), over caller work buffers — the
    /// allocation-free fast counterpart of [`power_spectrum_into`].
    /// Writes `n/2 + 1` bins of `|X_k|^2` into `out`.
    pub fn power_spectrum_into(
        &self,
        frame: &[f32],
        re: &mut Vec<f64>,
        im: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        let half = self.half;
        re.clear();
        re.resize(half, 0.0);
        im.clear();
        im.resize(half, 0.0);
        // Pack x[2j] + i·x[2j+1] into the half-size complex buffer.
        let take = frame.len().min(self.n);
        for (j, pair) in frame[..take].chunks(2).enumerate() {
            re[j] = pair[0] as f64;
            im[j] = if pair.len() > 1 { pair[1] as f64 } else { 0.0 };
        }
        self.fft_half(re, im);
        // Untangle: X_k = (Z_k + conj(Z_{m-k}))/2 - (i/2) e^{-2πik/n} (Z_k - conj(Z_{m-k})).
        out.clear();
        for k in 0..=half {
            let (zr, zi) = if k == half {
                (re[0], im[0])
            } else {
                (re[k], im[k])
            };
            let kc = (half - k) % half;
            let (cr, ci) = (re[kc], -im[kc]);
            // even part (Z + Zc)/2, odd part (Z - Zc)/2
            let (er, ei) = ((zr + cr) * 0.5, (zi + ci) * 0.5);
            let (or_, oi) = ((zr - cr) * 0.5, (zi - ci) * 0.5);
            // w = e^{-2πik/n}; X = E + (-i) · w · O
            let (wr, wi) = (self.un_re[k], self.un_im[k]);
            let (tr, ti) = (or_ * wr - oi * wi, or_ * wi + oi * wr);
            let xr = er + ti;
            let xi = ei - tr;
            out.push(xr * xr + xi * xi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n^2) reference DFT.
    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                or[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or, oi)
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 64;
        let mut re: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 * 0.1 - 0.6).collect();
        let mut im: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64 * 0.05).collect();
        let (wr, wi) = naive_dft(&re, &im);
        fft_in_place(&mut re, &mut im).unwrap();
        for k in 0..n {
            assert!((re[k] - wr[k]).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - wi[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_of_sine_concentrates_energy() {
        let n = 256;
        let bin = 17;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im).unwrap();
        let mag: Vec<f64> = (0..n).map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt()).collect();
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak == bin || peak == n - bin);
        assert!((mag[bin] - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let orig_re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let orig_im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() * 0.3).collect();
        let mut re = orig_re.clone();
        let mut im = orig_im.clone();
        fft_in_place(&mut re, &mut im).unwrap();
        ifft_in_place(&mut re, &mut im).unwrap();
        for i in 0..n {
            assert!((re[i] - orig_re[i]).abs() < 1e-10);
            assert!((im[i] - orig_im[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 512;
        let sig: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 97) as f64 / 97.0 - 0.5).collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im).unwrap();
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            (0..n).map(|k| re[k] * re[k] + im[k] * im[k]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut a = vec![0.0; 12];
        let mut b = vec![0.0; 12];
        assert!(matches!(
            fft_in_place(&mut a, &mut b),
            Err(AudioError::FftLengthNotPowerOfTwo { len: 12 })
        ));
        let mut c = vec![0.0; 8];
        assert!(matches!(
            fft_in_place(&mut a, &mut c),
            Err(AudioError::FftBufferMismatch { .. })
        ));
        let mut e: Vec<f64> = vec![];
        let mut e2: Vec<f64> = vec![];
        assert!(fft_in_place(&mut e, &mut e2).is_err());
    }

    #[test]
    fn plan_matches_reference_spectrum() {
        for n in [2usize, 4, 8, 64, 256, 512, 1024] {
            let plan = RealFftPlan::new(n).unwrap();
            for (name, frame) in [
                ("noise", (0..n).map(|i| (((i * 37 + 11) % 101) as f32 / 101.0) - 0.5).collect::<Vec<f32>>()),
                ("short", (0..n.max(2) / 2).map(|i| (i as f32 * 0.3).sin()).collect()),
                ("long", (0..2 * n).map(|i| (i as f32 * 0.17).cos()).collect()),
                ("impulse", {
                    let mut v = vec![0.0f32; n];
                    v[0] = 1.0;
                    v
                }),
            ] {
                let want = power_spectrum(&frame, n).unwrap();
                let (mut re, mut im, mut got) = (Vec::new(), Vec::new(), Vec::new());
                plan.power_spectrum_into(&frame, &mut re, &mut im, &mut got);
                assert_eq!(got.len(), want.len(), "n={n} {name}");
                let scale = want.iter().cloned().fold(1.0, f64::max);
                for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-10 * scale,
                        "n={n} {name} bin {k}: plan {a} vs reference {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_rejects_bad_lengths() {
        assert!(RealFftPlan::new(0).is_err());
        assert!(RealFftPlan::new(1).is_err());
        assert!(RealFftPlan::new(12).is_err());
        assert_eq!(RealFftPlan::new(512).unwrap().n(), 512);
    }

    #[test]
    fn power_spectrum_dc_and_length() {
        let frame = vec![1.0f32; 16];
        let ps = power_spectrum(&frame, 32).unwrap();
        assert_eq!(ps.len(), 17);
        // 16 ones zero-padded to 32: DC bin = 16^2
        assert!((ps[0] - 256.0).abs() < 1e-9);
        assert!(power_spectrum(&frame, 30).is_err());
    }
}
