//! Radix-2 iterative FFT over split real/imaginary `f64` buffers.
//!
//! A hand-rolled FFT keeps the front end dependency-free and is plenty for
//! the ≤1024-point transforms the KWT geometries need.
//!
//! Two flavours exist:
//!
//! * the generic complex transforms ([`fft_in_place`] /
//!   [`power_spectrum`]) — the seed implementation, kept as the reference
//!   oracle (mirroring `ops::reference` in the tensor crate);
//! * [`RealFftPlan`] — the fast path for real input, used by the MFCC
//!   extractor's hot loop: a half-size complex FFT with precomputed
//!   twiddle and bit-reversal tables plus an `O(n)` untangling step,
//!   roughly halving the arithmetic and touching half the memory. Equal to
//!   the reference up to f64 rounding (`~1e-12` relative — asserted by
//!   the `plan_matches_reference_spectrum` test).

use crate::{AudioError, Result};

fn check(re: &[f64], im: &[f64]) -> Result<usize> {
    if re.len() != im.len() {
        return Err(AudioError::FftBufferMismatch {
            re: re.len(),
            im: im.len(),
        });
    }
    let n = re.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(AudioError::FftLengthNotPowerOfTwo { len: n });
    }
    Ok(n)
}

/// In-place decimation-in-time radix-2 FFT.
///
/// # Errors
///
/// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless the length is a
/// power of two, and [`AudioError::FftBufferMismatch`] if the buffers
/// differ in length.
///
/// # Example
/// ```
/// # fn main() -> Result<(), kwt_audio::AudioError> {
/// // FFT of an impulse is flat.
/// let mut re = vec![1.0, 0.0, 0.0, 0.0];
/// let mut im = vec![0.0; 4];
/// kwt_audio::fft_in_place(&mut re, &mut im)?;
/// assert!(re.iter().all(|&x| (x - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<()> {
    let n = check(re, im)?;
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut bit = n >> 1;
        while bit > 0 && j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cur_r - vi0 * cur_i;
                let vi = vr0 * cur_i + vi0 * cur_r;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place inverse FFT (conjugate / forward / conjugate / scale).
///
/// # Errors
///
/// Same contract as [`fft_in_place`].
pub fn ifft_in_place(re: &mut [f64], im: &mut [f64]) -> Result<()> {
    let n = check(re, im)?;
    for v in im.iter_mut() {
        *v = -*v;
    }
    fft_in_place(re, im)?;
    let inv = 1.0 / n as f64;
    for i in 0..n {
        re[i] *= inv;
        im[i] *= -inv;
    }
    Ok(())
}

/// One-sided power spectrum of a real frame, zero-padded to `n_fft`.
///
/// Returns `n_fft / 2 + 1` bins of `|X_k|^2`.
///
/// # Errors
///
/// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless `n_fft` is a power
/// of two, and [`AudioError::SignalTooShort`]... never: frames shorter than
/// `n_fft` are zero-padded; frames longer are truncated.
pub fn power_spectrum(frame: &[f32], n_fft: usize) -> Result<Vec<f64>> {
    let (mut re, mut im, mut out) = (Vec::new(), Vec::new(), Vec::new());
    power_spectrum_into(frame, n_fft, &mut re, &mut im, &mut out)?;
    Ok(out)
}

/// [`power_spectrum`] over caller-provided FFT work buffers and output
/// vector — allocation-free once the buffers have grown to `n_fft`
/// elements, and bit-identical to [`power_spectrum`].
///
/// # Errors
///
/// Same contract as [`power_spectrum`].
pub fn power_spectrum_into(
    frame: &[f32],
    n_fft: usize,
    re: &mut Vec<f64>,
    im: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> Result<()> {
    if n_fft == 0 || !n_fft.is_power_of_two() {
        return Err(AudioError::FftLengthNotPowerOfTwo { len: n_fft });
    }
    re.clear();
    re.resize(n_fft, 0.0);
    im.clear();
    im.resize(n_fft, 0.0);
    for (i, &s) in frame.iter().take(n_fft).enumerate() {
        re[i] = s as f64;
    }
    fft_in_place(re, im)?;
    out.clear();
    out.extend((0..=n_fft / 2).map(|k| re[k] * re[k] + im[k] * im[k]));
    Ok(())
}

/// A precomputed plan for power spectra of real frames at one FFT size —
/// the front end's hot-loop transform (see the module docs).
///
/// The `n` real samples are packed into `n/2` complex values, transformed
/// by a half-size FFT over precomputed twiddle/bit-reversal tables, and
/// untangled into the `n/2 + 1` one-sided spectrum bins.
///
/// Two precisions coexist:
///
/// * the original `f64` single-frame path
///   ([`power_spectrum_into`](Self::power_spectrum_into)) — the
///   high-precision transform behind the float oracle;
/// * a **batched `f32` path**
///   ([`power_spectra_block_into`](Self::power_spectra_block_into))
///   processing flat contiguous frame blocks with size-specialised first
///   butterfly stages (the `len = 2` and `len = 4` stages of the fixed
///   512/256-point half-size transforms are multiplier-free) — the hot
///   loop of the fixed-point MFCC front end. Frames transform
///   independently, so block output is bit-identical to frame-at-a-time
///   output.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    half: usize,
    bitrev: Vec<u32>,
    /// Stage twiddles of the half-size FFT, flattened: for each
    /// `len = 2, 4, .., half`, the `len/2` factors `e^{-2πij/len}`.
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
    /// Untangling twiddles `e^{-2πik/n}`, `k = 0 ..= half`.
    un_re: Vec<f64>,
    un_im: Vec<f64>,
    /// `f32` copies of the twiddle tables for the batched path.
    tw_re32: Vec<f32>,
    tw_im32: Vec<f32>,
    un_re32: Vec<f32>,
    un_im32: Vec<f32>,
}

impl RealFftPlan {
    /// Builds the tables for `n`-point transforms.
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::FftLengthNotPowerOfTwo`] unless `n` is a
    /// power of two `>= 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 || !n.is_power_of_two() {
            return Err(AudioError::FftLengthNotPowerOfTwo { len: n });
        }
        let half = n / 2;
        let mut bitrev = vec![0u32; half];
        let mut j = 0usize;
        for slot in bitrev.iter_mut() {
            *slot = j as u32;
            let mut bit = half >> 1;
            while bit > 0 && j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
        }
        let mut tw_re = Vec::new();
        let mut tw_im = Vec::new();
        let mut len = 2;
        while len <= half {
            for k in 0..len / 2 {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                tw_re.push(ang.cos());
                tw_im.push(ang.sin());
            }
            len <<= 1;
        }
        let (mut un_re, mut un_im) = (Vec::with_capacity(half + 1), Vec::with_capacity(half + 1));
        for k in 0..=half {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            un_re.push(ang.cos());
            un_im.push(ang.sin());
        }
        let tw_re32 = tw_re.iter().map(|&v| v as f32).collect();
        let tw_im32 = tw_im.iter().map(|&v| v as f32).collect();
        let un_re32 = un_re.iter().map(|&v| v as f32).collect();
        let un_im32 = un_im.iter().map(|&v| v as f32).collect();
        Ok(RealFftPlan {
            n,
            half,
            bitrev,
            tw_re,
            tw_im,
            un_re,
            un_im,
            tw_re32,
            tw_im32,
            un_re32,
            un_im32,
        })
    }

    /// The planned FFT size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// In-place half-size complex FFT over the precomputed tables.
    fn fft_half(&self, re: &mut [f64], im: &mut [f64]) {
        let m = self.half;
        for i in 0..m {
            let j = self.bitrev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut tw_off = 0;
        let mut len = 2;
        while len <= m {
            let hl = len / 2;
            let tr = &self.tw_re[tw_off..tw_off + hl];
            let ti = &self.tw_im[tw_off..tw_off + hl];
            let mut i = 0;
            while i < m {
                for k in 0..hl {
                    let (ur, ui) = (re[i + k], im[i + k]);
                    let (vr0, vi0) = (re[i + k + hl], im[i + k + hl]);
                    let vr = vr0 * tr[k] - vi0 * ti[k];
                    let vi = vr0 * ti[k] + vi0 * tr[k];
                    re[i + k] = ur + vr;
                    im[i + k] = ui + vi;
                    re[i + k + hl] = ur - vr;
                    im[i + k + hl] = ui - vi;
                }
                i += len;
            }
            tw_off += hl;
            len <<= 1;
        }
    }

    /// In-place half-size complex `f32` FFT — the fixed-point front
    /// end's transform. Identical butterfly arithmetic to the radix-2
    /// `f64` path, but stages are **fused in pairs** so the data makes
    /// half as many passes through memory: the multiplier-free `len = 2`
    /// and `len = 4` stages run as one pass, then stages `(8, 16)`,
    /// `(32, 64)`, ... run pairwise with all four butterfly operands held
    /// in registers. Fusing only reorders *independent* butterflies, so
    /// the result is bit-identical to running the stages separately.
    fn fft_half_f32(&self, re: &mut [f32], im: &mut [f32]) {
        let m = self.half;
        for i in 0..m {
            let j = self.bitrev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        // Pass 1: stages len = 2 and len = 4 fused (twiddles 1 and -i —
        // multiplier-free; w = -i maps (vr, vi) to (vi, -vr)).
        if m >= 4 {
            for (rc, ic) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
                let (a0r, a0i) = (rc[0], ic[0]);
                let (a1r, a1i) = (rc[1], ic[1]);
                let (a2r, a2i) = (rc[2], ic[2]);
                let (a3r, a3i) = (rc[3], ic[3]);
                // stage 2
                let (b0r, b0i) = (a0r + a1r, a0i + a1i);
                let (b1r, b1i) = (a0r - a1r, a0i - a1i);
                let (b2r, b2i) = (a2r + a3r, a2i + a3i);
                let (b3r, b3i) = (a2r - a3r, a2i - a3i);
                // stage 4: (b0, b2) with w = 1, (b1, b3) with w = -i
                rc[0] = b0r + b2r;
                ic[0] = b0i + b2i;
                rc[2] = b0r - b2r;
                ic[2] = b0i - b2i;
                let (vr, vi) = (b3i, -b3r);
                rc[1] = b1r + vr;
                ic[1] = b1i + vi;
                rc[3] = b1r - vr;
                ic[3] = b1i - vi;
            }
        } else if m == 2 {
            let (ur, ui) = (re[0], im[0]);
            let (vr, vi) = (re[1], im[1]);
            re[0] = ur + vr;
            im[0] = ui + vi;
            re[1] = ur - vr;
            im[1] = ui - vi;
        }
        // Fused double stages (len, 2 * len) from len = 8 upward. The
        // flat twiddle table stores stage `len` at offset `len / 2 - 1`.
        let mut len = 8;
        while 2 * len <= m {
            let hl = len / 2;
            let tw1r = &self.tw_re32[hl - 1..hl - 1 + hl];
            let tw1i = &self.tw_im32[hl - 1..hl - 1 + hl];
            let tw2r = &self.tw_re32[len - 1..len - 1 + len];
            let tw2i = &self.tw_im32[len - 1..len - 1 + len];
            for (rc, ic) in re
                .chunks_exact_mut(2 * len)
                .zip(im.chunks_exact_mut(2 * len))
            {
                // quarters: q0 = [0, hl), q1 = [hl, 2hl), q2, q3
                let (rh0, rh1) = rc.split_at_mut(len);
                let (ih0, ih1) = ic.split_at_mut(len);
                let (r0, r1) = rh0.split_at_mut(hl);
                let (i0, i1) = ih0.split_at_mut(hl);
                let (r2, r3) = rh1.split_at_mut(hl);
                let (i2, i3) = ih1.split_at_mut(hl);
                for k in 0..hl {
                    let (w1r, w1i) = (tw1r[k], tw1i[k]);
                    // stage len on (q0, q1) and (q2, q3)
                    let (vr, vi) = (r1[k] * w1r - i1[k] * w1i, r1[k] * w1i + i1[k] * w1r);
                    let (b0r, b0i) = (r0[k] + vr, i0[k] + vi);
                    let (b1r, b1i) = (r0[k] - vr, i0[k] - vi);
                    let (vr, vi) = (r3[k] * w1r - i3[k] * w1i, r3[k] * w1i + i3[k] * w1r);
                    let (b2r, b2i) = (r2[k] + vr, i2[k] + vi);
                    let (b3r, b3i) = (r2[k] - vr, i2[k] - vi);
                    // stage 2len: (b0, b2) with tw2[k], (b1, b3) with tw2[k + hl]
                    let (w2r, w2i) = (tw2r[k], tw2i[k]);
                    let (ur, ui) = (b2r * w2r - b2i * w2i, b2r * w2i + b2i * w2r);
                    r0[k] = b0r + ur;
                    i0[k] = b0i + ui;
                    r2[k] = b0r - ur;
                    i2[k] = b0i - ui;
                    let (w2r, w2i) = (tw2r[hl + k], tw2i[hl + k]);
                    let (ur, ui) = (b3r * w2r - b3i * w2i, b3r * w2i + b3i * w2r);
                    r1[k] = b1r + ur;
                    i1[k] = b1i + ui;
                    r3[k] = b1r - ur;
                    i3[k] = b1i - ui;
                }
            }
            len *= 4;
        }
        // Lone final stage when the stage count past len = 4 is odd.
        if len <= m {
            let hl = len / 2;
            let tr = &self.tw_re32[hl - 1..hl - 1 + hl];
            let ti = &self.tw_im32[hl - 1..hl - 1 + hl];
            for (rc, ic) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
                let (r0, r1) = rc.split_at_mut(hl);
                let (i0, i1) = ic.split_at_mut(hl);
                for k in 0..hl {
                    let (ur, ui) = (r0[k], i0[k]);
                    let (vr0, vi0) = (r1[k], i1[k]);
                    let vr = vr0 * tr[k] - vi0 * ti[k];
                    let vi = vr0 * ti[k] + vi0 * tr[k];
                    r0[k] = ur + vr;
                    i0[k] = ui + vi;
                    r1[k] = ur - vr;
                    i1[k] = ui - vi;
                }
            }
        }
    }

    /// Batched `f32` one-sided power spectra over a flat contiguous frame
    /// block — the fixed-point front end's hot loop.
    ///
    /// `frames` holds `n_frames` rows of exactly `n` samples each
    /// (windowed and zero-padded by the caller); `out` receives
    /// `n_frames` rows of `n/2 + 1` bins of `|X_k|^2`, flat. `re`/`im`
    /// are reusable work buffers (grown to `n/2` once). Each frame's
    /// transform is independent, so the output is bit-identical whether
    /// the block holds one frame or a whole clip.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != n_frames * n`.
    pub fn power_spectra_block_into(
        &self,
        frames: &[f32],
        n_frames: usize,
        re: &mut Vec<f32>,
        im: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(
            frames.len(),
            n_frames * self.n,
            "frame block must be n_frames * n samples"
        );
        let n_bins = self.half + 1;
        out.clear();
        out.resize(n_frames * n_bins, 0.0);
        re.clear();
        re.resize(self.half, 0.0);
        im.clear();
        im.resize(self.half, 0.0);
        for t in 0..n_frames {
            let frame = &frames[t * self.n..(t + 1) * self.n];
            for (j, pair) in frame.chunks_exact(2).enumerate() {
                re[j] = pair[0];
                im[j] = pair[1];
            }
            self.fft_half_f32(re, im);
            self.untangle_power(re, im, &mut out[t * n_bins..(t + 1) * n_bins]);
        }
    }

    /// Windowed batched power spectra straight from the raw signal — the
    /// front end's fused window + pack + FFT + untangle pass. Frame `t`
    /// covers `samples[t * hop .. t * hop + window.len())`, is multiplied
    /// by `window` and zero-padded to the planned size on the fly (no
    /// intermediate frame buffer), then transformed exactly like
    /// [`power_spectra_block_into`](Self::power_spectra_block_into) —
    /// the two paths are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `window` is longer than the planned size or the last
    /// frame overruns `samples`.
    #[allow(clippy::too_many_arguments)] // the front end's one fused call
    pub fn power_spectra_windowed_into(
        &self,
        samples: &[f32],
        window: &[f32],
        hop: usize,
        n_frames: usize,
        re: &mut Vec<f32>,
        im: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) {
        let win = window.len();
        assert!(win <= self.n, "window longer than the planned FFT size");
        assert!(
            n_frames == 0 || (n_frames - 1) * hop + win <= samples.len(),
            "frame range exceeds the signal"
        );
        let n_bins = self.half + 1;
        out.clear();
        out.resize(n_frames * n_bins, 0.0);
        re.clear();
        re.resize(self.half, 0.0);
        im.clear();
        im.resize(self.half, 0.0);
        for t in 0..n_frames {
            let src = &samples[t * hop..t * hop + win];
            // window + pack x[2j] + i·x[2j+1], zero-padding past `win`
            let full = win / 2;
            for j in 0..full {
                re[j] = src[2 * j] * window[2 * j];
                im[j] = src[2 * j + 1] * window[2 * j + 1];
            }
            if win % 2 == 1 {
                re[full] = src[win - 1] * window[win - 1];
                im[full] = 0.0;
            }
            for j in win.div_ceil(2)..self.half {
                re[j] = 0.0;
                im[j] = 0.0;
            }
            self.fft_half_f32(re, im);
            self.untangle_power(re, im, &mut out[t * n_bins..(t + 1) * n_bins]);
        }
    }

    /// Untangles one transformed frame into its `n/2 + 1` power bins:
    /// `X_k = (Z_k + conj(Z_{m-k}))/2 - (i/2) e^{-2πik/n} (Z_k - conj(Z_{m-k}))`.
    /// Bins `k` and `m - k` share every intermediate (their even/odd
    /// parts are conjugates and `w_{m-k} = -conj(w_k)`), so the loop
    /// computes the pair together at just over half the cost of two
    /// independent bins.
    fn untangle_power(&self, re: &[f32], im: &[f32], orow: &mut [f32]) {
        let m = self.half;
        // bins 0 and m from Z_0 alone (E = (re, 0), O = (0, im))
        let bin0 = |wr: f32, wi: f32| -> f32 {
            let (er, oi) = (re[0], im[0]);
            let (tr, ti) = (-oi * wi, oi * wr);
            let xr = er + ti;
            let xi = -tr;
            xr * xr + xi * xi
        };
        orow[0] = bin0(self.un_re32[0], self.un_im32[0]);
        orow[m] = bin0(self.un_re32[m], self.un_im32[m]);
        for k in 1..m.div_ceil(2) {
            let kc = m - k;
            let (zr, zi) = (re[k], im[k]);
            let (cr, ci) = (re[kc], im[kc]);
            let (er, ei) = ((zr + cr) * 0.5, (zi - ci) * 0.5);
            let (or_, oi) = ((zr - cr) * 0.5, (zi + ci) * 0.5);
            let (wr, wi) = (self.un_re32[k], self.un_im32[k]);
            let (tr, ti) = (or_ * wr - oi * wi, or_ * wi + oi * wr);
            // X_k = E + (-i) w O
            let xr = er + ti;
            let xi = ei - tr;
            orow[k] = xr * xr + xi * xi;
            // X_{m-k} = conj(E) + (-i) conj(w O)
            let xr = er - ti;
            let xi = -(ei + tr);
            orow[kc] = xr * xr + xi * xi;
        }
        if m >= 2 {
            // middle bin k = m/2 pairs with itself
            let k = m / 2;
            let (zr, zi) = (re[k], im[k]);
            let (er, oi) = (zr, zi); // E = (zr, 0), O = (0, zi)
            let (wr, wi) = (self.un_re32[k], self.un_im32[k]);
            let (tr, ti) = (-oi * wi, oi * wr);
            let xr = er + ti;
            let xi = -tr;
            orow[k] = xr * xr + xi * xi;
        }
    }

    /// One-sided power spectrum of a real frame (zero-padded / truncated
    /// to the planned size), over caller work buffers — the
    /// allocation-free fast counterpart of [`power_spectrum_into`].
    /// Writes `n/2 + 1` bins of `|X_k|^2` into `out`.
    pub fn power_spectrum_into(
        &self,
        frame: &[f32],
        re: &mut Vec<f64>,
        im: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        let half = self.half;
        re.clear();
        re.resize(half, 0.0);
        im.clear();
        im.resize(half, 0.0);
        // Pack x[2j] + i·x[2j+1] into the half-size complex buffer.
        let take = frame.len().min(self.n);
        for (j, pair) in frame[..take].chunks(2).enumerate() {
            re[j] = pair[0] as f64;
            im[j] = if pair.len() > 1 { pair[1] as f64 } else { 0.0 };
        }
        self.fft_half(re, im);
        // Untangle: X_k = (Z_k + conj(Z_{m-k}))/2 - (i/2) e^{-2πik/n} (Z_k - conj(Z_{m-k})).
        out.clear();
        for k in 0..=half {
            let (zr, zi) = if k == half {
                (re[0], im[0])
            } else {
                (re[k], im[k])
            };
            let kc = (half - k) % half;
            let (cr, ci) = (re[kc], -im[kc]);
            // even part (Z + Zc)/2, odd part (Z - Zc)/2
            let (er, ei) = ((zr + cr) * 0.5, (zi + ci) * 0.5);
            let (or_, oi) = ((zr - cr) * 0.5, (zi - ci) * 0.5);
            // w = e^{-2πik/n}; X = E + (-i) · w · O
            let (wr, wi) = (self.un_re[k], self.un_im[k]);
            let (tr, ti) = (or_ * wr - oi * wi, or_ * wi + oi * wr);
            let xr = er + ti;
            let xi = ei - tr;
            out.push(xr * xr + xi * xi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n^2) reference DFT.
    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                or[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or, oi)
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 64;
        let mut re: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + 3) % 13) as f64 * 0.1 - 0.6)
            .collect();
        let mut im: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64 * 0.05).collect();
        let (wr, wi) = naive_dft(&re, &im);
        fft_in_place(&mut re, &mut im).unwrap();
        for k in 0..n {
            assert!((re[k] - wr[k]).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - wi[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_of_sine_concentrates_energy() {
        let n = 256;
        let bin = 17;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im).unwrap();
        let mag: Vec<f64> = (0..n)
            .map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt())
            .collect();
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak == bin || peak == n - bin);
        assert!((mag[bin] - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let orig_re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let orig_im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() * 0.3).collect();
        let mut re = orig_re.clone();
        let mut im = orig_im.clone();
        fft_in_place(&mut re, &mut im).unwrap();
        ifft_in_place(&mut re, &mut im).unwrap();
        for i in 0..n {
            assert!((re[i] - orig_re[i]).abs() < 1e-10);
            assert!((im[i] - orig_im[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 512;
        let sig: Vec<f64> = (0..n)
            .map(|i| ((i * 31 + 7) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im).unwrap();
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            (0..n).map(|k| re[k] * re[k] + im[k] * im[k]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut a = vec![0.0; 12];
        let mut b = vec![0.0; 12];
        assert!(matches!(
            fft_in_place(&mut a, &mut b),
            Err(AudioError::FftLengthNotPowerOfTwo { len: 12 })
        ));
        let mut c = vec![0.0; 8];
        assert!(matches!(
            fft_in_place(&mut a, &mut c),
            Err(AudioError::FftBufferMismatch { .. })
        ));
        let mut e: Vec<f64> = vec![];
        let mut e2: Vec<f64> = vec![];
        assert!(fft_in_place(&mut e, &mut e2).is_err());
    }

    #[test]
    fn plan_matches_reference_spectrum() {
        for n in [2usize, 4, 8, 64, 256, 512, 1024] {
            let plan = RealFftPlan::new(n).unwrap();
            for (name, frame) in [
                (
                    "noise",
                    (0..n)
                        .map(|i| (((i * 37 + 11) % 101) as f32 / 101.0) - 0.5)
                        .collect::<Vec<f32>>(),
                ),
                (
                    "short",
                    (0..n.max(2) / 2).map(|i| (i as f32 * 0.3).sin()).collect(),
                ),
                (
                    "long",
                    (0..2 * n).map(|i| (i as f32 * 0.17).cos()).collect(),
                ),
                ("impulse", {
                    let mut v = vec![0.0f32; n];
                    v[0] = 1.0;
                    v
                }),
            ] {
                let want = power_spectrum(&frame, n).unwrap();
                let (mut re, mut im, mut got) = (Vec::new(), Vec::new(), Vec::new());
                plan.power_spectrum_into(&frame, &mut re, &mut im, &mut got);
                assert_eq!(got.len(), want.len(), "n={n} {name}");
                let scale = want.iter().cloned().fold(1.0, f64::max);
                for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-10 * scale,
                        "n={n} {name} bin {k}: plan {a} vs reference {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_block_spectra_track_f64_reference() {
        for n in [2usize, 4, 8, 16, 64, 256, 512, 1024] {
            let plan = RealFftPlan::new(n).unwrap();
            let n_frames = 3;
            let mut frames = vec![0.0f32; n_frames * n];
            for t in 0..n_frames {
                for i in 0..n {
                    frames[t * n + i] = ((i * 37 + 11 + t * 101) % 103) as f32 / 103.0 - 0.5;
                }
            }
            let (mut re, mut im, mut out) = (Vec::new(), Vec::new(), Vec::new());
            plan.power_spectra_block_into(&frames, n_frames, &mut re, &mut im, &mut out);
            assert_eq!(out.len(), n_frames * (n / 2 + 1));
            for t in 0..n_frames {
                let want = power_spectrum(&frames[t * n..(t + 1) * n], n).unwrap();
                let scale = want.iter().cloned().fold(1e-20, f64::max);
                for (k, (&a, b)) in out[t * (n / 2 + 1)..(t + 1) * (n / 2 + 1)]
                    .iter()
                    .zip(&want)
                    .enumerate()
                {
                    assert!(
                        (a as f64 - b).abs() <= 1e-4 * scale,
                        "n={n} frame {t} bin {k}: f32 {a} vs f64 {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_block_equals_frame_at_a_time() {
        // The bit-identity contract the streaming front end relies on.
        let n = 512;
        let plan = RealFftPlan::new(n).unwrap();
        let n_frames = 5;
        let frames: Vec<f32> = (0..n_frames * n)
            .map(|i| ((i * 29 + 3) % 97) as f32 / 97.0 - 0.5)
            .collect();
        let (mut re, mut im, mut block) = (Vec::new(), Vec::new(), Vec::new());
        plan.power_spectra_block_into(&frames, n_frames, &mut re, &mut im, &mut block);
        let mut one = Vec::new();
        for t in 0..n_frames {
            plan.power_spectra_block_into(
                &frames[t * n..(t + 1) * n],
                1,
                &mut re,
                &mut im,
                &mut one,
            );
            for (k, (a, b)) in one
                .iter()
                .zip(&block[t * (n / 2 + 1)..(t + 1) * (n / 2 + 1)])
                .enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "frame {t} bin {k}");
            }
        }
    }

    #[test]
    fn plan_rejects_bad_lengths() {
        assert!(RealFftPlan::new(0).is_err());
        assert!(RealFftPlan::new(1).is_err());
        assert!(RealFftPlan::new(12).is_err());
        assert_eq!(RealFftPlan::new(512).unwrap().n(), 512);
    }

    #[test]
    fn power_spectrum_dc_and_length() {
        let frame = vec![1.0f32; 16];
        let ps = power_spectrum(&frame, 32).unwrap();
        assert_eq!(ps.len(), 17);
        // 16 ones zero-padded to 32: DC bin = 16^2
        assert!((ps[0] - 256.0).abs() < 1e-9);
        assert!(power_spectrum(&frame, 30).is_err());
    }
}
