//! Analysis window functions.

use serde::{Deserialize, Serialize};

/// The window applied to each frame before the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WindowKind {
    /// No tapering (all ones).
    Rectangular,
    /// Hann window — the default for speech front ends, zero at the edges.
    #[default]
    Hann,
    /// Hamming window — non-zero edge taper.
    Hamming,
}

impl WindowKind {
    /// Returns the `n` window coefficients (periodic form, as used by
    /// STFT implementations).
    ///
    /// # Example
    /// ```
    /// let w = kwt_audio::WindowKind::Hann.coefficients(4);
    /// assert_eq!(w.len(), 4);
    /// assert!(w[0].abs() < 1e-7); // Hann starts at zero
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let nn = n as f64;
        (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / nn;
                (match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * phase.cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * phase.cos(),
                }) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_ones() {
        assert!(WindowKind::Rectangular
            .coefficients(16)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn hann_peak_and_edges() {
        let w = WindowKind::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-7);
        assert!((w[32] - 1.0).abs() < 1e-6); // periodic Hann peaks at n/2
                                             // symmetric around the peak for the periodic form: w[k] == w[n-k]
        for k in 1..32 {
            assert!((w[k] - w[64 - k]).abs() < 1e-6);
        }
    }

    #[test]
    fn hamming_edges_nonzero() {
        let w = WindowKind::Hamming.coefficients(32);
        assert!((w[0] - 0.08).abs() < 1e-6);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn degenerate_lengths() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn default_is_hann() {
        assert_eq!(WindowKind::default(), WindowKind::Hann);
    }
}
