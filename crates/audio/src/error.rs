use std::fmt;

/// Error type for the audio front end.
///
/// Marked `#[non_exhaustive]`: the ingest-validation taxonomy grows, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AudioError {
    /// FFT length must be a power of two.
    FftLengthNotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// Real/imaginary buffers passed to the FFT differ in length.
    FftBufferMismatch {
        /// Real buffer length.
        re: usize,
        /// Imaginary buffer length.
        im: usize,
    },
    /// A configuration field is out of its valid domain.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it is invalid.
        why: String,
    },
    /// The input signal is too short to produce a single frame.
    SignalTooShort {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// An input sample is not a finite normal number (NaN, ±∞ or
    /// subnormal) — garbage in would otherwise propagate silently
    /// through the whole MFCC → model pipeline.
    InvalidSample {
        /// Index of the first offending sample within the pushed slice
        /// or clip.
        index: usize,
        /// What is wrong with it (`"NaN"`, `"infinite"`, `"subnormal"`).
        why: &'static str,
    },
}

impl fmt::Display for AudioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AudioError::FftLengthNotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
            AudioError::FftBufferMismatch { re, im } => {
                write!(f, "fft buffer lengths differ: re {re} vs im {im}")
            }
            AudioError::InvalidConfig { field, why } => {
                write!(f, "invalid mfcc config field `{field}`: {why}")
            }
            AudioError::SignalTooShort { got, need } => {
                write!(
                    f,
                    "signal too short: got {got} samples, need at least {need}"
                )
            }
            AudioError::InvalidSample { index, why } => {
                write!(f, "audio sample {index} is {why}")
            }
        }
    }
}

impl std::error::Error for AudioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AudioError::FftLengthNotPowerOfTwo { len: 12 }.to_string(),
            "fft length 12 is not a power of two"
        );
        assert_eq!(
            AudioError::SignalTooShort { got: 3, need: 400 }.to_string(),
            "signal too short: got 3 samples, need at least 400"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AudioError>();
    }
}
