//! ChaCha8 RNG for the offline rand shims.
//!
//! This is a genuine ChaCha8 block function (8 rounds), seeded via
//! splitmix64 key expansion from a 64-bit seed. Stream values differ from
//! upstream `rand_chacha` (which uses a different seed expansion), but the
//! workspace only relies on determinism for a fixed seed.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CONSTANTS);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = s[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 key expansion.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let va: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(first, second);
    }
}
