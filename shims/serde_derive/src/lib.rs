//! Derive macros for the offline serde shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) covering
//! exactly the type shapes this workspace derives on: named-field structs
//! (optionally generic), tuple structs, and enums whose variants are unit,
//! named-field or tuple, optionally with explicit discriminants. `#[serde]`
//! attributes are not supported and will simply be ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

/// Derives JSON `Serialize` for the shim's data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives JSON `Deserialize` for the shim's data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&toks, &mut i);

    let kw = ident_at(&toks, i).expect("struct or enum keyword");
    i += 1;
    let name = ident_at(&toks, i).expect("type name");
    i += 1;

    let mut generics = Vec::new();
    if is_punct(&toks, i, '<') {
        let mut depth = 0usize;
        // Collect the parameter names at angle depth 1.
        let mut expecting_param = false;
        loop {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    if depth == 1 {
                        expecting_param = true;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                    expecting_param = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    // Lifetime parameter: consume the following ident without
                    // recording it as a type parameter.
                    if expecting_param {
                        expecting_param = false;
                    }
                    i += 1; // skip the quote; loop tail skips the ident
                }
                TokenTree::Ident(id) if depth == 1 && expecting_param => {
                    let s = id.to_string();
                    if s != "const" {
                        generics.push(s);
                        expecting_param = false;
                    }
                }
                _ => {}
            }
            i += 1;
            if i >= toks.len() {
                break;
            }
        }
    }

    let kind = match kw.as_str() {
        "struct" => {
            // Skip a where clause if present (none in this workspace, but cheap).
            while i < toks.len()
                && !matches!(&toks[i], TokenTree::Group(_))
                && !is_punct(&toks, i, ';')
            {
                i += 1;
            }
            match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::NamedStruct(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Kind::TupleStruct(count_tuple_fields(g.stream()))
                }
                _ => panic!("unsupported struct body"),
            }
        }
        "enum" => {
            while i < toks.len() && !matches!(&toks[i], TokenTree::Group(_)) {
                i += 1;
            }
            match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::Enum(parse_variants(g.stream()))
                }
                _ => panic!("enum body expected"),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(toks: &[TokenTree], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Parses `field: Type, ...` lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).expect("field name");
        i += 1;
        assert!(is_punct(&toks, i, ':'), "expected `:` after field `{name}`");
        i += 1;
        // Skip the type: consume until a top-level (angle-depth 0) comma.
        let mut depth = 0isize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0isize;
    let mut count = 1usize;
    let mut saw_token_since_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if saw_token_since_comma {
                    count += 1;
                }
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).expect("variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() && !is_punct(&toks, i, ',') {
            i += 1;
        }
        if is_punct(&toks, i, ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", input.name)
    } else {
        let params = input.generics.join(", ");
        let bounds = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "impl<{params}> ::serde::{trait_name} for {}<{params}> where {bounds}",
            input.name
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let mut body = String::new();
    match &input.kind {
        Kind::NamedStruct(fields) => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\"); ::serde::Serialize::json_ser(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Kind::TupleStruct(1) => {
            body.push_str("::serde::Serialize::json_ser(&self.0, out);\n");
        }
        Kind::TupleStruct(n) => {
            body.push_str("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!("::serde::Serialize::json_ser(&self.{i}, out);\n"));
            }
            body.push_str("out.push(']');\n");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                let ty = &input.name;
                match &v.fields {
                    VariantFields::Unit => {
                        body.push_str(&format!("{ty}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"));
                    }
                    VariantFields::Named(fields) => {
                        let pat = fields.join(", ");
                        body.push_str(&format!("{ty}::{vn} {{ {pat} }} => {{\n"));
                        body.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":{{\");\n"));
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\"); ::serde::Serialize::json_ser({f}, out);\n"
                            ));
                        }
                        body.push_str("out.push_str(\"}}\");\n},\n");
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let pat = binds.join(", ");
                        body.push_str(&format!("{ty}::{vn}({pat}) => {{\n"));
                        if *n == 1 {
                            body.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":\");\n"));
                            body.push_str("::serde::Serialize::json_ser(x0, out);\n");
                            body.push_str("out.push('}');\n},\n");
                        } else {
                            body.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":[\");\n"));
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::json_ser({b}, out);\n"
                                ));
                            }
                            body.push_str("out.push_str(\"]}\");\n},\n");
                        }
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "{header} {{\n fn json_ser(&self, out: &mut ::std::string::String) {{\n #![allow(clippy::all)]\n {body} }}\n}}\n",
        header = impl_header(input, "Serialize"),
    )
}

fn gen_named_field_parse(ty_path: &str, fields: &[String]) -> String {
    // Parses `{ "f": v, ... }` into `ty_path { f, ... }`, any field order,
    // unknown fields skipped. Assumes the leading `{` is NOT yet consumed.
    let mut s = String::new();
    s.push_str("{\np.expect('{')?;\n");
    for f in fields {
        s.push_str(&format!(
            "let mut field_{f} = ::std::option::Option::None;\n"
        ));
    }
    s.push_str("if !p.try_consume('}') {\nloop {\n");
    s.push_str("let key = p.parse_string()?;\np.expect(':')?;\n");
    s.push_str("match key.as_str() {\n");
    for f in fields {
        s.push_str(&format!(
            "\"{f}\" => field_{f} = ::std::option::Option::Some(::serde::Deserialize::json_deser(p)?),\n"
        ));
    }
    s.push_str("_ => p.skip_value()?,\n}\n");
    s.push_str("if p.try_consume(',') { continue; }\np.expect('}')?;\nbreak;\n}\n}\n");
    s.push_str(&format!("{ty_path} {{\n"));
    for f in fields {
        s.push_str(&format!(
            "{f}: field_{f}.ok_or_else(|| ::serde::de::Error::missing(\"{f}\"))?,\n"
        ));
    }
    s.push_str("}\n}\n");
    s
}

fn gen_tuple_parse(ty_path: &str, n: usize) -> String {
    let mut s = String::new();
    if n == 1 {
        s.push_str(&format!(
            "{ty_path}(::serde::Deserialize::json_deser(p)?)\n"
        ));
    } else {
        s.push_str("{\np.expect('[')?;\n");
        let mut binds = Vec::new();
        for i in 0..n {
            if i > 0 {
                s.push_str("p.expect(',')?;\n");
            }
            s.push_str(&format!(
                "let x{i} = ::serde::Deserialize::json_deser(p)?;\n"
            ));
            binds.push(format!("x{i}"));
        }
        s.push_str("p.expect(']')?;\n");
        s.push_str(&format!("{ty_path}({})\n}}\n", binds.join(", ")));
    }
    s
}

fn gen_deserialize(input: &Input) -> String {
    let mut body = String::new();
    let ty = &input.name;
    match &input.kind {
        Kind::NamedStruct(fields) => {
            body.push_str("let value = ");
            body.push_str(&gen_named_field_parse(ty, fields));
            body.push_str(";\n::std::result::Result::Ok(value)\n");
        }
        Kind::TupleStruct(n) => {
            body.push_str("let value = ");
            body.push_str(&gen_tuple_parse(ty, *n));
            body.push_str(";\n::std::result::Result::Ok(value)\n");
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            body.push_str(&format!(
                "if p.peek() == ::std::option::Option::Some(b'\"') {{\n\
                 let name = p.parse_string()?;\n\
                 return match name.as_str() {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::de::Error::unknown_variant(&name)),\n}};\n}}\n"
            ));
            body.push_str("p.expect('{')?;\nlet name = p.parse_string()?;\np.expect(':')?;\n");
            body.push_str("let value = match name.as_str() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        // Also accept `{"V": null}` for symmetry.
                        body.push_str(&format!(
                            "\"{vn}\" => {{ let _ = p.try_null(); {ty}::{vn} }},\n"
                        ));
                    }
                    VariantFields::Named(fields) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {}\n,",
                            gen_named_field_parse(&format!("{ty}::{vn}"), fields)
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {}\n,",
                            gen_tuple_parse(&format!("{ty}::{vn}"), *n)
                        ));
                    }
                }
            }
            body.push_str(
                "_ => return ::std::result::Result::Err(::serde::de::Error::unknown_variant(&name)),\n};\n",
            );
            body.push_str("p.expect('}')?;\n::std::result::Result::Ok(value)\n");
        }
    }
    format!(
        "{header} {{\n fn json_deser(p: &mut ::serde::de::Parser<'_>) -> ::std::result::Result<Self, ::serde::de::Error> {{\n #![allow(clippy::all)]\n {body} }}\n}}\n",
        header = impl_header(input, "Deserialize"),
    )
}
