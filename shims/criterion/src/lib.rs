//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace uses. Timing is wall-clock with adaptive iteration
//! counts; results are printed as `name ... time/iter` lines.
//!
//! CI / smoke controls (the `cargo bench` smoke mode required by the
//! roadmap's tier-1 verification):
//!
//! * `KWT_BENCH_SMOKE=1` — run every benchmark exactly once (compile +
//!   execute proof, no timing fidelity), finishing in milliseconds.
//! * `KWT_BENCH_MEAS_MS=<n>` — per-benchmark measurement budget in
//!   milliseconds (default 300).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost (accepted, not differentiated).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    smoke: bool,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::var("KWT_BENCH_SMOKE")
            .map(|v| v != "0")
            .unwrap_or(false);
        let ms = std::env::var("KWT_BENCH_MEAS_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            smoke,
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            smoke: self.smoke,
            target: self.target,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(id, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            smoke: self.c.smoke,
            target: self.c.target,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; drives the timing loop.
pub struct Bencher {
    smoke: bool,
    target: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f` by running it in adaptively sized batches until the
    /// measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let t0 = Instant::now();
            black_box(f());
            self.ns_per_iter = t0.elapsed().as_nanos() as f64;
            return;
        }
        // Warm up and calibrate the batch size.
        let mut n: u64 = 1;
        let calib = self.target.min(Duration::from_millis(50));
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= calib || n >= 1 << 40 {
                break;
            }
            n = if dt.as_nanos() == 0 {
                n * 16
            } else {
                let scaled = (n as u128 * calib.as_nanos() * 2 / dt.as_nanos().max(1)) as u64;
                scaled.max(n + 1)
            };
        }
        // Measure: repeat batches until the budget is spent, track the best
        // (lowest-noise) batch.
        let mut best = f64::INFINITY;
        let mut spent = Duration::ZERO;
        while spent < self.target {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            spent += dt;
            let per = dt.as_nanos() as f64 / n as f64;
            if per < best {
                best = per;
            }
        }
        self.ns_per_iter = best;
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup
    /// time (the shim times setup + routine pairs and subtracts a measured
    /// setup-only baseline).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.ns_per_iter = t0.elapsed().as_nanos() as f64;
            return;
        }
        // Baseline: setup alone.
        let mut setup_ns = 0.0f64;
        {
            let t0 = Instant::now();
            let mut k = 0u32;
            while t0.elapsed() < Duration::from_millis(20) {
                black_box(setup());
                k += 1;
            }
            if k > 0 {
                setup_ns = t0.elapsed().as_nanos() as f64 / k as f64;
            }
        }
        let mut best = f64::INFINITY;
        let t_all = Instant::now();
        while t_all.elapsed() < self.target {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let per = t0.elapsed().as_nanos() as f64;
            if per < best {
                best = per;
            }
        }
        self.ns_per_iter = (best - setup_ns * 0.0).max(0.0); // routine timed alone; setup excluded by construction
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let extra = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.2} MB/s)", n as f64 / ns * 1e3)
        }
        _ => String::new(),
    };
    println!("bench {id:<44} {:>12}/iter{extra}", fmt_ns(ns));
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
