//! JSON front end for the offline serde shim: `to_string` / `from_str`
//! with the same externally-tagged encoding real serde_json uses for the
//! type shapes this workspace serializes.

use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json_ser(&mut out);
    Ok(out)
}

/// Serializes `value` to JSON text (the shim emits compact output).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = serde::de::Parser::new(s);
    let v = T::json_deser(&mut p).map_err(|e| Error(e.to_string()))?;
    if !p.at_end() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(v)
}
