//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro, `Strategy`
//! with `prop_map`, range and tuple strategies, `Just`, `any`,
//! `collection::vec`, `prop_oneof!`, `prop_assert*!` and `prop_assume!`.
//!
//! Generation is a fixed-seed deterministic PRNG (per test name), so runs
//! are reproducible; there is no shrinking — a failing case panics with the
//! generated values' debug output where available.

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix PRNG used to drive generation.
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name` (the test
    /// function name) so every test gets an independent but stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration (`with_cases` is the only knob the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                a + (b - a) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// Types generatable over their whole domain via [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths acceptable to [`vec()`](fn@vec): a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each function runs `cases` times with freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_cfg ($cfg) $($rest)* }
    };
    (@with_cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = || { $body };
                    let _ = case;
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
}

/// Skips the current case when `cond` is false (no replacement case is
/// generated — the shim simply moves to the next iteration).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}
