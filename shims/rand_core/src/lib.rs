//! Core RNG traits for the offline `rand` shims.

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64` (two `u32` draws by default).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}
