//! Offline stand-in for the `rand` crate: uniform sampling and slice
//! shuffling over any `rand_core::RngCore` source. Distribution values are
//! *not* bit-compatible with upstream rand; everything in this workspace
//! only relies on determinism for a fixed seed, which this shim provides.

pub use rand_core::{RngCore, SeedableRng};

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                let u = <$t as StandardSample>::sample_standard(rng);
                a + (b - a) * u
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    };
}

int_range!(u8);
int_range!(u16);
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i8);
int_range!(i16);
int_range!(i32);
int_range!(i64);
int_range!(isize);

/// The user-facing sampling interface, blanket-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (uniform `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
