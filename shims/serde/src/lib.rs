//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no crates.io access, so
//! this shim supplies the thin slice of serde's API the workspace uses:
//! `#[derive(Serialize, Deserialize)]` plus JSON round-tripping via the
//! sibling `serde_json` shim. The traits here are *not* the real serde
//! data model — they serialize directly to JSON text and parse directly
//! from it, which is all the workspace needs (checkpoints, config files,
//! test round-trips).
//!
//! Supported shapes (enforced by the derive in `serde_derive`):
//! named-field structs (including generic ones), newtype/tuple structs,
//! and enums with unit, named-field or tuple variants, using the same
//! JSON encoding as real serde's default ("externally tagged") format.

pub use serde_derive::{Deserialize, Serialize};

/// JSON serialization: append the JSON encoding of `self` to `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn json_ser(&self, out: &mut String);
}

/// JSON deserialization: parse a value of `Self` from the parser.
pub trait Deserialize: Sized {
    /// Parses a `Self` from the JSON parser.
    fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error>;
}

/// Minimal JSON parsing infrastructure shared by the derive output and the
/// `serde_json` shim.
pub mod de {
    use std::fmt;

    /// A JSON parse error with byte offset context.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
        pos: usize,
    }

    impl Error {
        /// Creates an error at a byte offset.
        pub fn new(msg: impl Into<String>, pos: usize) -> Self {
            Error {
                msg: msg.into(),
                pos,
            }
        }

        /// A "missing field" error (offset unknown).
        pub fn missing(field: &str) -> Self {
            Error::new(format!("missing field `{field}`"), 0)
        }

        /// An "unknown enum variant" error.
        pub fn unknown_variant(name: &str) -> Self {
            Error::new(format!("unknown variant `{name}`"), 0)
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{} at byte {}", self.msg, self.pos)
        }
    }

    impl std::error::Error for Error {}

    /// A cursor over JSON text.
    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        /// Creates a parser over `input`.
        pub fn new(input: &'a str) -> Self {
            Parser {
                bytes: input.as_bytes(),
                pos: 0,
            }
        }

        fn err(&self, msg: impl Into<String>) -> Error {
            Error::new(msg, self.pos)
        }

        /// Skips whitespace.
        pub fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        /// Peeks the next non-whitespace byte without consuming it.
        pub fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        /// Consumes `c` (after whitespace) or errors.
        pub fn expect(&mut self, c: char) -> Result<(), Error> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&(c as u8)) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(format!(
                    "expected `{c}`, found {:?}",
                    self.bytes.get(self.pos).map(|&b| b as char)
                )))
            }
        }

        /// Consumes `c` if it is next (after whitespace); returns whether it did.
        pub fn try_consume(&mut self, c: char) -> bool {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&(c as u8)) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// True when only whitespace remains.
        pub fn at_end(&mut self) -> bool {
            self.skip_ws();
            self.pos >= self.bytes.len()
        }

        /// Parses a JSON string (with escapes).
        pub fn parse_string(&mut self) -> Result<String, Error> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                let b = *self
                    .bytes
                    .get(self.pos)
                    .ok_or_else(|| self.err("unterminated string"))?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| self.err("unterminated escape"))?;
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("bad \\u code point"))?,
                                );
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    _ => {
                        // Re-walk UTF-8: find the full char starting at pos-1.
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| self.err("truncated UTF-8"))?;
                        let s =
                            std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }

        /// Consumes a numeric token and returns its text.
        pub fn number_str(&mut self) -> Result<&'a str, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit()
                    || b == b'-'
                    || b == b'+'
                    || b == b'.'
                    || b == b'e'
                    || b == b'E'
                {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if start == self.pos {
                return Err(self.err("expected number"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid number bytes", start))
        }

        /// Parses the literal `true` or `false`.
        pub fn parse_bool(&mut self) -> Result<bool, Error> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(true)
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(false)
            } else {
                Err(self.err("expected boolean"))
            }
        }

        /// Consumes the literal `null` if present.
        pub fn try_null(&mut self) -> bool {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                true
            } else {
                false
            }
        }

        /// Skips one complete JSON value (used for unknown object keys).
        pub fn skip_value(&mut self) -> Result<(), Error> {
            match self.peek() {
                Some(b'"') => {
                    self.parse_string()?;
                    Ok(())
                }
                Some(b'{') => {
                    self.expect('{')?;
                    if self.try_consume('}') {
                        return Ok(());
                    }
                    loop {
                        self.parse_string()?;
                        self.expect(':')?;
                        self.skip_value()?;
                        if self.try_consume(',') {
                            continue;
                        }
                        self.expect('}')?;
                        return Ok(());
                    }
                }
                Some(b'[') => {
                    self.expect('[')?;
                    if self.try_consume(']') {
                        return Ok(());
                    }
                    loop {
                        self.skip_value()?;
                        if self.try_consume(',') {
                            continue;
                        }
                        self.expect(']')?;
                        return Ok(());
                    }
                }
                Some(b't') | Some(b'f') => {
                    self.parse_bool()?;
                    Ok(())
                }
                Some(b'n') => {
                    if self.try_null() {
                        Ok(())
                    } else {
                        Err(self.err("expected null"))
                    }
                }
                _ => {
                    self.number_str()?;
                    Ok(())
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

/// Appends a JSON string literal (with escapes) to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_ser(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
        impl Deserialize for $t {
            fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                let s = p.number_str()?;
                s.parse::<$t>()
                    .map_err(|e| de::Error::new(format!("bad {}: {e}", stringify!($t)), 0))
            }
        }
    )*};
}

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_ser(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's shortest round-trip float formatting.
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                if p.try_null() {
                    return Ok(<$t>::NAN);
                }
                let s = p.number_str()?;
                s.parse::<$t>()
                    .map_err(|e| de::Error::new(format!("bad {}: {e}", stringify!($t)), 0))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn json_ser(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_bool()
    }
}

impl Serialize for String {
    fn json_ser(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn json_ser(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_string()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_ser(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_ser(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.expect('[')?;
        let mut out = Vec::new();
        if p.try_consume(']') {
            return Ok(out);
        }
        loop {
            out.push(T::json_deser(p)?);
            if p.try_consume(',') {
                continue;
            }
            p.expect(']')?;
            return Ok(out);
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_ser(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.json_ser(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn json_deser(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.try_null() {
            Ok(None)
        } else {
            Ok(Some(T::json_deser(p)?))
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_ser(&self, out: &mut String) {
        (**self).json_ser(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_ser(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_ser(out);
        }
        out.push(']');
    }
}
